"""Query substrate: XPath-subset parsing and the four interchangeable
evaluators experiment E9 compares (DOM navigation, interval-label
structural joins, edge-table self-joins, and the vectorized columnar
plan — optionally lock-free against a pinned label snapshot)."""

from repro.query.columnar import (ColumnarStore, QuerySession,
                                  evaluate_batch, evaluate_columnar)
from repro.query.engine import (evaluate_dom, evaluate_edge,
                                evaluate_interval)
from repro.query.xpath import (CHILD, DESCENDANT, Step, XPathQuery,
                               parse_xpath)

__all__ = [
    "parse_xpath",
    "XPathQuery",
    "Step",
    "CHILD",
    "DESCENDANT",
    "evaluate_dom",
    "evaluate_interval",
    "evaluate_edge",
    "evaluate_columnar",
    "evaluate_batch",
    "ColumnarStore",
    "QuerySession",
]
