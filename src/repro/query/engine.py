"""Interchangeable XPath evaluators (experiment E9).

* :func:`evaluate_dom` — pointer-chasing navigation over the DOM; the
  ground truth the others are checked against;
* :func:`evaluate_interval` — the paper's plan: per step, **one**
  stack-based merge self-join over region labels (child steps add a level
  check);
* :func:`evaluate_edge` — the edge-table plan (§1 ref [11]): one
  index self-join per child step, an *iterated* self-join fix-point per
  descendant step;
* :func:`repro.query.columnar.evaluate_columnar` — the same interval
  plan executed as batch range-intersection passes over flat label
  columns (vectorized; optionally against a pinned, lock-free
  :class:`~repro.concurrent.engine.LabelSnapshot`).

All return elements in document order; their tuple-access counters
quantify the paper's "as efficient as child-axis" claim.

The interval plan's (begin, end) inputs come from
:class:`repro.storage.interval_table.IntervalTableStore`, which shreds
the document through the :class:`~repro.labeling.scheme.LabeledDocument`
cached label vector — one bulk extraction off the compact engine's flat
label column (zero per-node ``label_lookups``) rather than two handle
round trips per element.
"""

from __future__ import annotations

from typing import Any

from repro.core.stats import NULL_COUNTERS, Counters
from repro.query.xpath import CHILD, DESCENDANT, Step, XPathQuery
from repro.storage.edge_table import EdgeTableStore
from repro.storage.interval_table import IntervalTableStore
from repro.storage.relational import merge_interval_join
from repro.xml.model import XMLDocument, XMLElement


# ---------------------------------------------------------------------------
# ground truth: DOM navigation
# ---------------------------------------------------------------------------
def evaluate_dom(document: XMLDocument, query: XPathQuery
                 ) -> list[XMLElement]:
    """Navigate the tree directly (no labels, no joins)."""
    context: list[XMLElement] = _first_step_dom(document, query.steps[0])
    for step in query.steps[1:]:
        next_context: list[XMLElement] = []
        seen: set[int] = set()
        for element in context:
            candidates = (element.child_elements() if step.axis == CHILD
                          else _proper_descendants(element))
            for candidate in candidates:
                if step.matches_element(candidate) and \
                        id(candidate) not in seen:
                    seen.add(id(candidate))
                    next_context.append(candidate)
        context = _document_order(document, next_context)
    return context


def _first_step_dom(document: XMLDocument, step: Step
                    ) -> list[XMLElement]:
    if step.axis == CHILD:
        root = document.root
        return [root] if step.matches_element(root) else []
    return [element for element in document.iter_elements()
            if step.matches_element(element)]


def _proper_descendants(element: XMLElement):
    for descendant in element.iter_elements():
        if descendant is not element:
            yield descendant


def _document_order(document: XMLDocument,
                    elements: list[XMLElement]) -> list[XMLElement]:
    order = {id(element): position
             for position, element in enumerate(document.iter_elements())}
    return sorted(elements, key=lambda element: order[id(element)])


# ---------------------------------------------------------------------------
# the paper's plan: interval containment joins
# ---------------------------------------------------------------------------
def evaluate_interval(store: IntervalTableStore, query: XPathQuery,
                      stats: Counters = NULL_COUNTERS
                      ) -> list[XMLElement]:
    """One structural self-join per step over (begin, end) labels."""
    context = _first_step_interval(store, query.steps[0], stats)
    for step in query.steps[1:]:
        candidates = _tag_triples(store, step, stats)
        pairs = merge_interval_join(sorted(context), candidates, stats)
        if step.axis == CHILD:
            matched = {
                descendant_id
                for ancestor_id, descendant_id in (
                    (a, d) for a, d in pairs)
                if store.level_of(descendant_id) ==
                store.level_of(ancestor_id) + 1
            }
        else:
            matched = {descendant_id for _, descendant_id in pairs}
        context = [triple for triple in candidates
                   if triple[2] in matched]
        context = _attribute_filter_interval(store, step, context, stats)
    return [store.element(element_id) for _, _, element_id in
            sorted(context)]


def _first_step_interval(store: IntervalTableStore, step: Step,
                         stats: Counters) -> list[tuple[Any, Any, int]]:
    triples = _tag_triples(store, step, stats)
    if step.axis == CHILD:
        triples = [triple for triple in triples
                   if store.level_of(triple[2]) == 0]
    else:
        triples = list(triples)
    return _attribute_filter_interval(store, step, triples, stats)


def _attribute_filter_interval(store: IntervalTableStore, step: Step,
                               triples: list[tuple[Any, Any, int]],
                               stats: Counters
                               ) -> list[tuple[Any, Any, int]]:
    """Apply a step's attribute predicate (one row fetch per candidate)."""
    if step.attribute is None:
        return triples
    key, value = step.attribute
    kept = []
    for triple in triples:
        stats.tuple_reads += 1
        if store.element(triple[2]).attributes.get(key) == value:
            kept.append(triple)
    return kept


def _tag_triples(store: IntervalTableStore, step: Step,
                 stats: Counters) -> list[tuple[Any, Any, int]]:
    # public index API only; the scan charge lands on the same stats
    # object the join and attribute filters use
    if step.test == "*":
        return store.all_regions(stats)
    return store.region_list(step.test, stats)


# ---------------------------------------------------------------------------
# the baseline: edge-table self-joins
# ---------------------------------------------------------------------------
def evaluate_edge(store: EdgeTableStore, query: XPathQuery
                  ) -> list[XMLElement]:
    """Per-step self-joins on (id, parent_id); '//' iterates per level."""
    first = query.steps[0]
    if first.axis == CHILD:
        context = [element_id for element_id in store.root_ids()
                   if first.matches(store.element(element_id).tag)]
    else:
        context = (store.ids_by_tag(first.test) if first.test != "*"
                   else [row[0] for row in store.iter_rows()])
    context = _attribute_filter_edge(store, first, context)
    for step in query.steps[1:]:
        tag = None if step.test == "*" else step.test
        unique = list(dict.fromkeys(context))
        if step.axis == CHILD:
            context = store.children_of(unique, tag)
        else:
            context = store.descendants_of(unique, tag)
        context = _attribute_filter_edge(store, step, context)
    ordered = sorted(set(context))
    return [store.element(element_id) for element_id in ordered]


def _attribute_filter_edge(store: EdgeTableStore, step: Step,
                           ids: list[int]) -> list[int]:
    """Apply a step's attribute predicate (one row fetch per candidate)."""
    if step.attribute is None:
        return ids
    key, value = step.attribute
    kept = []
    for element_id in ids:
        store.stats.tuple_reads += 1
        if store.element(element_id).attributes.get(key) == value:
            kept.append(element_id)
    return kept
