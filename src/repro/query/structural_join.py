"""Structural join algorithms over (begin, end) region labels.

The paper's §1 plan — "exactly one self-join with label comparisons as
predicates" — leaves the *join algorithm* to the database.  This module
implements the three classic choices so experiment E11 can compare them:

* :func:`nested_loop_containment` — the θ-join a naive optimizer would
  run: every ancestor against every descendant, O(|A| · |D|);
* :func:`stack_tree_join` — the stack-based sort-merge join of
  Al-Khalifa et al. (the algorithm behind
  :func:`repro.storage.relational.merge_interval_join`), O(|A| + |D| +
  output);
* :func:`index_skip_join` — for each ancestor, a counted-B-tree range
  probe over descendant begins, O(|A| · log |D| + output): wins when
  ancestors are few and selective.

All three return identical pair sets (property-tested).

Join inputs are (begin, end, payload) triples; when they originate from
a labeled document they are bulk-extracted through the cached label
vector (see :meth:`repro.labeling.scheme.LabeledDocument.warm_labels`),
so building the sorted input lists costs one flat pass, not one scheme
lookup per node.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.core.stats import NULL_COUNTERS, Counters
from repro.storage.btree import CountedBTree

#: join input: (begin, end, payload) triples sorted by begin
Triple = tuple[Any, Any, Any]


def nested_loop_containment(ancestors: Sequence[Triple],
                            descendants: Sequence[Triple],
                            stats: Counters = NULL_COUNTERS
                            ) -> Iterator[tuple[Any, Any]]:
    """Quadratic baseline: test every (ancestor, descendant) pair."""
    for a_begin, a_end, a_payload in ancestors:
        stats.tuple_reads += 1
        for d_begin, d_end, d_payload in descendants:
            stats.tuple_reads += 1
            stats.comparisons += 1
            if a_begin < d_begin and d_end < a_end:
                yield a_payload, d_payload


def stack_tree_join(ancestors: Sequence[Triple],
                    descendants: Sequence[Triple],
                    stats: Counters = NULL_COUNTERS
                    ) -> Iterator[tuple[Any, Any]]:
    """Stack-based merge join (Al-Khalifa et al. 2002), output order by
    descendant; inputs must be sorted by begin."""
    stack: list[Triple] = []
    position = 0
    for d_begin, d_end, d_payload in descendants:
        stats.tuple_reads += 1
        while position < len(ancestors) and \
                ancestors[position][0] < d_begin:
            candidate = ancestors[position]
            position += 1
            stats.tuple_reads += 1
            while stack and stack[-1][1] < candidate[0]:
                stack.pop()
            stack.append(candidate)
        while stack and stack[-1][1] < d_begin:
            stack.pop()
        for a_begin, a_end, a_payload in stack:
            stats.comparisons += 1
            if a_begin < d_begin and d_end < a_end:
                yield a_payload, d_payload


def index_skip_join(ancestors: Sequence[Triple],
                    descendants: Sequence[Triple],
                    stats: Counters = NULL_COUNTERS,
                    index: CountedBTree | None = None
                    ) -> Iterator[tuple[Any, Any]]:
    """Per-ancestor index range probe on descendant begin labels.

    ``index`` may be supplied pre-built (begin -> (end, payload)); it is
    built on the fly otherwise (cost counted).  Probe node accesses are
    always charged to ``stats`` — a pre-built index's own counters
    belong to whoever built it, not to this join.
    """
    if index is None:
        index = CountedBTree(order=32, stats=stats)
        index.bulk_load(
            (d_begin, (d_end, d_payload))
            for d_begin, d_end, d_payload in descendants)
    for a_begin, a_end, a_payload in ancestors:
        stats.tuple_reads += 1
        for d_begin, (d_end, d_payload) in index.iter_range(
                a_begin, a_end, stats=stats):
            stats.comparisons += 1
            if d_end < a_end:
                yield a_payload, d_payload


#: algorithm name -> callable, for experiments and benches
JOIN_ALGORITHMS = {
    "nested-loop": nested_loop_containment,
    "stack-tree": stack_tree_join,
    "index-skip": index_skip_join,
}
