"""Vectorized, snapshot-pinned XPath evaluation over label columns.

The paper's §1 pitch is that region labels turn every XPath axis into
*one* self-join whose predicates are label comparisons — and those
comparisons are pure integer arithmetic, decidable from the label bits
alone (the property optimal ancestry-labeling schemes formalize:
Fraigniaud & Korman 2016; Dahlgaard, Knudsen & Rotbart 2014).  The
other evaluators in :mod:`repro.query.engine` execute that join
tuple-at-a-time over boxed Python triples; this module executes it as
**batch range-intersection passes over flat integer columns**:

* a :class:`ColumnarStore` shreds a labeled document once into
  per-element ``(begin, end, level)`` columns plus a per-tag position
  index, grouped into contiguous per-shard segments.  Inputs come from
  a single bulk extraction — the document's cached label vector, or,
  for lock-free reads under live writers, the frozen per-shard byte
  images of a pinned :class:`repro.concurrent.engine.LabelSnapshot`
  via its ``label_columns(rank)`` hook — never from per-node scheme
  lookups;
* :func:`evaluate_columnar` runs each axis step as one vectorized
  containment pass: context intervals sorted by ``begin``, a running
  ``maximum.accumulate`` over their ``end``s, and one ``searchsorted``
  probe per candidate.  Because all regions come from one document
  they form a laminar family, so *"some context interval starting
  before me ends after me"* is exactly *"some context interval
  contains me"* — an existence test, no pair materialization.  Child
  steps add the paper's level-adjacency check by running the same pass
  per candidate level against the context subset one level up.

Backend discipline mirrors :mod:`repro.core.vectorized`: the numpy
int64 path is used when the active backend is ``numpy`` and every
label fits int64; otherwise a pure-Python ``array('q')``/``bisect``
path computes the same passes (plain lists above int64, so results are
always exact).  ``parallel=True`` evaluates the per-shard candidate
segments of each pass concurrently — safe against a pinned snapshot,
whose columns no writer can touch, so queries run lock-free under live
:class:`~repro.concurrent.engine.ConcurrentLTree` /
:class:`~repro.concurrent.service.ConcurrentDocument` writers.

Differential-tested against :func:`repro.query.engine.evaluate_dom`
over the seeded workload matrix (``tests/query``).
"""

from __future__ import annotations

import bisect
from array import array
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Iterable, Optional, Sequence

from repro.core import vectorized
from repro.core.stats import NULL_COUNTERS, Counters
from repro.query.xpath import CHILD, Step, XPathQuery
from repro.xml.model import XMLElement

try:  # gated dependency, exactly like repro.core.vectorized
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

#: labels at or above this magnitude leave int64 — force the exact path
_INT64_SAFE = 2 ** 62


def _use_numpy(max_label: int) -> bool:
    return (_np is not None and vectorized.get_backend() == "numpy"
            and max_label < _INT64_SAFE)


class ColumnarStore:
    """A document shredded into flat per-element label columns.

    Build through :meth:`from_labeled` (any scheme, labels off the
    cached label vector) or :meth:`from_snapshot` (labels off a pinned
    :class:`~repro.concurrent.engine.LabelSnapshot`'s frozen byte
    images — the lock-free path).  Elements are stored in document
    order, so the ``begin`` column is strictly increasing and
    positions double as document-order ranks; contiguous runs of
    elements whose begin handle lives in the same shard form the
    per-shard segments ``parallel`` evaluation fans out over.
    """

    def __init__(self, elements: list[XMLElement],
                 begins: list[int], ends: list[int], levels: list[int],
                 shard_slices: list[tuple[int, int]],
                 stats: Counters = NULL_COUNTERS):
        self.stats = stats
        self.elements = elements
        max_label = max(ends, default=0)
        self.backend = "numpy" if _use_numpy(max_label) else "array"
        if self.backend == "numpy":
            self._begin = _np.asarray(begins, dtype=_np.int64)
            self._end = _np.asarray(ends, dtype=_np.int64)
            self._level = _np.asarray(levels, dtype=_np.int64)
        else:
            kind = array if max_label < _INT64_SAFE else list
            self._begin = kind("q", begins) if kind is array else begins
            self._end = kind("q", ends) if kind is array else ends
            self._level = array("q", levels) if kind is array else levels
        #: contiguous (start, stop) element-position ranges, one per
        #: shard that holds at least one element's begin handle
        self.shard_slices = shard_slices
        by_tag: dict[str, list[int]] = {}
        for position, element in enumerate(elements):
            by_tag.setdefault(element.tag, []).append(position)
        self._by_tag = {tag: self._positions(positions)
                        for tag, positions in by_tag.items()}
        self._all = self._positions(range(len(elements)))

    def _positions(self, values: Iterable[int]):
        if self.backend == "numpy":
            return _np.fromiter(values, dtype=_np.int64)
        return array("q", values)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_labeled(cls, labeled: Any,
                     stats: Counters = NULL_COUNTERS) -> "ColumnarStore":
        """Shred a :class:`~repro.labeling.scheme.LabeledDocument`.

        Labels come off the document's cached label vector — one bulk
        extraction, zero per-node ``label_lookups`` — so this is the
        in-process construction path (queries see live labels; pair
        with :meth:`from_snapshot` to pin them against writers).
        """
        labeled.warm_labels()
        elements: list[XMLElement] = []
        begins: list[int] = []
        ends: list[int] = []
        levels: list[int] = []
        ranks: list[int] = []
        for element, begin_handle, _end_handle, level in \
                labeled.element_handles():
            region = labeled.region(element)
            elements.append(element)
            begins.append(region.begin)
            ends.append(region.end)
            levels.append(level)
            ranks.append(begin_handle[0]
                         if isinstance(begin_handle, tuple) else 0)
        return cls(elements, begins, ends, levels,
                   _rank_slices(ranks), stats)

    @classmethod
    def from_snapshot(cls, labeled: Any, snapshot: Any,
                      stats: Counters = NULL_COUNTERS) -> "ColumnarStore":
        """Shred against a pinned label snapshot (lock-free inputs).

        One structural DOM pass collects each element's ``(rank,
        slot)`` handles; labels are then gathered off the snapshot's
        frozen per-shard byte images through
        :meth:`~repro.concurrent.engine.LabelSnapshot.label_columns` —
        one column decode per shard, composed with the pinned stride.
        No locks are taken and the live engine is never consulted, so
        the resulting store (and every query over it) is immune to
        concurrent writers — including online shard rebalancing: the
        snapshot is pinned against a directory epoch, document handles
        minted before a pre-pin split/merge are resolved through the
        snapshot's forwarding view, and a rebalance committing *after*
        the pin changes nothing this store reads.  The *DOM* must be
        stable while queries run; engine-level writers (extra tokens,
        relabels, rebalances) are fine because the pin freezes every
        label this store reads.
        """
        elements: list[XMLElement] = []
        begin_handles: list[tuple[int, int]] = []
        end_handles: list[tuple[int, int]] = []
        levels: list[int] = []
        resolve = getattr(snapshot, "resolve", lambda handle: handle)
        for element, begin_handle, end_handle, level in \
                labeled.element_handles():
            elements.append(element)
            begin_handles.append(resolve(begin_handle))
            end_handles.append(resolve(end_handle))
            levels.append(level)
        columns: dict[int, Sequence[int]] = {}

        def column(shard_id: int) -> Sequence[int]:
            cached = columns.get(shard_id)
            if cached is None:
                cached = columns[shard_id] = \
                    snapshot.label_columns(shard_id)[1]
            return cached

        begins = _compose_labels(begin_handles, column,
                                 snapshot.shard_prefix)
        ends = _compose_labels(end_handles, column,
                               snapshot.shard_prefix)
        ids = [handle[0] for handle in begin_handles]
        return cls(elements, begins, ends, levels,
                   _rank_slices(ids), stats)

    # ------------------------------------------------------------------
    # column access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.elements)

    def tag_positions(self, test: str,
                      stats: Counters = NULL_COUNTERS):
        """Document-order positions matching a name test.

        Reading the per-tag index charges one ``tuple_read`` per entry
        — the same index-scan accounting
        :meth:`repro.storage.interval_table.IntervalTableStore
        .region_list` applies — against the *caller's* counters.
        """
        if test == "*":
            positions = self._all
        else:
            positions = self._by_tag.get(test)
            if positions is None:
                positions = self._positions(())
        stats.tuple_reads += len(positions)
        return positions

    def element(self, position: int) -> XMLElement:
        return self.elements[position]


def _rank_slices(ranks: list[int]) -> list[tuple[int, int]]:
    """Contiguous (start, stop) runs of equal shard rank.

    Document order sorts begin labels, and a shard's labels all precede
    the next shard's, so ranks are non-decreasing — the runs partition
    the position space.
    """
    slices: list[tuple[int, int]] = []
    start = 0
    for position in range(1, len(ranks)):
        if ranks[position] != ranks[start]:
            slices.append((start, position))
            start = position
    if ranks:
        slices.append((start, len(ranks)))
    return slices


def _compose_labels(handles: list[tuple[int, int]], column, prefix_of
                    ) -> list[int]:
    """Global labels of ``(shard_id, slot)`` handles via per-shard
    columns; ``prefix_of(shard_id)`` supplies each shard's directory
    prefix (position × stride), so composition works across rebalanced
    directories where ids are not positions."""
    if _np is not None and vectorized.get_backend() == "numpy" and handles:
        ids = _np.asarray([handle[0] for handle in handles],
                          dtype=_np.int64)
        slots = _np.asarray([handle[1] for handle in handles],
                            dtype=_np.int64)
        out = _np.empty(len(handles), dtype=object)
        exact = False
        for sid in sorted(set(int(value) for value in _np.unique(ids))):
            raw = column(sid)
            mask = ids == sid
            prefix = prefix_of(sid)
            if prefix + max(raw, default=0) >= _INT64_SAFE:
                exact = True
                break
            gathered = _np.asarray(raw, dtype=_np.int64)[slots[mask]]
            out[mask] = gathered + prefix
        if not exact:
            return out.tolist()
    return [prefix_of(handle[0]) + column(handle[0])[handle[1]]
            for handle in handles]


# ---------------------------------------------------------------------------
# the vectorized axis-step passes
# ---------------------------------------------------------------------------
def _chunks(cand, shard_slices, parallel: bool):
    """Split candidate positions into per-shard runs (or one run)."""
    if not parallel or len(shard_slices) < 2 or len(cand) == 0:
        return [cand]
    out = []
    if _np is not None and isinstance(cand, _np.ndarray):
        bounds = _np.searchsorted(
            cand, _np.asarray([stop for _, stop in shard_slices[:-1]]))
        prev = 0
        for bound in list(bounds) + [len(cand)]:
            if bound > prev:
                out.append(cand[prev:bound])
            prev = bound
        return out or [cand]
    prev = 0
    for _, stop in shard_slices[:-1]:
        bound = bisect.bisect_left(cand, stop, prev)
        if bound > prev:
            out.append(cand[prev:bound])
        prev = bound
    if prev < len(cand):
        out.append(cand[prev:])
    return out or [cand]


def _run_chunks(worker, chunks, parallel: bool):
    if len(chunks) == 1 or not parallel:
        return [worker(chunk) for chunk in chunks]
    with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
        return list(pool.map(worker, chunks))


def _match_step(store: ColumnarStore, context, cand, child_axis: bool,
                stats: Counters, parallel: bool):
    """Candidate positions with a (suitably-leveled) context ancestor.

    One batch pass: context intervals sorted by begin, prefix-maximum
    over their ends, one binary probe + two label comparisons per
    candidate.  Laminarity makes the existence test containment (see
    module docstring); the child axis adds the level-adjacency
    predicate by restricting the context to ``level - 1`` per distinct
    candidate level.
    """
    if len(context) == 0 or len(cand) == 0:
        return cand[:0]
    stats.comparisons += 2 * len(cand)
    if store.backend == "numpy":
        return _match_numpy(store, context, cand, child_axis, parallel)
    return _match_python(store, context, cand, child_axis, parallel)


def _match_numpy(store: ColumnarStore, context, cand, child_axis: bool,
                 parallel: bool):
    np = _np
    begin, end, level = store._begin, store._end, store._level
    if child_axis:
        ctx_levels = level[context]
        by_parent_level: dict[int, tuple] = {}
        for parent_level in np.unique(ctx_levels).tolist():
            anc = context[ctx_levels == parent_level]
            by_parent_level[parent_level] = (
                begin[anc], np.maximum.accumulate(end[anc]))

        def worker(chunk):
            mask = np.zeros(len(chunk), dtype=bool)
            chunk_levels = level[chunk]
            for child_level in np.unique(chunk_levels).tolist():
                prepared = by_parent_level.get(child_level - 1)
                if prepared is None:
                    continue
                sub = chunk_levels == child_level
                mask[sub] = _exists_containing(
                    prepared[0], prepared[1],
                    begin[chunk[sub]], end[chunk[sub]])
            return chunk[mask]
    else:
        ctx_begin = begin[context]
        ctx_maxend = np.maximum.accumulate(end[context])

        def worker(chunk):
            mask = _exists_containing(ctx_begin, ctx_maxend,
                                      begin[chunk], end[chunk])
            return chunk[mask]

    parts = _run_chunks(worker, _chunks(cand, store.shard_slices,
                                        parallel), parallel)
    return np.concatenate(parts) if len(parts) > 1 else parts[0]


def _exists_containing(ctx_begin, ctx_maxend, d_begin, d_end):
    """True where some context interval contains the candidate.

    ``searchsorted(..., 'left') - 1`` is the last context begin
    strictly below the candidate's; the prefix maximum over ends then
    answers "does any of those reach past my end" — which, for a
    laminar family, is containment.
    """
    np = _np
    idx = np.searchsorted(ctx_begin, d_begin, side="left") - 1
    ok = idx >= 0
    np.maximum(idx, 0, out=idx)
    ok &= ctx_maxend[idx] > d_end
    return ok


def _match_python(store: ColumnarStore, context, cand, child_axis: bool,
                  parallel: bool):
    begin, end, level = store._begin, store._end, store._level
    if child_axis:
        by_parent_level: dict[int, tuple[list[int], list[int]]] = {}
        for position in context:
            entry = by_parent_level.setdefault(level[position], ([], []))
            entry[0].append(begin[position])
            running = entry[1][-1] if entry[1] else end[position]
            entry[1].append(max(running, end[position]))

        def contains(position: int) -> bool:
            prepared = by_parent_level.get(level[position] - 1)
            if prepared is None:
                return False
            idx = bisect.bisect_left(prepared[0], begin[position]) - 1
            return idx >= 0 and prepared[1][idx] > end[position]
    else:
        ctx_begin = [begin[position] for position in context]
        ctx_maxend: list[int] = []
        running = None
        for position in context:
            value = end[position]
            running = value if running is None else max(running, value)
            ctx_maxend.append(running)

        def contains(position: int) -> bool:
            idx = bisect.bisect_left(ctx_begin, begin[position]) - 1
            return idx >= 0 and ctx_maxend[idx] > end[position]

    def worker(chunk):
        return [position for position in chunk if contains(position)]

    parts = _run_chunks(worker, _chunks(cand, store.shard_slices,
                                        parallel), parallel)
    merged: list[int] = []
    for part in parts:
        merged.extend(part)
    return store._positions(merged)


# ---------------------------------------------------------------------------
# the fourth evaluator
# ---------------------------------------------------------------------------
def evaluate_columnar(store: Any, query: XPathQuery,
                      stats: Counters = NULL_COUNTERS,
                      parallel: bool = False) -> list[XMLElement]:
    """Batch range-intersection XPath evaluation (module docstring).

    ``store`` is a :class:`ColumnarStore` — or an
    :class:`~repro.storage.interval_table.IntervalTableStore`, whose
    :meth:`~repro.storage.interval_table.IntervalTableStore.columnar`
    view is used.  Same front end and results as the other three
    evaluators (elements in document order); all index scans,
    comparisons and attribute row fetches are charged to ``stats``.
    ``parallel=True`` fans each step's candidate pass out over the
    store's per-shard segments.
    """
    if not isinstance(store, ColumnarStore):
        store = store.columnar()
    first = query.steps[0]
    positions = store.tag_positions(first.test, stats)
    if first.axis == CHILD:
        level = store._level
        positions = store._positions(
            position for position in positions if level[position] == 0)
    positions = _attribute_filter(store, first, positions, stats)
    for step in query.steps[1:]:
        cand = store.tag_positions(step.test, stats)
        positions = _match_step(store, positions, cand,
                                step.axis == CHILD, stats, parallel)
        positions = _attribute_filter(store, step, positions, stats)
    return [store.elements[position] for position in positions]


def _attribute_filter(store: ColumnarStore, step: Step, positions,
                      stats: Counters):
    """Apply a step's attribute predicate (one row fetch per candidate)."""
    if step.attribute is None:
        return positions
    key, value = step.attribute
    kept = []
    for position in positions:
        stats.tuple_reads += 1
        if store.elements[position].attributes.get(key) == value:
            kept.append(position)
    return store._positions(kept)
