"""Vectorized, snapshot-pinned XPath evaluation over label columns.

The paper's §1 pitch is that region labels turn every XPath axis into
*one* self-join whose predicates are label comparisons — and those
comparisons are pure integer arithmetic, decidable from the label bits
alone (the property optimal ancestry-labeling schemes formalize:
Fraigniaud & Korman 2016; Dahlgaard, Knudsen & Rotbart 2014).  The
other evaluators in :mod:`repro.query.engine` execute that join
tuple-at-a-time over boxed Python triples; this module executes it as
**batch range-intersection passes over flat integer columns**:

* a :class:`ColumnarStore` shreds a labeled document once into
  per-element ``(begin, end, level)`` columns plus a per-tag position
  index, grouped into contiguous per-shard segments.  Inputs come from
  a single bulk extraction — the document's cached label vector, or,
  for lock-free reads under live writers, the frozen per-shard byte
  images of a pinned :class:`repro.concurrent.engine.LabelSnapshot`
  via its ``label_columns(rank)`` hook — never from per-node scheme
  lookups;
* :func:`evaluate_columnar` runs each axis step as one vectorized
  containment pass: context intervals sorted by ``begin``, a running
  ``maximum.accumulate`` over their ``end``s, and one ``searchsorted``
  probe per candidate.  Because all regions come from one document
  they form a laminar family, so *"some context interval starting
  before me ends after me"* is exactly *"some context interval
  contains me"* — an existence test, no pair materialization.  Child
  steps add the paper's level-adjacency check by running the same pass
  per candidate level against the context subset one level up.

Three batching layers keep a *stream* of queries cheap, not just one:

* **incremental pins** — ``from_snapshot(..., previous=store)`` (or
  :meth:`ColumnarStore.repin`) keys every per-shard column segment on
  the ``(shard id, write version)`` pairs the snapshot's ``epoch``
  already carries, re-extracts only the dirty shards' segments and
  splices them into a copy of the cached columns.  The DOM-stable
  structures (element list, levels, the per-tag index, the predicate
  memo) are shared outright, because engine-level writes move labels,
  never element positions.  Shards rebalanced away since the previous
  pin are handled forwarding-table-aware (their cached handles are
  re-resolved through the snapshot's forwarding view); a directory
  epoch jump that keeps the membership (compact, bulk reload — slot
  maps may have been rewritten) falls back to a full rebuild;
* **multi-query batching** — a :class:`QuerySession` evaluates a batch
  against one pin, deduplicating common leading steps (a step-prefix
  trie over the batch) and sharing each context's sorted
  ``maximum.accumulate`` preparation across queries that branch off
  it, on both backends;
* **predicate pushdown** — ``[@name='value']`` filters are applied to
  the candidate positions *before* the containment join (memoized per
  store), instead of post-filtering joined results one row fetch at a
  time.

Backend discipline mirrors :mod:`repro.core.vectorized`: the numpy
int64 path is used when the active backend is ``numpy`` and every
label fits int64; otherwise a pure-Python ``array('q')``/``bisect``
path computes the same passes (plain lists above int64, so results are
always exact).  ``parallel=True`` evaluates the per-shard candidate
segments of each pass concurrently — safe against a pinned snapshot,
whose columns no writer can touch, so queries run lock-free under live
:class:`~repro.concurrent.engine.ConcurrentLTree` /
:class:`~repro.concurrent.service.ConcurrentDocument` writers.

Differential-tested against :func:`repro.query.engine.evaluate_dom`
over the seeded workload matrix (``tests/query``); the incremental
path is additionally held byte-identical to a full rebuild across
backends and rebalance epochs.
"""

from __future__ import annotations

import bisect
import time
from array import array
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Iterable, Optional, Sequence

from repro.core import vectorized
from repro.obs import METRICS, TRACER
from repro.core.stats import NULL_COUNTERS, Counters
from repro.query.xpath import CHILD, Step, XPathQuery
from repro.xml.model import XMLElement

try:  # gated dependency, exactly like repro.core.vectorized
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

#: labels at or above this magnitude leave int64 — force the exact path
_INT64_SAFE = 2 ** 62


def _use_numpy(max_label: int) -> bool:
    return (_np is not None and vectorized.get_backend() == "numpy"
            and max_label < _INT64_SAFE)


class _PinState:
    """What an incremental re-pin needs to splice instead of rebuild.

    Captured by ``from_snapshot``: the pinned epoch's per-shard write
    versions and prefixes, each element's *resolved* begin/end handles,
    and the element positions each shard's columns feed (``begin`` and
    ``end`` separately — an element spanning shards, like the root,
    draws its two labels from two different arenas).  Everything here
    is keyed by position, and positions are DOM-stable, so a re-pin
    only ever rewrites labels in place.
    """

    __slots__ = ("versions", "prefixes", "begin_handles", "end_handles",
                 "begin_by_sid", "end_by_sid")

    def __init__(self, versions: dict[int, int],
                 prefixes: dict[int, int],
                 begin_handles: list[tuple[int, int]],
                 end_handles: list[tuple[int, int]],
                 begin_by_sid: dict[int, list[int]],
                 end_by_sid: dict[int, list[int]]):
        self.versions = versions
        self.prefixes = prefixes
        self.begin_handles = begin_handles
        self.end_handles = end_handles
        self.begin_by_sid = begin_by_sid
        self.end_by_sid = end_by_sid


class ColumnarStore:
    """A document shredded into flat per-element label columns.

    Build through :meth:`from_labeled` (any scheme, labels off the
    cached label vector) or :meth:`from_snapshot` (labels off a pinned
    :class:`~repro.concurrent.engine.LabelSnapshot`'s frozen byte
    images — the lock-free path).  Elements are stored in document
    order, so the ``begin`` column is strictly increasing and
    positions double as document-order ranks; contiguous runs of
    elements whose begin handle lives in the same shard form the
    per-shard segments ``parallel`` evaluation fans out over.
    """

    def __init__(self, elements: list[XMLElement],
                 begins: list[int], ends: list[int], levels: list[int],
                 shard_slices: list[tuple[int, int]],
                 stats: Counters = NULL_COUNTERS):
        self.stats = stats
        self.elements = elements
        max_label = max(ends, default=0)
        self.backend = "numpy" if _use_numpy(max_label) else "array"
        if self.backend == "numpy":
            self._begin = _np.asarray(begins, dtype=_np.int64)
            self._end = _np.asarray(ends, dtype=_np.int64)
            self._level = _np.asarray(levels, dtype=_np.int64)
        else:
            kind = array if max_label < _INT64_SAFE else list
            self._begin = kind("q", begins) if kind is array else begins
            self._end = kind("q", ends) if kind is array else ends
            self._level = array("q", levels) if kind is array else levels
        #: contiguous (start, stop) element-position ranges, one per
        #: shard that holds at least one element's begin handle
        self.shard_slices = shard_slices
        by_tag: dict[str, list[int]] = {}
        for position, element in enumerate(elements):
            by_tag.setdefault(element.tag, []).append(position)
        self._by_tag = {tag: self._positions(positions)
                        for tag, positions in by_tag.items()}
        self._all = self._positions(range(len(elements)))
        #: snapshot epoch this store was pinned against (None for
        #: from_labeled stores) — equal epochs mean identical columns
        self.pinned_epoch: Optional[tuple] = None
        self._pin: Optional[_PinState] = None
        #: (test, key, value) -> pre-filtered positions; DOM-stable, so
        #: shared unchanged across incremental re-pins
        self._predicate_cache: dict[tuple, Any] = {}

    def _positions(self, values: Iterable[int]):
        if self.backend == "numpy":
            return _np.fromiter(values, dtype=_np.int64)
        return array("q", values)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_labeled(cls, labeled: Any,
                     stats: Counters = NULL_COUNTERS) -> "ColumnarStore":
        """Shred a :class:`~repro.labeling.scheme.LabeledDocument`.

        Labels come off the document's cached label vector — one bulk
        extraction, zero per-node ``label_lookups`` — so this is the
        in-process construction path (queries see live labels; pair
        with :meth:`from_snapshot` to pin them against writers).
        """
        labeled.warm_labels()
        elements: list[XMLElement] = []
        begins: list[int] = []
        ends: list[int] = []
        levels: list[int] = []
        ranks: list[int] = []
        for element, begin_handle, _end_handle, level in \
                labeled.element_handles():
            region = labeled.region(element)
            elements.append(element)
            begins.append(region.begin)
            ends.append(region.end)
            levels.append(level)
            ranks.append(begin_handle[0]
                         if isinstance(begin_handle, tuple) else 0)
        return cls(elements, begins, ends, levels,
                   _rank_slices(ranks), stats)

    @classmethod
    def from_snapshot(cls, labeled: Any, snapshot: Any,
                      stats: Counters = NULL_COUNTERS,
                      previous: Optional["ColumnarStore"] = None
                      ) -> "ColumnarStore":
        """Shred against a pinned label snapshot (instrumented wrapper
        — contract and incremental semantics on the impl below)."""
        if not (METRICS.enabled or TRACER.enabled):
            return cls._from_snapshot_impl(labeled, snapshot, stats,
                                           previous)
        kind = "query.repin" if previous is not None else "query.pin"
        t0 = time.perf_counter()
        with TRACER.span(kind) as span:
            store = cls._from_snapshot_impl(labeled, snapshot, stats,
                                            previous)
            span.set(elements=len(store.elements),
                     unchanged=store is previous)
        if METRICS.enabled:
            METRICS.observe(kind + ".seconds", time.perf_counter() - t0)
            METRICS.inc(kind + "s")
        return store

    @classmethod
    def _from_snapshot_impl(cls, labeled: Any, snapshot: Any,
                            stats: Counters = NULL_COUNTERS,
                            previous: Optional["ColumnarStore"] = None
                            ) -> "ColumnarStore":
        """Shred against a pinned label snapshot (lock-free inputs).

        One structural DOM pass collects each element's ``(rank,
        slot)`` handles; labels are then gathered off the snapshot's
        frozen per-shard byte images through
        :meth:`~repro.concurrent.engine.LabelSnapshot.label_columns` —
        one column decode per shard, composed with the pinned stride.
        No locks are taken and the live engine is never consulted, so
        the resulting store (and every query over it) is immune to
        concurrent writers — including online shard rebalancing: the
        snapshot is pinned against a directory epoch, document handles
        minted before a pre-pin split/merge are resolved through the
        snapshot's forwarding view, and a rebalance committing *after*
        the pin changes nothing this store reads.  The *DOM* must be
        stable while queries run; engine-level writers (extra tokens,
        relabels, rebalances) are fine because the pin freezes every
        label this store reads.

        ``previous`` enables the **incremental** path: pass the store
        from an earlier pin of the same document and only the shards
        written (or rebalanced) since that pin are re-extracted — the
        clean shards' column segments, the element list, the per-tag
        index and the predicate memo are spliced/shared from the cache
        (see the module docstring for the exact fallback rules; the
        result is byte-identical to a full rebuild either way).  When
        nothing changed at all, ``previous`` itself is returned.
        """
        if previous is not None:
            spliced = cls._splice_from(previous, snapshot, stats)
            if spliced is not None:
                return spliced
        elements: list[XMLElement] = []
        begin_handles: list[tuple[int, int]] = []
        end_handles: list[tuple[int, int]] = []
        levels: list[int] = []
        resolve = getattr(snapshot, "resolve", lambda handle: handle)
        for element, begin_handle, end_handle, level in \
                labeled.element_handles():
            elements.append(element)
            begin_handles.append(resolve(begin_handle))
            end_handles.append(resolve(end_handle))
            levels.append(level)
        columns: dict[int, Sequence[int]] = {}

        def column(shard_id: int) -> Sequence[int]:
            cached = columns.get(shard_id)
            if cached is None:
                cached = columns[shard_id] = \
                    snapshot.label_columns(shard_id)[1]
            return cached

        begins = _compose_labels(begin_handles, column,
                                 snapshot.shard_prefix)
        ends = _compose_labels(end_handles, column,
                               snapshot.shard_prefix)
        ids = [handle[0] for handle in begin_handles]
        store = cls(elements, begins, ends, levels,
                    _rank_slices(ids), stats)
        store._remember_pin(snapshot, begin_handles, end_handles)
        stats.shards_reextracted += len(columns)
        return store

    def _remember_pin(self, snapshot: Any,
                      begin_handles: list[tuple[int, int]],
                      end_handles: list[tuple[int, int]]) -> None:
        """Capture the :class:`_PinState` a future re-pin splices from
        (skipped for snapshot-likes without a versioned epoch)."""
        epoch = getattr(snapshot, "epoch", None)
        if not isinstance(epoch, tuple) or not epoch:
            return
        begin_by_sid: dict[int, list[int]] = {}
        end_by_sid: dict[int, list[int]] = {}
        for position, handle in enumerate(begin_handles):
            begin_by_sid.setdefault(handle[0], []).append(position)
        for position, handle in enumerate(end_handles):
            end_by_sid.setdefault(handle[0], []).append(position)
        prefixes = {sid: snapshot.shard_prefix(sid)
                    for sid in set(begin_by_sid) | set(end_by_sid)}
        self.pinned_epoch = epoch
        self._pin = _PinState(dict(epoch[1:]), prefixes,
                              begin_handles, end_handles,
                              begin_by_sid, end_by_sid)

    @classmethod
    def _splice_from(cls, previous: "ColumnarStore", snapshot: Any,
                     stats: Counters) -> Optional["ColumnarStore"]:
        """The incremental re-pin: patch only dirty shards' labels.

        Returns ``None`` whenever splicing cannot be *proven* identical
        to a full rebuild — no pin state, a backend flip, beyond-int64
        columns, a membership-preserving directory-epoch jump (compact
        / bulk reload may have remapped slots behind unchanged ids), a
        broken forwarding chain, or labels leaving int64 — and the
        caller rebuilds from scratch.
        """
        pin = previous._pin
        epoch = getattr(snapshot, "epoch", None)
        if pin is None or not isinstance(epoch, tuple) or not epoch:
            return None
        if epoch == previous.pinned_epoch:
            stats.shards_reused += len(pin.versions)
            return previous
        new_versions = dict(epoch[1:])
        if epoch[0] != previous.pinned_epoch[0] and \
                set(new_versions) == set(pin.versions):
            return None
        backend = "numpy" if (_np is not None and
                              vectorized.get_backend() == "numpy") \
            else "array"
        if previous.backend != backend or \
                isinstance(previous._begin, list):
            return None

        touched = set(pin.begin_by_sid) | set(pin.end_by_sid)
        dirty: list[int] = []
        vanished: list[int] = []
        reused = 0
        prefixes: dict[int, int] = {}
        for sid in sorted(touched):
            version = new_versions.get(sid)
            if version is None:
                vanished.append(sid)
                continue
            prefix = snapshot.shard_prefix(sid)
            prefixes[sid] = prefix
            if version == pin.versions.get(sid) and \
                    prefix == pin.prefixes.get(sid):
                reused += 1
            else:
                dirty.append(sid)

        columns: dict[int, Sequence[int]] = {}

        def column(shard_id: int) -> Sequence[int]:
            cached = columns.get(shard_id)
            if cached is None:
                cached = columns[shard_id] = \
                    snapshot.label_columns(shard_id)[1]
            return cached

        if backend == "numpy":
            begins, ends = previous._begin.copy(), previous._end.copy()
        else:
            begins = array("q", previous._begin)
            ends = array("q", previous._end)
        if vanished:
            begin_handles = list(pin.begin_handles)
            end_handles = list(pin.end_handles)
            begin_by_sid = {sid: list(positions) for sid, positions
                            in pin.begin_by_sid.items()}
            end_by_sid = {sid: list(positions) for sid, positions
                          in pin.end_by_sid.items()}
        else:
            begin_handles, end_handles = \
                pin.begin_handles, pin.end_handles
            begin_by_sid, end_by_sid = pin.begin_by_sid, pin.end_by_sid

        spliced = 0
        retargeted: set[int] = set()
        try:
            for sid in dirty:
                prefix = prefixes[sid]
                local = column(sid)
                if backend == "numpy":
                    # vectorized in-place gather; numpy would *wrap*
                    # on int64 overflow instead of raising, so guard
                    # the worst case explicitly and let the full
                    # rebuild pick the exact representation
                    if prefix + max(local, default=0) >= _INT64_SAFE:
                        return None
                    local_column = _np.asarray(local, dtype=_np.int64)
                for by_sid, handles, out in (
                        (begin_by_sid, begin_handles, begins),
                        (end_by_sid, end_handles, ends)):
                    positions = by_sid.get(sid)
                    if not positions:
                        continue
                    if backend == "numpy":
                        slots = _np.fromiter(
                            (handles[position][1]
                             for position in positions),
                            dtype=_np.int64, count=len(positions))
                        out[_np.asarray(positions, dtype=_np.int64)] = \
                            local_column[slots] + prefix
                    else:
                        for position in positions:
                            out[position] = \
                                prefix + local[handles[position][1]]
                    spliced += 1
            for sid in vanished:
                for by_sid, handles, out in (
                        (begin_by_sid, begin_handles, begins),
                        (end_by_sid, end_handles, ends)):
                    positions = by_sid.pop(sid, None)
                    if not positions:
                        continue
                    for position in positions:
                        try:
                            target = snapshot.resolve(handles[position])
                        except ValueError:
                            return None
                        handles[position] = target
                        tid = target[0]
                        prefix = prefixes.get(tid)
                        if prefix is None:
                            prefix = prefixes[tid] = \
                                snapshot.shard_prefix(tid)
                        out[position] = prefix + column(tid)[target[1]]
                        by_sid.setdefault(tid, []).append(position)
                        retargeted.add(tid)
                    spliced += 1
        except OverflowError:
            return None
        if retargeted:
            # forwarding may interleave a vanished shard's positions
            # into an existing segment's list: restore position order
            for by_sid in (begin_by_sid, end_by_sid):
                for tid in retargeted:
                    if tid in by_sid:
                        by_sid[tid].sort()

        store = cls.__new__(cls)
        store.stats = stats
        store.elements = previous.elements
        store.backend = backend
        store._begin = begins
        store._end = ends
        store._level = previous._level
        store.shard_slices = _rank_slices(
            [handle[0] for handle in begin_handles]) if vanished \
            else previous.shard_slices
        store._by_tag = previous._by_tag
        store._all = previous._all
        store._predicate_cache = previous._predicate_cache
        store.pinned_epoch = epoch
        store._pin = _PinState(new_versions, prefixes,
                               begin_handles, end_handles,
                               begin_by_sid, end_by_sid)
        stats.shards_reused += reused
        stats.shards_reextracted += len(columns)
        stats.segments_spliced += spliced
        return store

    def repin(self, labeled: Any, snapshot: Any,
              stats: Optional[Counters] = None) -> "ColumnarStore":
        """``from_snapshot(labeled, snapshot, previous=self)`` sugar —
        the per-batch refresh loop's one-liner."""
        return ColumnarStore.from_snapshot(
            labeled, snapshot,
            self.stats if stats is None else stats, previous=self)

    # ------------------------------------------------------------------
    # column access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.elements)

    def tag_positions(self, test: str,
                      stats: Counters = NULL_COUNTERS):
        """Document-order positions matching a name test.

        Reading the per-tag index charges one ``tuple_read`` per entry
        — the same index-scan accounting
        :meth:`repro.storage.interval_table.IntervalTableStore
        .region_list` applies — against the *caller's* counters.
        """
        if test == "*":
            positions = self._all
        else:
            positions = self._by_tag.get(test)
            if positions is None:
                positions = self._positions(())
        stats.tuple_reads += len(positions)
        return positions

    def predicate_positions(self, test: str,
                            attribute: Optional[tuple[str, str]],
                            stats: Counters = NULL_COUNTERS):
        """Positions matching a name test *and* attribute predicate.

        The pushdown entry point: the ``[@key='value']`` filter runs
        over the per-tag index **before** any containment join sees the
        candidates, and the filtered list is memoized per store (the
        DOM is stable, so it never goes stale — re-pins share it).
        First computation charges one ``tuple_read`` per tag candidate
        examined; memo hits charge an index scan of the filtered list.
        ``pushdown_pruned`` counts the candidates the join never had to
        probe, either way.
        """
        if attribute is None:
            return self.tag_positions(test, stats)
        cache_key = (test,) + attribute
        positions = self._predicate_cache.get(cache_key)
        if positions is None:
            base = self.tag_positions(test, NULL_COUNTERS)
            key, value = attribute
            elements = self.elements
            stats.tuple_reads += len(base)
            positions = self._positions(
                position for position in base
                if elements[position].attributes.get(key) == value)
            self._predicate_cache[cache_key] = positions
            base_count = len(base)
        else:
            stats.tuple_reads += len(positions)
            base_count = len(self.tag_positions(test, NULL_COUNTERS))
        stats.pushdown_pruned += base_count - len(positions)
        return positions

    def element(self, position: int) -> XMLElement:
        return self.elements[position]


def _rank_slices(ranks: list[int]) -> list[tuple[int, int]]:
    """Contiguous (start, stop) runs of equal shard rank.

    Document order sorts begin labels, and a shard's labels all precede
    the next shard's, so ranks are non-decreasing — the runs partition
    the position space.
    """
    slices: list[tuple[int, int]] = []
    start = 0
    for position in range(1, len(ranks)):
        if ranks[position] != ranks[start]:
            slices.append((start, position))
            start = position
    if ranks:
        slices.append((start, len(ranks)))
    return slices


def _compose_labels(handles: list[tuple[int, int]], column, prefix_of
                    ) -> list[int]:
    """Global labels of ``(shard_id, slot)`` handles via per-shard
    columns; ``prefix_of(shard_id)`` supplies each shard's directory
    prefix (position × stride), so composition works across rebalanced
    directories where ids are not positions."""
    if _np is not None and vectorized.get_backend() == "numpy" and handles:
        ids = _np.asarray([handle[0] for handle in handles],
                          dtype=_np.int64)
        slots = _np.asarray([handle[1] for handle in handles],
                            dtype=_np.int64)
        out = _np.empty(len(handles), dtype=object)
        exact = False
        for sid in sorted(set(int(value) for value in _np.unique(ids))):
            raw = column(sid)
            mask = ids == sid
            prefix = prefix_of(sid)
            if prefix + max(raw, default=0) >= _INT64_SAFE:
                exact = True
                break
            gathered = _np.asarray(raw, dtype=_np.int64)[slots[mask]]
            out[mask] = gathered + prefix
        if not exact:
            return out.tolist()
    return [prefix_of(handle[0]) + column(handle[0])[handle[1]]
            for handle in handles]


# ---------------------------------------------------------------------------
# the vectorized axis-step passes
# ---------------------------------------------------------------------------
def _chunks(cand, shard_slices, parallel: bool):
    """Split candidate positions into per-shard runs (or one run)."""
    if not parallel or len(shard_slices) < 2 or len(cand) == 0:
        return [cand]
    out = []
    if _np is not None and isinstance(cand, _np.ndarray):
        bounds = _np.searchsorted(
            cand, _np.asarray([stop for _, stop in shard_slices[:-1]]))
        prev = 0
        for bound in list(bounds) + [len(cand)]:
            if bound > prev:
                out.append(cand[prev:bound])
            prev = bound
        return out or [cand]
    prev = 0
    for _, stop in shard_slices[:-1]:
        bound = bisect.bisect_left(cand, stop, prev)
        if bound > prev:
            out.append(cand[prev:bound])
        prev = bound
    if prev < len(cand):
        out.append(cand[prev:])
    return out or [cand]


def _run_chunks(worker, chunks, parallel: bool):
    if len(chunks) == 1 or not parallel:
        return [worker(chunk) for chunk in chunks]
    with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
        return list(pool.map(worker, chunks))


def _prepare_context(store: ColumnarStore, context, child_axis: bool):
    """Sorted-context structures of one containment pass, hoisted.

    Descendant axis: the context's begin column plus the running
    prefix-maximum over its ends.  Child axis: the same pair per
    distinct context level (the level-adjacency predicate restricts
    each candidate level to the context subset one level up).  Built
    once per step — *outside* the per-chunk workers, so
    ``parallel=True`` fans out over a single shared preparation on
    both backends instead of re-deriving it — and cacheable by a
    :class:`QuerySession`, which reuses it across batched queries
    whose next step starts from the same context.
    """
    begin, end, level = store._begin, store._end, store._level
    if store.backend == "numpy":
        np = _np
        if child_axis:
            ctx_levels = level[context]
            by_parent_level: dict[int, tuple] = {}
            for parent_level in np.unique(ctx_levels).tolist():
                anc = context[ctx_levels == parent_level]
                by_parent_level[parent_level] = (
                    begin[anc], np.maximum.accumulate(end[anc]))
            return by_parent_level
        return (begin[context], np.maximum.accumulate(end[context]))
    if child_axis:
        by_level: dict[int, tuple[list[int], list[int]]] = {}
        for position in context:
            entry = by_level.setdefault(level[position], ([], []))
            entry[0].append(begin[position])
            running = entry[1][-1] if entry[1] else end[position]
            entry[1].append(max(running, end[position]))
        return by_level
    ctx_begin = [begin[position] for position in context]
    ctx_maxend: list[int] = []
    running = None
    for position in context:
        value = end[position]
        running = value if running is None else max(running, value)
        ctx_maxend.append(running)
    return (ctx_begin, ctx_maxend)


def _match_step(store: ColumnarStore, context, cand, child_axis: bool,
                stats: Counters, parallel: bool, prepared=None):
    """Candidate positions with a (suitably-leveled) context ancestor.

    One batch pass: context intervals sorted by begin, prefix-maximum
    over their ends, one binary probe + two label comparisons per
    candidate.  Laminarity makes the existence test containment (see
    module docstring); the child axis adds the level-adjacency
    predicate by restricting the context to ``level - 1`` per distinct
    candidate level.  ``prepared`` short-circuits the context
    preparation with a cached :func:`_prepare_context` result.
    """
    if len(context) == 0 or len(cand) == 0:
        return cand[:0]
    stats.comparisons += 2 * len(cand)
    if prepared is None:
        prepared = _prepare_context(store, context, child_axis)
    if store.backend == "numpy":
        return _match_numpy(store, prepared, cand, child_axis, parallel)
    return _match_python(store, prepared, cand, child_axis, parallel)


def _match_numpy(store: ColumnarStore, prepared, cand, child_axis: bool,
                 parallel: bool):
    np = _np
    begin, end, level = store._begin, store._end, store._level
    if child_axis:
        by_parent_level = prepared

        def worker(chunk):
            mask = np.zeros(len(chunk), dtype=bool)
            chunk_levels = level[chunk]
            for child_level in np.unique(chunk_levels).tolist():
                pair = by_parent_level.get(child_level - 1)
                if pair is None:
                    continue
                sub = chunk_levels == child_level
                mask[sub] = _exists_containing(
                    pair[0], pair[1],
                    begin[chunk[sub]], end[chunk[sub]])
            return chunk[mask]
    else:
        ctx_begin, ctx_maxend = prepared

        def worker(chunk):
            mask = _exists_containing(ctx_begin, ctx_maxend,
                                      begin[chunk], end[chunk])
            return chunk[mask]

    parts = _run_chunks(worker, _chunks(cand, store.shard_slices,
                                        parallel), parallel)
    return np.concatenate(parts) if len(parts) > 1 else parts[0]


def _exists_containing(ctx_begin, ctx_maxend, d_begin, d_end):
    """True where some context interval contains the candidate.

    ``searchsorted(..., 'left') - 1`` is the last context begin
    strictly below the candidate's; the prefix maximum over ends then
    answers "does any of those reach past my end" — which, for a
    laminar family, is containment.
    """
    np = _np
    idx = np.searchsorted(ctx_begin, d_begin, side="left") - 1
    ok = idx >= 0
    np.maximum(idx, 0, out=idx)
    ok &= ctx_maxend[idx] > d_end
    return ok


def _match_python(store: ColumnarStore, prepared, cand, child_axis: bool,
                  parallel: bool):
    begin, end, level = store._begin, store._end, store._level
    if child_axis:
        by_parent_level = prepared

        def contains(position: int) -> bool:
            pair = by_parent_level.get(level[position] - 1)
            if pair is None:
                return False
            idx = bisect.bisect_left(pair[0], begin[position]) - 1
            return idx >= 0 and pair[1][idx] > end[position]
    else:
        ctx_begin, ctx_maxend = prepared

        def contains(position: int) -> bool:
            idx = bisect.bisect_left(ctx_begin, begin[position]) - 1
            return idx >= 0 and ctx_maxend[idx] > end[position]

    def worker(chunk):
        return [position for position in chunk if contains(position)]

    parts = _run_chunks(worker, _chunks(cand, store.shard_slices,
                                        parallel), parallel)
    merged: list[int] = []
    for part in parts:
        merged.extend(part)
    return store._positions(merged)


# ---------------------------------------------------------------------------
# the fourth evaluator
# ---------------------------------------------------------------------------
def _first_step_positions(store: ColumnarStore, step: Step,
                          stats: Counters):
    """Candidates of an absolute first step: pushdown-filtered tag
    positions, restricted to the root level for the child axis."""
    positions = store.predicate_positions(step.test, step.attribute,
                                          stats)
    if step.axis == CHILD:
        level = store._level
        positions = store._positions(
            position for position in positions if level[position] == 0)
    return positions


def evaluate_columnar(store: Any, query: XPathQuery,
                      stats: Counters = NULL_COUNTERS,
                      parallel: bool = False) -> list[XMLElement]:
    """Batch range-intersection XPath evaluation (module docstring).

    ``store`` is a :class:`ColumnarStore` — or an
    :class:`~repro.storage.interval_table.IntervalTableStore`, whose
    :meth:`~repro.storage.interval_table.IntervalTableStore.columnar`
    view is used.  Same front end and results as the other three
    evaluators (elements in document order); all index scans,
    comparisons and attribute row fetches are charged to ``stats``.
    Attribute predicates are pushed down into candidate generation
    (filtered before the containment join — commutative with the
    post-filter plan, because the predicate reads only the element).
    ``parallel=True`` fans each step's candidate pass out over the
    store's per-shard segments.  For a *batch* of queries against one
    store, prefer a :class:`QuerySession`, which shares work between
    them.
    """
    if not isinstance(store, ColumnarStore):
        store = store.columnar()
    obs = METRICS.enabled
    t0 = time.perf_counter() if obs else 0.0
    positions = _first_step_positions(store, query.steps[0], stats)
    if obs:
        METRICS.observe("query.step.seconds", time.perf_counter() - t0)
    for step in query.steps[1:]:
        t0 = time.perf_counter() if obs else 0.0
        cand = store.predicate_positions(step.test, step.attribute,
                                         stats)
        positions = _match_step(store, positions, cand,
                                step.axis == CHILD, stats, parallel)
        if obs:
            METRICS.observe("query.step.seconds",
                            time.perf_counter() - t0)
    return [store.elements[position] for position in positions]


class QuerySession:
    """Evaluates a batch of XPath queries against one pinned store.

    Work shared across the batch, on both backends:

    * **leading-step dedup** — step results are memoized under the
      tuple of ``(axis, test, attribute)`` step keys evaluated so far,
      so ``//a/b/c`` and ``//a/b/d`` compute ``//a/b`` once (a prefix
      trie over the batch, flattened into a dict);
    * **shared context preparation** — when two queries' next steps
      branch off the same memoized context, the sorted-context
      ``maximum.accumulate`` structures (:func:`_prepare_context`) are
      built once and reused for every sibling step;
    * the store-level per-tag index and pushdown predicate memos.

    Counters reflect work actually performed: a step served from the
    session cache charges nothing, which is exactly the saving the
    session exists to make observable.  Sessions are cheap — make one
    per (re-)pin; the caches die with it, the store's own memos
    survive into the next pin.
    """

    def __init__(self, store: Any, stats: Counters = NULL_COUNTERS,
                 parallel: bool = False):
        if not isinstance(store, ColumnarStore):
            store = store.columnar()
        self.store = store
        self.stats = stats
        self.parallel = parallel
        #: session memo traffic — hits are steps served from the cache,
        #: misses computed ones; :meth:`memo_hit_ratio` is the headline
        self.step_hits = 0
        self.step_misses = 0
        self._steps: dict[tuple, Any] = {}
        self._prepared: dict[tuple[int, bool], Any] = {}
        # cached step results keep every context object alive, so the
        # id()-keyed prepared-context cache can never alias a recycled
        # address; belt-and-braces for contexts cached transiently
        self._keepalive: list[Any] = []

    def positions(self, query: XPathQuery):
        """Matching document-order positions (the element-free core)."""
        store, stats = self.store, self.stats
        key: tuple = ()
        positions = None
        for index, step in enumerate(query.steps):
            key += ((step.axis, step.test, step.attribute),)
            cached = self._steps.get(key)
            obs = METRICS.enabled
            if cached is not None:
                positions = cached
                self.step_hits += 1
                if obs:
                    METRICS.inc("query.session.step_hits")
                continue
            self.step_misses += 1
            if obs:
                METRICS.inc("query.session.step_misses")
            t0 = time.perf_counter() if obs else 0.0
            if index == 0:
                positions = _first_step_positions(store, step, stats)
            else:
                cand = store.predicate_positions(
                    step.test, step.attribute, stats)
                positions = _match_step(
                    store, positions, cand, step.axis == CHILD, stats,
                    self.parallel,
                    prepared=self._prepare(positions,
                                           step.axis == CHILD))
            if obs:
                METRICS.observe("query.step.seconds",
                                time.perf_counter() - t0)
            self._steps[key] = positions
        return positions

    def memo_hit_ratio(self) -> float:
        """Fraction of steps served from the session memo so far."""
        total = self.step_hits + self.step_misses
        return self.step_hits / total if total else 0.0

    def _prepare(self, context, child_axis: bool):
        if len(context) == 0:
            return None
        cache_key = (id(context), child_axis)
        prepared = self._prepared.get(cache_key)
        if prepared is None:
            prepared = _prepare_context(self.store, context, child_axis)
            self._prepared[cache_key] = prepared
            self._keepalive.append(context)
        return prepared

    def evaluate(self, query: XPathQuery) -> list[XMLElement]:
        """One query's elements, sharing the session's caches."""
        elements = self.store.elements
        return [elements[position] for position in self.positions(query)]

    def evaluate_batch(self, queries: Sequence[XPathQuery]
                       ) -> list[list[XMLElement]]:
        """All queries' results, in order, with cross-query sharing."""
        return [self.evaluate(query) for query in queries]


def evaluate_batch(store: Any, queries: Sequence[XPathQuery],
                   stats: Counters = NULL_COUNTERS,
                   parallel: bool = False) -> list[list[XMLElement]]:
    """One-shot :class:`QuerySession` over ``queries`` (result order
    matches input order; each result list is in document order)."""
    return QuerySession(store, stats, parallel).evaluate_batch(queries)
