"""XPath subset: the navigation queries the paper's labels accelerate.

Grammar (absolute paths, the §1 examples like ``book//title``)::

    query      :=  step+
    step       :=  ('/' | '//') test predicate?
    test       :=  NAME | '*'
    predicate  :=  '[@' NAME '=' ('"' VALUE '"' | "'" VALUE "'") ']'

``/`` is the child axis, ``//`` the descendant-or-self::node()/child
shorthand (descendant axis on elements, as in the paper's usage).
Attribute predicates filter the step's result set by an exact attribute
match, e.g. ``//item[@id='item3']/name``.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Iterator, Optional

from repro.errors import XPathSyntaxError

CHILD = "child"
DESCENDANT = "descendant"

_NAME_PATTERN = re.compile(r"[A-Za-z_][\w.:\-]*|\*")
_PREDICATE_PATTERN = re.compile(
    r"\[@([A-Za-z_][\w.:\-]*)=(?:'([^']*)'|\"([^\"]*)\")\]")


@dataclasses.dataclass(frozen=True)
class Step:
    """One location step: axis, name test, optional attribute filter."""

    axis: str
    test: str
    attribute: Optional[tuple[str, str]] = None

    def __post_init__(self) -> None:
        if self.axis not in (CHILD, DESCENDANT):
            raise XPathSyntaxError(f"unknown axis {self.axis!r}")
        if not _NAME_PATTERN.fullmatch(self.test):
            raise XPathSyntaxError(f"invalid name test {self.test!r}")

    def matches(self, tag: str) -> bool:
        """Name test against an element tag (attribute filter excluded)."""
        return self.test == "*" or self.test == tag

    def matches_element(self, element) -> bool:
        """Full step test: tag plus the attribute predicate, if any."""
        if not self.matches(element.tag):
            return False
        if self.attribute is None:
            return True
        key, value = self.attribute
        return element.attributes.get(key) == value

    def __str__(self) -> str:
        prefix = "/" if self.axis == CHILD else "//"
        predicate = ""
        if self.attribute is not None:
            key, value = self.attribute
            # values holding a single quote must use the grammar's
            # double-quoted form, or the output would not re-parse
            quote = '"' if "'" in value else "'"
            predicate = f"[@{key}={quote}{value}{quote}]"
        return f"{prefix}{self.test}{predicate}"


@dataclasses.dataclass(frozen=True)
class XPathQuery:
    """A parsed absolute path expression."""

    steps: tuple[Step, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise XPathSyntaxError("query must have at least one step")

    def __str__(self) -> str:
        return "".join(str(step) for step in self.steps)

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)


def parse_xpath(text: str) -> XPathQuery:
    """Parse an absolute XPath-subset expression.

    >>> str(parse_xpath("/book//title"))
    '/book//title'
    >>> [s.axis for s in parse_xpath("//item/name")]
    ['descendant', 'child']
    """
    source = text.strip()
    if not source.startswith("/"):
        raise XPathSyntaxError(
            f"only absolute paths are supported, got {text!r}")
    steps: list[Step] = []
    position = 0
    while position < len(source):
        if source.startswith("//", position):
            axis = DESCENDANT
            position += 2
        elif source.startswith("/", position):
            axis = CHILD
            position += 1
        else:
            raise XPathSyntaxError(
                f"expected '/' or '//' at offset {position} in {text!r}")
        match = _NAME_PATTERN.match(source, position)
        if match is None:
            raise XPathSyntaxError(
                f"expected a name test at offset {position} in {text!r}")
        test = match.group()
        position = match.end()
        attribute = None
        if position < len(source) and source[position] == "[":
            predicate = _PREDICATE_PATTERN.match(source, position)
            if predicate is None:
                raise XPathSyntaxError(
                    f"malformed predicate at offset {position} in "
                    f"{text!r} (only [@name='value'] is supported)")
            value = predicate.group(2)
            if value is None:
                value = predicate.group(3)
            attribute = (predicate.group(1), value)
            position = predicate.end()
        steps.append(Step(axis, test, attribute))
    return XPathQuery(tuple(steps))
