"""`ConcurrentDocument`: the WAL-backed, multi-writer document service.

Composition of the three durability/concurrency pieces this package and
:mod:`repro.storage` provide:

* in memory, a :class:`repro.concurrent.engine.ConcurrentLTree` — the
  per-shard-locked sharded engine with zero-lock snapshot reads;
* on disk, a :class:`repro.storage.pages.PageStore` holding the last
  **checkpoint** (one ``LTREEARR`` image per shard + manifest, exactly
  a ``ShardedCompactLTree.save``) and a
  :class:`repro.storage.wal.WriteAheadLog` holding every logical op
  since that checkpoint, under group commit.

**Determinism.**  Every mutation is journaled *under its shard's write
lock*, so the WAL's global record order restricted to one shard equals
that shard's actual apply order; ops on different shards are
shard-local and commute.  A serial replay of the merged tape therefore
reproduces the concurrent execution's final state bit-for-bit — labels,
slot layout, free lists, stride (which is recomputed from shard heights
as replay grows them).  This is the property the threaded differential
harness in ``tests/concurrent`` checks across seeds.

**Recovery** (:meth:`open`) = open the last checkpoint (shard-lazily),
replay the WAL tail (records with sequence number above the
checkpoint's watermark), done.  The watermark travels *inside* the
checkpoint's atomic catalog flip (``extra_blobs``), so a crash between
"state saved" and "log truncated" cannot double-apply: the stale
records are simply skipped.  A record torn by a crash mid-append fails
its CRC and is physically dropped, never deserialized.

**Payload contract.**  Ops are serialized as JSON, so payloads must be
JSON-serializable (the same constraint ``CompactLTree.to_bytes``
imposes); tuples come back as lists.  Passing a non-serializable
payload raises :class:`~repro.errors.StorageError` after the in-memory
apply — the log is then behind the memory state, so treat the service
as poisoned and reopen it.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Iterator, Optional, Sequence

from repro.concurrent.engine import ConcurrentLTree, LabelSnapshot
from repro.core.params import DEFAULT_PARAMS, LTreeParams
from repro.core.sharded import (DEFAULT_N_SHARDS, RebalancePolicy,
                                ShardedCompactLTree)
from repro.core.stats import NULL_COUNTERS, Counters
from repro.errors import ParameterError, RecoveryError, StorageError
from repro.obs import METRICS, TRACER
from repro.storage.faults import FAILPOINTS, failpoint
from repro.storage.pages import PageStore
from repro.storage.wal import WriteAheadLog

#: file names a service directory contains
PAGES_FILE = "pages.ltp"
WAL_FILE = "ops.wal"

#: blob names inside the page store
SCHEME_BLOB = "scheme"
SERVICE_META_BLOB = "service.meta"

#: on-store format version of the service meta blob
SERVICE_FORMAT_VERSION = 1


def _is_half_created(pages_path: str, wal_path: str) -> bool:
    """True when the directory is debris of a crashed ``create()``.

    The meta blob is the first thing a create stores; a page store
    without it — and without any WAL records — never acknowledged an
    operation, so re-creating over it loses nothing.  Anything that
    does not open cleanly is *not* classified as debris: a corrupt
    store deserves a loud error, not silent replacement.
    """
    if os.path.exists(wal_path) and os.path.getsize(wal_path) > 0:
        return False
    try:
        with PageStore(pages_path) as probe:
            return not probe.has_blob(SERVICE_META_BLOB)
    except (StorageError, OSError):
        return False

# the enumerable crash surface of this module (see repro.storage.faults)
FAILPOINTS.declare("service:create:post-store",
                   "page store created, WAL not yet created")
FAILPOINTS.declare("service:open:pre-replay",
                   "checkpoint loaded, WAL tail not yet replayed")
FAILPOINTS.declare("service:checkpoint:pre-save",
                   "watermark captured, engine save not yet issued")
FAILPOINTS.declare("service:checkpoint:post-save",
                   "image + watermark flipped, WAL not yet truncated")
FAILPOINTS.declare("service:checkpoint:post-truncate",
                   "WAL truncated, latch not yet released")
FAILPOINTS.declare("service:rebalance:post-actions",
                   "split/merge journaled, WAL batch not yet committed")


def _tuple(handle: Sequence[int]) -> tuple[int, int]:
    return (handle[0], handle[1])


def apply_logged_op(engine: Any, op: dict) -> None:
    """Apply one WAL record to a (raw or wrapped) sharded engine.

    The single decoder for the op vocabulary the journal hook in
    :class:`~repro.concurrent.engine.ConcurrentLTree` emits —
    ``insert_after``/``insert_before``, ``append``/``prepend``,
    ``insert_run_after``/``insert_run_before`` (the §4.1 batch),
    ``delete``, ``set_payload``, ``bulk_load`` — and the logical
    rebalance records ``split``/``merge``, which carry the new shard
    ids explicitly so replay re-mints exactly the ids the original run
    minted (the arenas they rebuild are deterministic functions of the
    shard contents at that point of the tape).  Used by recovery and by
    the test harness's serial replay oracle.
    """
    kind = op["op"]
    if kind == "insert_after":
        engine.insert_after(_tuple(op["h"]), op["p"])
    elif kind == "insert_before":
        engine.insert_before(_tuple(op["h"]), op["p"])
    elif kind == "append":
        engine.append(op["p"])
    elif kind == "prepend":
        engine.prepend(op["p"])
    elif kind == "insert_run_after":
        engine.insert_run_after(_tuple(op["h"]), op["ps"])
    elif kind == "insert_run_before":
        engine.insert_run_before(_tuple(op["h"]), op["ps"])
    elif kind == "delete":
        engine.mark_deleted(_tuple(op["h"]))
    elif kind == "set_payload":
        engine.set_payload(_tuple(op["h"]), op["p"])
    elif kind == "bulk_load":
        bounds = op.get("bounds")
        engine.bulk_load(op["ps"], boundaries=bounds)
    elif kind == "split":
        engine.split_shard(op["id"], op["at"], new_ids=tuple(op["new"]))
    elif kind == "merge":
        engine.merge_shards(op["a"], op["b"], new_id=op["new"])
    else:
        raise StorageError(f"unknown WAL op kind {kind!r}")


class ConcurrentDocument:
    """A durable, multi-writer ordered document over sharded arenas.

    Use the classmethods: :meth:`create` starts a fresh service in a
    directory, :meth:`open` recovers an existing one (checkpoint +
    WAL tail).  All mutating methods are thread-safe and may be called
    from many writer threads; writers anchored in different shards run
    in parallel.  :meth:`snapshot` gives readers an immutable label
    view they can query with zero locks against the writers.

    Durability knobs: ``group_commit`` auto-commits the WAL every N
    ops; :meth:`commit` forces the batch out (one fsync under
    ``sync=True``); :meth:`checkpoint` folds the log into the page
    store and truncates it.

    Examples
    --------
    >>> import tempfile
    >>> directory = tempfile.mkdtemp()
    >>> with ConcurrentDocument.create(directory, n_shards=2) as doc:
    ...     handles = doc.bulk_load(["a", "b", "c", "d"])
    ...     _ = doc.insert_after(handles[1], "b2")
    ...     doc.commit()
    >>> with ConcurrentDocument.open(directory) as doc:
    ...     doc.payloads()
    ['a', 'b', 'b2', 'c', 'd']
    """

    def __init__(self, tree: ConcurrentLTree, store: PageStore,
                 wal: WriteAheadLog, checkpoint_seq: int,
                 meta: dict,
                 rebalance_policy: Optional[RebalancePolicy] = None
                 ) -> None:
        self.tree = tree
        self.store = store
        self.wal = wal
        #: sequence number of the last op folded into the page store
        self.checkpoint_seq = checkpoint_seq
        self._meta = meta
        #: when set, :meth:`checkpoint` runs this policy as a background
        #: maintenance step right after folding the log (see
        #: :meth:`rebalance`)
        self.rebalance_policy = rebalance_policy
        #: last checkpoint failure, if the most recent attempt failed
        #: (see :meth:`health`)
        self._last_checkpoint_error: Optional[dict] = None
        #: wall-clock stamp of the last successful checkpoint — carried
        #: in the meta blob, so it survives a reopen (see :meth:`health`)
        self._last_checkpoint_unix: Optional[float] = \
            meta.get("checkpoint_unix")
        #: (monotonic stamp, per-shard write counts) at the last
        #: :meth:`metrics` call — the write-rate baseline
        self._rate_mark: tuple[float, dict] = (time.monotonic(),
                                               tree.write_counts())

    # ------------------------------------------------------------------
    # construction and recovery
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, directory: str, params: LTreeParams = DEFAULT_PARAMS,
               n_shards: int = DEFAULT_N_SHARDS,
               violator_policy: str = "highest", sync: bool = False,
               group_commit: Optional[int] = 64,
               stats: Counters = NULL_COUNTERS,
               shard_stats: bool = False,
               rebalance_policy: Optional[RebalancePolicy] = None
               ) -> "ConcurrentDocument":
        """Start a fresh service in ``directory`` (created if missing).

        The engine parameters are recorded in the store's
        ``service.meta`` blob, so :meth:`open` needs only the
        directory.  ``sync=True`` applies the fsync-barrier discipline
        to *both* files: WAL commits and checkpoint catalog flips
        survive power loss, at one fsync per batch/flip.
        """
        os.makedirs(directory, exist_ok=True)
        pages_path = os.path.join(directory, PAGES_FILE)
        wal_path = os.path.join(directory, WAL_FILE)
        if (os.path.exists(pages_path) and
                os.path.getsize(pages_path) > 0) or \
                (os.path.exists(wal_path) and
                 os.path.getsize(wal_path) > 0):
            if _is_half_created(pages_path, wal_path):
                # a create() that crashed before the meta blob landed:
                # nothing was ever acknowledged, so the debris is safe
                # to clear and the create re-runs from scratch
                for stale in (pages_path, wal_path):
                    if os.path.exists(stale):
                        os.remove(stale)
            else:
                raise StorageError(
                    f"{directory!r} already holds a document service; "
                    f"use open()")
        store = PageStore(pages_path, sync=sync)
        try:
            failpoint("service:create:post-store", directory=directory)
            meta = {
                "format": SERVICE_FORMAT_VERSION,
                "f": params.f,
                "s": params.s,
                "label_base": params.base,
                "violator_policy": violator_policy,
                "n_shards": n_shards,
                "checkpoint_seq": 0,
            }
            store.put_blob(SERVICE_META_BLOB,
                           json.dumps(meta).encode("utf-8"))
            wal = WriteAheadLog(wal_path, sync=sync,
                                group_commit=group_commit)
        except BaseException:
            store.close()
            raise
        engine = ShardedCompactLTree(params, stats,
                                     violator_policy=violator_policy,
                                     n_shards=n_shards,
                                     shard_stats=shard_stats)
        tree = ConcurrentLTree(engine, journal=wal.append)
        return cls(tree, store, wal, checkpoint_seq=0, meta=meta,
                   rebalance_policy=rebalance_policy)

    @classmethod
    def open(cls, directory: str, sync: bool = False,
             group_commit: Optional[int] = 64,
             stats: Counters = NULL_COUNTERS,
             shard_stats: bool = False,
             rebalance_policy: Optional[RebalancePolicy] = None
             ) -> "ConcurrentDocument":
        """Recover a service: last checkpoint + replayed WAL tail.

        The checkpoint reopens shard-lazily (only arenas the replayed
        tail writes are deserialized); records at or below the
        checkpoint watermark are skipped, a torn trailing record is
        dropped by CRC before anything deserializes it.
        """
        pages_path = os.path.join(directory, PAGES_FILE)
        if not os.path.exists(pages_path):
            raise StorageError(
                f"{directory!r} holds no document service; use create()")
        store = PageStore(pages_path, sync=sync)
        try:
            if not store.has_blob(SERVICE_META_BLOB):
                raise RecoveryError(
                    f"{directory!r} holds a half-created service (a "
                    f"create() died before its meta blob); re-run "
                    f"create()")
            meta = json.loads(
                bytes(store.get_blob(SERVICE_META_BLOB)).decode("utf-8"))
            if meta.get("format") != SERVICE_FORMAT_VERSION:
                raise ParameterError(
                    f"unsupported service format {meta.get('format')!r} "
                    f"(supported: {SERVICE_FORMAT_VERSION})")
            params = LTreeParams(f=meta["f"], s=meta["s"],
                                 label_base=meta["label_base"])
            checkpoint_seq = meta["checkpoint_seq"]
            wal_path = os.path.join(directory, WAL_FILE)
            wal_existed = os.path.exists(wal_path) and \
                os.path.getsize(wal_path) > 0
            wal = WriteAheadLog(wal_path, sync=sync,
                                group_commit=group_commit)
        except BaseException:
            store.close()
            raise
        try:
            if not wal_existed and checkpoint_seq > 0:
                # the log vanished (partial restore of the directory?).
                # Everything up to the watermark is in the checkpoint,
                # so the store itself is whole — but a fresh log MUST
                # continue the sequence at watermark+1: restarting at 1
                # would hand new commits sequence numbers the next
                # recovery's replay(after_seq=watermark) silently skips
                wal.truncate(checkpoint_seq + 1)
            elif wal.base_seq > checkpoint_seq + 1:
                # records between the watermark and the log's first
                # sequence number are unaccounted for — this log does
                # not belong to this checkpoint; recovering would
                # silently lose the gap
                raise RecoveryError(
                    f"WAL starts at sequence {wal.base_seq} but the "
                    f"checkpoint watermark is {checkpoint_seq}: "
                    f"records {checkpoint_seq + 1}..{wal.base_seq - 1} "
                    f"are missing")
            if store.has_blob(SCHEME_BLOB):
                engine = ShardedCompactLTree.load(
                    store, SCHEME_BLOB, stats=stats,
                    shard_stats=shard_stats)
            else:
                # crashed (or never checkpointed) before the first
                # checkpoint: everything lives in the WAL
                engine = ShardedCompactLTree(
                    params, stats,
                    violator_policy=meta["violator_policy"],
                    n_shards=meta["n_shards"],
                    shard_stats=shard_stats)
            failpoint("service:open:pre-replay", directory=directory)
            replay_start = time.perf_counter()
            replayed = 0
            with TRACER.span("service.recovery",
                             directory=directory) as span:
                for _seq, op in wal.replay(after_seq=checkpoint_seq):
                    apply_logged_op(engine, op)
                    replayed += 1
                span.set(replayed=replayed)
            if METRICS.enabled:
                METRICS.observe("service.recovery.seconds",
                                time.perf_counter() - replay_start)
                METRICS.inc("service.recoveries")
                METRICS.inc("service.ops_replayed", replayed)
        except BaseException:
            wal.close()
            store.close()
            raise
        tree = ConcurrentLTree(engine, journal=wal.append)
        return cls(tree, store, wal, checkpoint_seq=checkpoint_seq,
                   meta=meta, rebalance_policy=rebalance_policy)

    # ------------------------------------------------------------------
    # logical ops (thread-safe; journaled under the shard lock)
    # ------------------------------------------------------------------
    def bulk_load(self, payloads: Sequence[Any],
                  boundaries: Optional[Sequence[int]] = None
                  ) -> list[tuple[int, int]]:
        return self.tree.bulk_load(payloads, boundaries=boundaries)

    def insert_after(self, handle: tuple[int, int],
                     payload: Any) -> tuple[int, int]:
        return self.tree.insert_after(handle, payload)

    def insert_before(self, handle: tuple[int, int],
                      payload: Any) -> tuple[int, int]:
        return self.tree.insert_before(handle, payload)

    def append(self, payload: Any) -> tuple[int, int]:
        return self.tree.append(payload)

    def prepend(self, payload: Any) -> tuple[int, int]:
        return self.tree.prepend(payload)

    def insert_run_after(self, handle: tuple[int, int],
                         payloads: Sequence[Any]) -> list[tuple[int, int]]:
        return self.tree.insert_run_after(handle, payloads)

    def insert_run_before(self, handle: tuple[int, int],
                          payloads: Sequence[Any]
                          ) -> list[tuple[int, int]]:
        return self.tree.insert_run_before(handle, payloads)

    def delete(self, handle: tuple[int, int]) -> None:
        self.tree.mark_deleted(handle)

    def set_payload(self, handle: tuple[int, int], payload: Any) -> None:
        self.tree.set_payload(handle, payload)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def label(self, handle: tuple[int, int]) -> int:
        return self.tree.num(handle)

    def labels(self, include_deleted: bool = False) -> list[int]:
        return self.tree.labels(include_deleted)

    def label_map(self) -> dict[tuple[int, int], int]:
        return self.tree.label_map()

    def payload(self, handle: tuple[int, int]) -> Any:
        return self.tree.payload(handle)

    def payloads(self) -> list[Any]:
        return self.tree.payloads(include_deleted=False)

    def handles(self) -> Iterator[tuple[int, int]]:
        return self.tree.iter_leaves(include_deleted=False)

    def snapshot(self) -> LabelSnapshot:
        """Zero-lock reader view; see :class:`LabelSnapshot`."""
        return self.tree.snapshot()

    def shard_report(self) -> list[dict]:
        """Per-shard occupancy rows (the rebalance policy's input)."""
        return self.tree.shard_report()

    # ------------------------------------------------------------------
    # online maintenance
    # ------------------------------------------------------------------
    def rebalance(self, policy: Optional[RebalancePolicy] = None
                  ) -> list[dict]:
        """Run the rebalance policy online; returns actions performed.

        Each split/merge locks only its involved shards — writers to
        every other shard proceed throughout — and journals a logical
        ``split``/``merge`` record *before* the new shards become
        visible, so recovery replays the rebalance deterministically
        (or skips it wholesale if the record never made it out: the
        pre-rebalance arenas are still what the checkpoint holds).  The
        WAL batch is committed afterwards so the records are durable
        under the same group-commit discipline as ordinary ops.
        """
        policy = policy or self.rebalance_policy
        if policy is None:
            return []
        with TRACER.span("service.rebalance") as span:
            performed = self.tree.rebalance(policy)
            span.set(actions=len(performed))
        if performed:
            failpoint("service:rebalance:post-actions",
                      performed=performed)
            self.wal.commit()
            if METRICS.enabled:
                METRICS.inc("service.rebalance_actions", len(performed))
        return performed

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def commit(self) -> None:
        """Force the buffered WAL batch out (group commit boundary)."""
        if not METRICS.enabled:
            self.wal.commit()
            return
        t0 = time.perf_counter()
        self.wal.commit()
        METRICS.observe("service.commit.seconds",
                        time.perf_counter() - t0)
        METRICS.gauge("service.wal_backlog",
                      self.wal.last_seq - self.checkpoint_seq)

    def checkpoint(self, include_payloads: bool = True,
                   best_effort: bool = False) -> Optional[int]:
        """Fold the WAL into the page store; returns the watermark.

        Stop-the-world for its *whole* duration — watermark capture,
        engine save and WAL truncate all happen under one exclusive
        hold of the latch, so no writer can journal an op between the
        watermark read and the truncate (which would silently erase a
        committed record the image does not contain), or sneak an op
        into the saved image with a sequence number above the
        watermark (which a crash would then double-apply).  The engine
        image and the ``checkpoint_seq`` watermark land under **one**
        atomic catalog flip (so recovery can never see one without the
        other), then the WAL is truncated.  A crash anywhere in
        between only leaves already-applied records in the log, which
        the watermark makes recovery skip.

        **Graceful degradation.**  A checkpoint that fails with a
        storage or OS error (full disk, injected fault) leaves the
        service *serving*: the save's atomic catalog flip means the
        store still holds the previous checkpoint whole, the WAL keeps
        accepting and committing ops, and recovery replays them from
        the old watermark.  The failure is recorded in :meth:`health`;
        with ``best_effort=True`` it is swallowed (``None`` returned)
        so a maintenance-loop checkpoint cannot take down the writers,
        otherwise it re-raises after recording.
        """
        try:
            with TRACER.span("service.checkpoint") as span:
                # the pause is the exclusive hold: the window no writer
                # can journal an op — the stall an operator feels
                pause_start = time.perf_counter()
                with self.tree.exclusive():
                    self.wal.commit()
                    watermark = self.wal.last_seq
                    meta = dict(self._meta)
                    meta["checkpoint_seq"] = watermark
                    meta["checkpoint_unix"] = round(time.time(), 3)
                    failpoint("service:checkpoint:pre-save",
                              watermark=watermark)
                    # the raw engine: the latch is held (not reentrant)
                    self.tree.engine.save(
                        self.store, SCHEME_BLOB,
                        include_payloads=include_payloads,
                        extra_blobs={
                            SERVICE_META_BLOB:
                                json.dumps(meta).encode("utf-8")})
                    self._meta = meta
                    self.checkpoint_seq = watermark
                    failpoint("service:checkpoint:post-save",
                              watermark=watermark)
                    self.wal.truncate(watermark + 1)
                    failpoint("service:checkpoint:post-truncate",
                              watermark=watermark)
                pause = time.perf_counter() - pause_start
                span.set(watermark=watermark,
                         pause_seconds=round(pause, 6))
        except (StorageError, OSError) as exc:
            self._last_checkpoint_error = {
                "stage": "checkpoint",
                "type": type(exc).__name__,
                "message": str(exc),
                "unix_time": round(time.time(), 3),
                "wal_last_seq": self.wal.last_seq,
            }
            if best_effort:
                return None
            raise
        self._last_checkpoint_error = None
        self._last_checkpoint_unix = meta["checkpoint_unix"]
        if METRICS.enabled:
            METRICS.observe("service.checkpoint.seconds", pause)
            METRICS.inc("service.checkpoints")
            METRICS.gauge("service.checkpoint_pause_seconds",
                          round(pause, 6))
            METRICS.gauge("service.wal_backlog",
                          self.wal.last_seq - self.checkpoint_seq)
        # background maintenance between checkpoints: the rebalance
        # records land in the *fresh* WAL (sequence numbers above the
        # watermark), so a crash from here on replays them against the
        # exact image just checkpointed
        if self.rebalance_policy is not None:
            self.rebalance()
        return watermark

    def health(self) -> dict:
        """Structured durability health of this service.

        ``status`` is ``"ok"`` when the last checkpoint attempt (if
        any) succeeded, ``"degraded"`` when it failed — the service
        then keeps serving commits from the WAL alone, and
        ``wal_records_since_checkpoint`` measures how much replay a
        recovery would need (the figure that grows until a checkpoint
        succeeds again).  ``last_error`` carries the failure's stage,
        exception type, message and time.

        ``wal_backlog`` is the replay debt in records (``wal_last_seq``
        minus the checkpoint watermark — the same figure as
        ``wal_records_since_checkpoint``, named for operators watching
        it as a gauge), and ``seconds_since_checkpoint`` is the age of
        the last successful checkpoint (``None`` until one lands; the
        stamp rides in the meta blob, so the age survives a reopen).
        """
        degraded = self._last_checkpoint_error is not None
        last_unix = self._last_checkpoint_unix
        return {
            "status": "degraded" if degraded else "ok",
            "checkpoint_seq": self.checkpoint_seq,
            "wal_last_seq": self.wal.last_seq,
            "wal_pending_records": self.wal.pending_records,
            "wal_records_since_checkpoint":
                self.wal.last_seq - self.checkpoint_seq,
            "wal_backlog": self.wal.last_seq - self.checkpoint_seq,
            "last_checkpoint_unix": last_unix,
            "seconds_since_checkpoint":
                round(time.time() - last_unix, 3)
                if last_unix is not None else None,
            "last_error": self._last_checkpoint_error,
        }

    def metrics(self) -> dict:
        """Everything :meth:`health` says plus the live numbers.

        Always present (no instrumentation required): the ``health``
        dict, WAL counters off the log object, the page store's
        :meth:`~repro.storage.pages.PageStore.cache_stats`, and
        per-shard write counts/rates (rates are measured over the
        interval since the previous ``metrics()`` call).  When the
        :data:`repro.obs.METRICS` registry is enabled, its merged
        ``counters``/``gauges``/``histograms`` ride along — that is
        where the commit/checkpoint latency histograms (p50/p95/p99)
        live.  See ``docs/observability.md`` for the name catalog.
        """
        now = time.monotonic()
        counts = self.tree.write_counts()
        mark_time, mark_counts = self._rate_mark
        interval = max(now - mark_time, 1e-9)
        rates = {sid: round((count - mark_counts.get(sid, 0)) / interval,
                            3)
                 for sid, count in counts.items()}
        self._rate_mark = (now, counts)
        if METRICS.enabled:
            METRICS.gauge("service.wal_backlog",
                          self.wal.last_seq - self.checkpoint_seq)
        snapshot = METRICS.snapshot()
        return {
            "health": self.health(),
            "wal": {
                "last_seq": self.wal.last_seq,
                "backlog": self.wal.last_seq - self.checkpoint_seq,
                "pending_records": self.wal.pending_records,
                "commits": self.wal.commits,
                "fsyncs": self.wal.fsyncs,
                "records_appended": self.wal.records_appended,
                "dropped_bytes": self.wal.dropped_bytes,
            },
            "cache": self.store.cache_stats(),
            "shards": {
                "write_counts": counts,
                "write_rates_per_sec": rates,
                "interval_seconds": round(interval, 3),
            },
            "counters": snapshot["counters"],
            "gauges": snapshot["gauges"],
            "histograms": snapshot["histograms"],
        }

    def close(self) -> None:
        """Commit the WAL tail and release both files (no checkpoint).

        The page store is released even when the WAL's final commit
        fails — an error path must not leak the store's fd and mmaps.
        """
        try:
            self.wal.close()
        finally:
            self.store.close()

    def __enter__(self) -> "ConcurrentDocument":
        return self

    def __exit__(self, *exc_info: object) -> Optional[bool]:
        self.close()
        return None

    def __repr__(self) -> str:
        return (f"ConcurrentDocument(shards={self.tree.shard_count}, "
                f"checkpoint_seq={self.checkpoint_seq}, "
                f"wal_last_seq={self.wal.last_seq})")
