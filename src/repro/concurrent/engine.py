"""Thread-safe multi-writer wrapper over the sharded L-Tree engine.

:class:`ConcurrentLTree` exposes the same surface as
:class:`repro.core.sharded.ShardedCompactLTree` (so the
``ltree-sharded`` scheme adapter and the document layer run over it
unchanged) and adds the three concurrency properties the engine's
shard-locality makes cheap:

* **parallel writers** — every routed update takes the global latch in
  *shared* mode plus its one shard's write lock, so writers anchored in
  different shards never wait on each other.  The engine's own inline
  stride bump is deferred (``defer_directory_growth``); when an update
  grows its shard past the directory height, the O(1) bump runs under a
  single *directory latch* while the grown shard's write lock is still
  held — the only global critical section on the write path, and no
  reader can compose that shard's labels with the stale stride because
  its lock is taken;
* **consistent bulk reads** — ``labels()`` / ``label_map()`` acquire
  every shard's read lock (ascending rank) before reading the stride,
  so the composed sequence is one consistent cut;
* **zero-lock snapshot reads** — :meth:`snapshot` pins, per shard, the
  immutable payload-free byte image the lazy-reopen path already serves
  (:meth:`~repro.core.sharded.ShardedCompactLTree.shard_image`), cached
  per shard version so an unchanged shard is pinned for free.  The
  resulting :class:`LabelSnapshot` answers label / order / containment
  queries against live writers without taking any lock.

Whole-structure operations — ``bulk_load`` (the shard set is rebuilt),
``compact``, ``save``, ``validate``, materializing enumerations that
include tombstones — take the latch exclusively (stop the world).

An optional ``journal`` callable receives one dict per successful
mutation *while the shard write lock is still held*, so the journal's
global order restricted to any one shard equals that shard's actual
apply order — the property that makes a serial replay of the merged
tape deterministic (see :mod:`repro.concurrent.service`, which plugs
the write-ahead log in here).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.concurrent.locks import ShardLockTable
from repro.core.params import LTreeParams
from repro.core.sharded import _Shard, ShardedCompactLTree
from repro.core.stats import NULL_COUNTERS, Counters


class LabelSnapshot:
    """An immutable label view pinned from per-shard byte images.

    Holds one lazy :class:`~repro.core.sharded._Shard` per shard rank —
    the same structure the shard-lazy reopen path reads — plus the
    stride at pin time.  Every query below runs against those frozen
    bytes: no locks, no interaction with live writers, and two
    snapshots with equal :attr:`epoch` are guaranteed bit-identical.
    """

    __slots__ = ("params", "stride", "epoch", "_shards")

    def __init__(self, params: LTreeParams, stride: int,
                 shards: list[_Shard], epoch: tuple[int, ...]):
        self.params = params
        self.stride = stride
        #: per-shard write-version vector at pin time (equal epochs ⇒
        #: bit-identical snapshots)
        self.epoch = epoch
        self._shards = shards

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def label(self, handle: tuple[int, int]) -> int:
        """Global label of a live handle at pin time."""
        rank, slot = handle
        shard = self._shards[rank]
        if shard.is_deleted(slot):
            raise ValueError("handle refers to a deleted item")
        return rank * self.stride + shard.num(slot)

    def is_deleted(self, handle: tuple[int, int]) -> bool:
        rank, slot = handle
        return self._shards[rank].is_deleted(slot)

    def handles(self) -> Iterator[tuple[int, int]]:
        """Live handles in document order at pin time."""
        for rank, shard in enumerate(self._shards):
            for slot in shard.live_slots():
                yield (rank, slot)

    def labels(self) -> list[int]:
        """Live labels in document order (strictly increasing)."""
        out: list[int] = []
        for rank, shard in enumerate(self._shards):
            prefix = rank * self.stride
            out.extend(prefix + value for value in shard.nums_of_live())
        return out

    def label_map(self) -> dict[tuple[int, int], int]:
        mapping: dict[tuple[int, int], int] = {}
        for rank, shard in enumerate(self._shards):
            prefix = rank * self.stride
            mapping.update(
                ((rank, slot), prefix + value)
                for slot, value in zip(shard.live_slots(),
                                       shard.nums_of_live()))
        return mapping

    def label_columns(self, rank: int) -> tuple[list[int], Sequence[int]]:
        """``(live_slots, local_label_column)`` of one pinned shard.

        The columnar query engine's bulk-input hook: the slot-indexed
        label column is decoded once off the frozen byte image (and
        memoized on the shard — a pinned shard can never change), so a
        query extracts every label it needs in one pass per shard
        instead of one :meth:`label` call per node.  Compose the global
        label of ``slot`` as ``rank * stride + column[slot]``.  Like
        every other read on this object, this takes no locks and never
        touches the live engine.
        """
        shard = self._shards[rank]
        return list(shard.live_slots()), shard.num_column()

    def precedes(self, first: tuple[int, int],
                 second: tuple[int, int]) -> bool:
        """Document order of two live handles, labels only."""
        return self.label(first) < self.label(second)

    def contains(self, outer: tuple[tuple[int, int], tuple[int, int]],
                 inner: tuple[tuple[int, int], tuple[int, int]]) -> bool:
        """Region containment of two (begin, end) handle pairs —
        the paper's ancestor test, answered entirely off the pinned
        images."""
        outer_begin, outer_end = outer
        inner_begin, inner_end = inner
        return self.label(outer_begin) < self.label(inner_begin) and \
            self.label(inner_end) < self.label(outer_end)

    @property
    def n_live(self) -> int:
        return sum(len(shard.live) for shard in self._shards)

    def __repr__(self) -> str:
        return (f"LabelSnapshot(shards={len(self._shards)}, "
                f"stride={self.stride}, epoch={self.epoch})")


class ConcurrentLTree:
    """Per-shard-locked, snapshot-readable sharded engine (module doc).

    Parameters
    ----------
    engine:
        The sharded engine to guard.  It is adopted: direct use of the
        raw engine afterwards bypasses the locks.
    journal:
        Optional callable receiving one op dict per successful
        mutation, invoked under the mutated shard's write lock.
    """

    def __init__(self, engine: ShardedCompactLTree,
                 journal: Optional[Callable[[dict], Any]] = None):
        self._engine = engine
        self._journal = journal
        engine.defer_directory_growth = True
        self._locks = ShardLockTable(engine.shard_count)
        #: serializes every stride write — the global critical section
        self._directory_latch = threading.Lock()
        self._versions = [0] * engine.shard_count
        #: rank -> (version, image, live, meta) pinned-image cache
        self._image_cache: dict[int, tuple] = {}
        #: stop-the-world stride bumps performed (mirrors the engine's
        #: ``directory_rebuilds`` but counted by the wrapper)
        self.stride_bumps = 0

    # ------------------------------------------------------------------
    # engine passthrough metadata
    # ------------------------------------------------------------------
    @property
    def engine(self) -> ShardedCompactLTree:
        """The wrapped engine (lock-free access; callers beware)."""
        return self._engine

    @property
    def params(self) -> LTreeParams:
        return self._engine.params

    @property
    def stats(self) -> Counters:
        return self._engine.stats

    @property
    def violator_policy(self) -> str:
        return self._engine.violator_policy

    @property
    def n_shards(self) -> int:
        return self._engine.n_shards

    @property
    def shard_count(self) -> int:
        return self._engine.shard_count

    @property
    def shard_counters(self) -> list[Counters]:
        return self._engine.shard_counters

    @property
    def materialized_shards(self) -> list[int]:
        return self._engine.materialized_shards

    @property
    def stride(self) -> int:
        return self._engine.stride

    @property
    def directory_height(self) -> int:
        return self._engine.directory_height

    @property
    def directory_rebuilds(self) -> int:
        return self._engine.directory_rebuilds

    @property
    def label_space(self) -> int:
        return self._engine.label_space

    @property
    def n_leaves(self) -> int:
        with self._locks.read_all():
            return self._engine.n_leaves

    def tombstone_count(self) -> int:
        with self._locks.read_all():
            return self._engine.tombstone_count()

    # ------------------------------------------------------------------
    # write path (latch shared + one shard exclusive)
    # ------------------------------------------------------------------
    def _after_write(self, rank: int, op: Optional[dict]) -> None:
        """Version bump, journaling, and the deferred stride bump —
        all while the caller still holds shard ``rank``'s write lock."""
        self._versions[rank] += 1
        if op is not None and self._journal is not None:
            self._journal(op)
        if self._engine.needs_directory_growth(rank):
            with self._directory_latch:
                if self._engine.grow_directory(rank):
                    self.stride_bumps += 1

    def insert_after(self, handle: tuple[int, int],
                     payload: Any) -> tuple[int, int]:
        rank = handle[0]
        with self._locks.op_write(rank):
            leaf = self._engine.insert_after(handle, payload)
            self._after_write(rank, {"op": "insert_after",
                                     "h": list(handle), "p": payload})
            return leaf

    def insert_before(self, handle: tuple[int, int],
                      payload: Any) -> tuple[int, int]:
        rank = handle[0]
        with self._locks.op_write(rank):
            leaf = self._engine.insert_before(handle, payload)
            self._after_write(rank, {"op": "insert_before",
                                     "h": list(handle), "p": payload})
            return leaf

    def append(self, payload: Any) -> tuple[int, int]:
        # the tail rank is resolved by the lock table *under the latch*
        # so a concurrent bulk_load resize cannot leave the last shard
        # unlocked (or crash on a stale index)
        with self._locks.tail_write() as rank:
            leaf = self._engine.append(payload)
            self._after_write(rank, {"op": "append", "p": payload})
            return leaf

    def prepend(self, payload: Any) -> tuple[int, int]:
        with self._locks.op_write(0):
            leaf = self._engine.prepend(payload)
            self._after_write(0, {"op": "prepend", "p": payload})
            return leaf

    def insert_run_after(self, handle: tuple[int, int],
                         payloads: Sequence[Any]) -> list[tuple[int, int]]:
        rank = handle[0]
        items = list(payloads)
        with self._locks.op_write(rank):
            leaves = self._engine.insert_run_after(handle, items)
            self._after_write(rank, {"op": "insert_run_after",
                                     "h": list(handle), "ps": items})
            return leaves

    def insert_run_before(self, handle: tuple[int, int],
                          payloads: Sequence[Any]
                          ) -> list[tuple[int, int]]:
        rank = handle[0]
        items = list(payloads)
        with self._locks.op_write(rank):
            leaves = self._engine.insert_run_before(handle, items)
            self._after_write(rank, {"op": "insert_run_before",
                                     "h": list(handle), "ps": items})
            return leaves

    def mark_deleted(self, handle: tuple[int, int]) -> None:
        rank = handle[0]
        with self._locks.op_write(rank):
            self._engine.mark_deleted(handle)
            self._after_write(rank, {"op": "delete", "h": list(handle)})

    def set_payload(self, handle: tuple[int, int], payload: Any) -> None:
        rank = handle[0]
        with self._locks.op_write(rank):
            self._engine.set_payload(handle, payload)
            # payloads never touch labels: no version bump (snapshots
            # stay valid), but the op is journaled for recovery
            if self._journal is not None:
                self._journal({"op": "set_payload", "h": list(handle),
                               "p": payload})

    def bulk_load(self, payloads: Sequence[Any],
                  boundaries: Optional[Sequence[int]] = None
                  ) -> list[tuple[int, int]]:
        """Rebuild the shard set — necessarily stop-the-world."""
        items = list(payloads)
        with self._locks.exclusive():
            handles = self._engine.bulk_load(items, boundaries=boundaries)
            self._locks.resize(self._engine.shard_count)
            self._versions = [1] * self._engine.shard_count
            self._image_cache.clear()
            if self._journal is not None:
                self._journal({
                    "op": "bulk_load", "ps": items,
                    "bounds": list(boundaries)
                    if boundaries is not None else None})
            return handles

    def compact(self, params: Optional[LTreeParams] = None):
        """Stop-the-world vacuum; invalidates handles like the engine's.

        Not journaled: callers checkpoint right after (the slot
        remapping cannot be replayed against pre-compact handles).
        """
        with self._locks.exclusive():
            mapping = self._engine.compact(params)
            self._versions = [version + 1 for version in self._versions]
            self._image_cache.clear()
            return mapping

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def num(self, handle: tuple[int, int]) -> int:
        """Point read of one global label.

        Consistent with concurrent writers of *other* shards only in
        the sense that each call composes with a stride valid for its
        own shard; for a mutually consistent label set use
        :meth:`labels`, :meth:`label_map` or :meth:`snapshot`.
        """
        with self._locks.op_read(handle[0]):
            return self._engine.num(handle)

    def is_deleted(self, handle: tuple[int, int]) -> bool:
        with self._locks.op_read(handle[0]):
            return self._engine.is_deleted(handle)

    def payload(self, handle: tuple[int, int]) -> Any:
        # may materialize a lazy shard — a structural write
        with self._locks.op_write(handle[0]):
            return self._engine.payload(handle)

    def is_leaf(self, handle: tuple[int, int]) -> bool:
        with self._locks.op_write(handle[0]):
            return self._engine.is_leaf(handle)

    def find_leaf(self, num: int) -> Optional[tuple[int, int]]:
        with self._locks.exclusive():
            return self._engine.find_leaf(num)

    def labels(self, include_deleted: bool = True) -> list[int]:
        if include_deleted:
            # tombstoned slots live only in materialized structure
            with self._locks.exclusive():
                return self._engine.labels(True)
        with self._locks.read_all():
            return self._engine.labels(False)

    def label_map(self) -> dict[tuple[int, int], int]:
        with self._locks.read_all():
            return self._engine.label_map()

    def iter_leaves(self, include_deleted: bool = True
                    ) -> Iterator[tuple[int, int]]:
        if include_deleted:
            with self._locks.exclusive():
                return iter(list(self._engine.iter_leaves(True)))
        with self._locks.read_all():
            return iter(list(self._engine.iter_leaves(False)))

    def payloads(self, include_deleted: bool = True) -> list[Any]:
        with self._locks.exclusive():
            return self._engine.payloads(include_deleted)

    # ------------------------------------------------------------------
    # snapshots (epoch-pinned, zero-lock reads)
    # ------------------------------------------------------------------
    def snapshot(self) -> LabelSnapshot:
        """Pin a consistent, immutable label view of every shard.

        Blocks writers only for the pin itself (all shard read locks at
        once); shards unchanged since the last snapshot reuse their
        cached image, so a snapshot between writes costs a few dict
        lookups.  The returned object never touches this engine again.
        """
        engine = self._engine
        with self._locks.read_all() as ranks:
            stride = engine.stride
            epoch = tuple(self._versions)
            shards: list[_Shard] = []
            for rank in ranks:
                cached = self._image_cache.get(rank)
                if cached is None or cached[0] != self._versions[rank]:
                    image, live, meta = engine.shard_image(rank)
                    cached = (self._versions[rank], image, live, meta)
                    self._image_cache[rank] = cached
                shards.append(_Shard.lazy(cached[1], cached[2],
                                          cached[3], NULL_COUNTERS))
        return LabelSnapshot(engine.params, stride, shards, epoch)

    # ------------------------------------------------------------------
    # persistence and validation (stop-the-world)
    # ------------------------------------------------------------------
    def exclusive(self):
        """Stop-the-world context: every routed op and read excluded.

        For multi-step maintenance that must be atomic against writers
        *as a whole* — a ``ConcurrentDocument`` checkpoint holds this
        across watermark capture, engine save and WAL truncate, acting
        on :attr:`engine` directly (the locks are not reentrant, so the
        wrapper's own locked methods cannot be used inside).
        """
        return self._locks.exclusive()

    def save(self, store: Any, name: str = "scheme",
             include_payloads: bool = True,
             extra_blobs: Optional[dict[str, bytes]] = None) -> None:
        with self._locks.exclusive():
            self._engine.save(store, name,
                              include_payloads=include_payloads,
                              extra_blobs=extra_blobs)

    @classmethod
    def load(cls, store: Any, name: str = "scheme",
             stats: Counters = NULL_COUNTERS,
             journal: Optional[Callable[[dict], Any]] = None,
             **engine_kwargs: Any) -> "ConcurrentLTree":
        """Reopen a saved engine (shard-lazily) and wrap it."""
        engine = ShardedCompactLTree.load(store, name, stats=stats,
                                          **engine_kwargs)
        return cls(engine, journal=journal)

    def validate(self, check_occupancy: bool = False) -> None:
        with self._locks.exclusive():
            self._engine.validate(check_occupancy)

    def __repr__(self) -> str:
        return f"ConcurrentLTree({self._engine!r})"
