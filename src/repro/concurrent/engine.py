"""Thread-safe multi-writer wrapper over the sharded L-Tree engine.

:class:`ConcurrentLTree` exposes the same surface as
:class:`repro.core.sharded.ShardedCompactLTree` (so the
``ltree-sharded`` scheme adapter and the document layer run over it
unchanged) and adds the three concurrency properties the engine's
shard-locality makes cheap:

* **parallel writers** — every routed update takes the global latch in
  *shared* mode plus its one shard's write lock, so writers anchored in
  different shards never wait on each other.  The engine's own inline
  stride bump is deferred (``defer_directory_growth``); when an update
  grows its shard past the directory height, the O(1) bump runs under a
  single *directory latch* while the grown shard's write lock is still
  held — the only global critical section on the write path, and no
  reader can compose that shard's labels with the stale stride because
  its lock is taken;
* **consistent bulk reads** — ``labels()`` / ``label_map()`` acquire
  every shard's read lock (ascending id) before reading the stride,
  so the composed sequence is one consistent cut;
* **zero-lock snapshot reads** — :meth:`snapshot` pins, per shard, the
  immutable payload-free byte image the lazy-reopen path already serves
  (:meth:`~repro.core.sharded.ShardedCompactLTree.shard_image`), cached
  per shard version so an unchanged shard is pinned for free.  The
  resulting :class:`LabelSnapshot` answers label / order / containment
  queries against live writers without taking any lock.

**Online rebalancing** rides the same locks.  :meth:`split_shard` /
:meth:`merge_shards` take the latch *shared* plus only the involved
shards' write locks — never stop-the-world — and commit the engine's
new directory epoch under the directory latch, journaling a logical
``split``/``merge`` record *before* the new shards become visible (so
the WAL tape can never order an op on a new shard ahead of its
creation).  Writers to uninvolved shards proceed throughout; a writer
whose handle names a just-retired shard re-resolves it through the
engine's forwarding table and retries against the successor — the
resolve → lock → recheck loop in :meth:`_routed`.  A pinned
:class:`LabelSnapshot` is entirely unaffected: it holds its own
directory cut (ids, positions, stride, images) plus the grow-only
forwarding table, so a rebalance committing under it changes nothing it
can observe.

Whole-structure operations — ``bulk_load`` (the shard set is rebuilt),
``compact``, ``save``, ``validate``, materializing enumerations that
include tombstones — take the latch exclusively (stop the world).

An optional ``journal`` callable receives one dict per successful
mutation *while the shard write lock is still held*, so the journal's
global order restricted to any one shard equals that shard's actual
apply order — the property that makes a serial replay of the merged
tape deterministic (see :mod:`repro.concurrent.service`, which plugs
the write-ahead log in here).
"""

from __future__ import annotations

import inspect
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.concurrent.locks import ShardLockTable
from repro.obs import METRICS, TRACER
from repro.core.params import LTreeParams
from repro.core.sharded import (RebalancePolicy, _Shard,
                                ShardedCompactLTree)
from repro.core.stats import NULL_COUNTERS, Counters
from repro.storage.faults import FAILPOINTS, failpoint

# the enumerable crash surface of this module (see repro.storage.faults)
FAILPOINTS.declare("concurrent:split:post-journal",
                   "split record journaled, new epoch not yet visible")
FAILPOINTS.declare("concurrent:merge:post-journal",
                   "merge record journaled, new epoch not yet visible")


class LabelSnapshot:
    """An immutable label view pinned from per-shard byte images.

    Holds one lazy :class:`~repro.core.sharded._Shard` per shard —
    the same structure the shard-lazy reopen path reads — plus its own
    cut of the shard directory: the id order, positions and stride at
    pin time, and a reference to the engine's grow-only forwarding
    table.  Every query below runs against those frozen bytes: no
    locks, no interaction with live writers, and two snapshots with
    equal :attr:`epoch` are guaranteed bit-identical.  A rebalance
    committing *after* the pin is invisible — the snapshot keeps
    composing from its own directory cut — while handles minted
    *before* the pin keep resolving through the forwarding table even
    if their shard was rebalanced away pre-pin.
    """

    __slots__ = ("params", "stride", "epoch", "ids", "_positions",
                 "_shards", "_forwarding")

    def __init__(self, params: LTreeParams, stride: int,
                 ids: Sequence[int], shards: list[_Shard],
                 forwarding: dict[tuple[int, int], tuple[int, int]],
                 epoch: tuple):
        self.params = params
        self.stride = stride
        #: (directory epoch, (shard id, write version)...) at pin time
        #: (equal epochs ⇒ bit-identical snapshots)
        self.epoch = epoch
        #: shard ids in document order at pin time
        self.ids = tuple(ids)
        self._positions = {sid: pos for pos, sid in enumerate(self.ids)}
        self._shards = shards
        self._forwarding = forwarding

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_versions(self) -> dict[int, int]:
        """``shard id -> write version`` of the pinned membership.

        The per-shard half of :attr:`epoch`, as a mapping — the key the
        incremental :class:`~repro.query.columnar.ColumnarStore` re-pin
        caches each extracted column segment under.
        """
        return dict(self.epoch[1:])

    def delta_since(self, previous_epoch: tuple
                    ) -> tuple[set[int], set[int]]:
        """Shard-level delta export against an older pin's epoch.

        Returns ``(dirty, vanished)``: ids in this snapshot whose write
        version differs from (or is absent in) ``previous_epoch``, and
        ids of the old pin that left the membership (rebalanced away —
        their handles still resolve through :meth:`resolve` while the
        forwarding chain holds).  Equal epochs yield two empty sets: the
        caller can splice instead of re-shredding.
        """
        old = dict(previous_epoch[1:])
        new = self.shard_versions()
        dirty = {sid for sid, version in new.items()
                 if old.get(sid) != version}
        vanished = set(old) - set(new)
        return dirty, vanished

    def resolve(self, handle: tuple[int, int]) -> tuple[int, int]:
        """The pin-time ``(shard_id, slot)`` a handle denotes.

        Chases the forwarding table until the id lands in the pinned
        membership — entries added by rebalances *after* the pin are
        never followed, because resolution stops the moment the id is
        one of ours (the grow-only table is safely shared with the
        live engine for exactly this reason).
        """
        sid, slot = handle[0], handle[1]
        positions = self._positions
        while sid not in positions:
            bridge = self._forwarding.get((sid, slot))
            if bridge is None:
                raise ValueError(
                    f"handle {(handle[0], handle[1])!r} names unknown "
                    f"shard {sid}")
            sid, slot = bridge
        return (sid, slot)

    def _shard_of(self, handle: tuple[int, int]
                  ) -> tuple[int, _Shard, int]:
        sid, slot = self.resolve(handle)
        return self._positions[sid], self._shards[self._positions[sid]], \
            slot

    def shard_prefix(self, shard_id: int) -> int:
        """Global-label prefix of one pinned shard id."""
        position = self._positions.get(shard_id)
        if position is None:
            raise ValueError(f"no shard with id {shard_id} in this "
                             f"snapshot")
        return position * self.stride

    def label(self, handle: tuple[int, int]) -> int:
        """Global label of a live handle at pin time."""
        position, shard, slot = self._shard_of(handle)
        if shard.is_deleted(slot):
            raise ValueError("handle refers to a deleted item")
        return position * self.stride + shard.num(slot)

    def is_deleted(self, handle: tuple[int, int]) -> bool:
        _position, shard, slot = self._shard_of(handle)
        return shard.is_deleted(slot)

    def handles(self) -> Iterator[tuple[int, int]]:
        """Live handles in document order at pin time."""
        for sid, shard in zip(self.ids, self._shards):
            for slot in shard.live_slots():
                yield (sid, slot)

    def labels(self) -> list[int]:
        """Live labels in document order (strictly increasing)."""
        out: list[int] = []
        for position, shard in enumerate(self._shards):
            prefix = position * self.stride
            out.extend(prefix + value for value in shard.nums_of_live())
        return out

    def label_map(self) -> dict[tuple[int, int], int]:
        mapping: dict[tuple[int, int], int] = {}
        for position, (sid, shard) in enumerate(zip(self.ids,
                                                    self._shards)):
            prefix = position * self.stride
            mapping.update(
                ((sid, slot), prefix + value)
                for slot, value in zip(shard.live_slots(),
                                       shard.nums_of_live()))
        return mapping

    def label_columns(self, shard_id: int
                      ) -> tuple[list[int], Sequence[int]]:
        """``(live_slots, local_label_column)`` of one pinned shard.

        The columnar query engine's bulk-input hook: the slot-indexed
        label column is decoded once off the frozen byte image (and
        memoized on the shard — a pinned shard can never change), so a
        query extracts every label it needs in one pass per shard
        instead of one :meth:`label` call per node.  Compose the global
        label of ``slot`` as ``shard_prefix(shard_id) + column[slot]``.
        Like every other read on this object, this takes no locks and
        never touches the live engine.
        """
        position = self._positions.get(shard_id)
        if position is None:
            raise ValueError(f"no shard with id {shard_id} in this "
                             f"snapshot")
        return self._shards[position].label_columns()

    def precedes(self, first: tuple[int, int],
                 second: tuple[int, int]) -> bool:
        """Document order of two live handles, labels only."""
        return self.label(first) < self.label(second)

    def contains(self, outer: tuple[tuple[int, int], tuple[int, int]],
                 inner: tuple[tuple[int, int], tuple[int, int]]) -> bool:
        """Region containment of two (begin, end) handle pairs —
        the paper's ancestor test, answered entirely off the pinned
        images."""
        outer_begin, outer_end = outer
        inner_begin, inner_end = inner
        return self.label(outer_begin) < self.label(inner_begin) and \
            self.label(inner_end) < self.label(outer_end)

    @property
    def n_live(self) -> int:
        return sum(len(shard.live) for shard in self._shards)

    def __repr__(self) -> str:
        return (f"LabelSnapshot(shards={len(self._shards)}, "
                f"stride={self.stride}, epoch={self.epoch})")


class ConcurrentLTree:
    """Per-shard-locked, snapshot-readable sharded engine (module doc).

    Parameters
    ----------
    engine:
        The sharded engine to guard.  It is adopted: direct use of the
        raw engine afterwards bypasses the locks.
    journal:
        Optional callable receiving one op dict per successful
        mutation, invoked under the mutated shard's write lock.
    """

    def __init__(self, engine: ShardedCompactLTree,
                 journal: Optional[Callable[[dict], Any]] = None):
        self._engine = engine
        self._journal = journal
        engine.defer_directory_growth = True
        self._locks = ShardLockTable(engine.shard_ids)
        #: serializes every directory write — stride bumps and
        #: rebalance commits — the global critical section.  Installed
        #: into the engine so its split/merge commits run under it.
        self._directory_latch = threading.Lock()
        engine.directory_mutex = self._directory_latch
        self._versions: dict[int, int] = {sid: 0
                                          for sid in engine.shard_ids}
        #: shard id -> labeled writes applied; always on (one dict
        #: increment under the shard's already-held write lock) because
        #: workload-aware rebalancing reads it — see :meth:`write_counts`
        self._write_counts: dict[int, int] = {sid: 0
                                              for sid in engine.shard_ids}
        #: shard id -> (version, image, live, meta) pinned-image cache
        self._image_cache: dict[int, tuple] = {}
        #: stop-the-world stride bumps performed (mirrors the engine's
        #: ``directory_rebuilds`` but counted by the wrapper)
        self.stride_bumps = 0
        #: test seam: called at named points inside split/merge while
        #: their locks are held (e.g. ``("split:locked", shard_id)``) —
        #: the writer-isolation tests park a rebalance here and prove
        #: uninvolved shards' writers sail past it
        self.rebalance_hook: Optional[Callable[..., Any]] = None

    # ------------------------------------------------------------------
    # engine passthrough metadata
    # ------------------------------------------------------------------
    @property
    def engine(self) -> ShardedCompactLTree:
        """The wrapped engine (lock-free access; callers beware)."""
        return self._engine

    @property
    def params(self) -> LTreeParams:
        return self._engine.params

    @property
    def stats(self) -> Counters:
        return self._engine.stats

    @property
    def violator_policy(self) -> str:
        return self._engine.violator_policy

    @property
    def n_shards(self) -> int:
        return self._engine.n_shards

    @property
    def shard_count(self) -> int:
        return self._engine.shard_count

    @property
    def shard_ids(self) -> tuple[int, ...]:
        return self._engine.shard_ids

    @property
    def epoch(self) -> int:
        return self._engine.epoch

    @property
    def shard_counters(self) -> list[Counters]:
        return self._engine.shard_counters

    @property
    def materialized_shards(self) -> list[int]:
        return self._engine.materialized_shards

    @property
    def stride(self) -> int:
        return self._engine.stride

    @property
    def directory_height(self) -> int:
        return self._engine.directory_height

    @property
    def directory_rebuilds(self) -> int:
        return self._engine.directory_rebuilds

    @property
    def shard_splits(self) -> int:
        return self._engine.shard_splits

    @property
    def shard_merges(self) -> int:
        return self._engine.shard_merges

    @property
    def label_space(self) -> int:
        return self._engine.label_space

    @property
    def n_leaves(self) -> int:
        with self._locks.read_all():
            return self._engine.n_leaves

    def tombstone_count(self) -> int:
        with self._locks.read_all():
            return self._engine.tombstone_count()

    def has_shard(self, shard_id: int) -> bool:
        return self._engine.has_shard(shard_id)

    def resolve_handle(self, handle: tuple[int, int]) -> tuple[int, int]:
        """Current-epoch resolution of a possibly pre-rebalance handle."""
        return self._engine.resolve_handle(handle)

    def shard_report(self) -> list[dict]:
        """Per-shard occupancy rows under a consistent read cut."""
        with self._locks.read_all():
            return self._engine.shard_report()

    # ------------------------------------------------------------------
    # write path (latch shared + one shard exclusive)
    # ------------------------------------------------------------------
    @contextmanager
    def _routed(self, handle: tuple[int, int],
                write: bool = True) -> Iterator[tuple[int, tuple[int,
                                                                 int]]]:
        """Resolve → lock → recheck loop for one routed op.

        Resolves the handle through the engine's forwarding table,
        locks the target shard, then re-checks it is still in the
        directory: a rebalance that retired it between the resolve and
        the acquire makes the check fail, the lock is dropped and the
        resolve retried against the successor shard.  Ids are never
        reused, so a shard that passes the recheck under its held lock
        provably stays in the directory for the critical section —
        membership changes to it would need this very lock.  Yields
        ``(shard_id, resolved_handle)``.
        """
        engine = self._engine
        locks = self._locks
        with locks.latch.read():
            while True:
                sid, slot = engine.resolve_handle(handle)
                lock = locks.lock_for(sid)
                if lock is None:
                    # retired between resolve and lookup (commit in
                    # flight); the forwarding entry is already there
                    continue
                if METRICS.enabled:
                    t0 = time.perf_counter()
                    if write:
                        lock.acquire_write()
                    else:
                        lock.acquire_read()
                    METRICS.observe("engine.lock_wait.seconds",
                                    time.perf_counter() - t0)
                elif write:
                    lock.acquire_write()
                else:
                    lock.acquire_read()
                if engine.has_shard(sid):
                    break
                if write:
                    lock.release_write()
                else:
                    lock.release_read()
            try:
                yield sid, (sid, slot)
            finally:
                if write:
                    lock.release_write()
                else:
                    lock.release_read()

    @contextmanager
    def _edge_write(self, last: bool) -> Iterator[int]:
        """Write lock on the current first/last shard; yields its id.

        The id is resolved under the latch and re-checked under its
        lock, so an ``append`` racing a split of the tail shard locks
        the shard the engine will actually route to — never a stale
        one.
        """
        engine = self._engine
        locks = self._locks
        with locks.latch.read():
            while True:
                ids = engine.shard_ids
                sid = ids[-1] if last else ids[0]
                lock = locks.lock_for(sid)
                if lock is None:
                    continue
                if METRICS.enabled:
                    t0 = time.perf_counter()
                    lock.acquire_write()
                    METRICS.observe("engine.lock_wait.seconds",
                                    time.perf_counter() - t0)
                else:
                    lock.acquire_write()
                ids = engine.shard_ids
                if (ids[-1] if last else ids[0]) == sid:
                    break
                lock.release_write()
            try:
                yield sid
            finally:
                lock.release_write()

    def _after_write(self, shard_id: int, op: Optional[dict]) -> None:
        """Version bump, journaling, and the deferred stride bump — all
        while the caller still holds shard ``shard_id``'s write lock."""
        self._versions[shard_id] += 1
        counts = self._write_counts
        counts[shard_id] = counts.get(shard_id, 0) + 1
        if op is not None and self._journal is not None:
            self._journal(op)
        if self._engine.needs_directory_growth(shard_id):
            with self._directory_latch:
                if self._engine.grow_directory(shard_id):
                    self.stride_bumps += 1

    def insert_after(self, handle: tuple[int, int],
                     payload: Any) -> tuple[int, int]:
        with self._routed(handle) as (sid, resolved):
            leaf = self._engine.insert_after(resolved, payload)
            self._after_write(sid, {"op": "insert_after",
                                    "h": list(resolved), "p": payload})
            return leaf

    def insert_before(self, handle: tuple[int, int],
                      payload: Any) -> tuple[int, int]:
        with self._routed(handle) as (sid, resolved):
            leaf = self._engine.insert_before(resolved, payload)
            self._after_write(sid, {"op": "insert_before",
                                    "h": list(resolved), "p": payload})
            return leaf

    def append(self, payload: Any) -> tuple[int, int]:
        with self._edge_write(last=True) as sid:
            leaf = self._engine.append(payload)
            self._after_write(sid, {"op": "append", "p": payload})
            return leaf

    def prepend(self, payload: Any) -> tuple[int, int]:
        with self._edge_write(last=False) as sid:
            leaf = self._engine.prepend(payload)
            self._after_write(sid, {"op": "prepend", "p": payload})
            return leaf

    def insert_run_after(self, handle: tuple[int, int],
                         payloads: Sequence[Any]) -> list[tuple[int, int]]:
        items = list(payloads)
        with self._routed(handle) as (sid, resolved):
            leaves = self._engine.insert_run_after(resolved, items)
            self._after_write(sid, {"op": "insert_run_after",
                                    "h": list(resolved), "ps": items})
            return leaves

    def insert_run_before(self, handle: tuple[int, int],
                          payloads: Sequence[Any]
                          ) -> list[tuple[int, int]]:
        items = list(payloads)
        with self._routed(handle) as (sid, resolved):
            leaves = self._engine.insert_run_before(resolved, items)
            self._after_write(sid, {"op": "insert_run_before",
                                    "h": list(resolved), "ps": items})
            return leaves

    def mark_deleted(self, handle: tuple[int, int]) -> None:
        with self._routed(handle) as (sid, resolved):
            self._engine.mark_deleted(resolved)
            self._after_write(sid, {"op": "delete", "h": list(resolved)})

    def set_payload(self, handle: tuple[int, int], payload: Any) -> None:
        with self._routed(handle) as (_sid, resolved):
            self._engine.set_payload(resolved, payload)
            # payloads never touch labels: no version bump (snapshots
            # stay valid), but the op is journaled for recovery
            if self._journal is not None:
                self._journal({"op": "set_payload", "h": list(resolved),
                               "p": payload})

    def bulk_load(self, payloads: Sequence[Any],
                  boundaries: Optional[Sequence[int]] = None
                  ) -> list[tuple[int, int]]:
        """Rebuild the shard set — necessarily stop-the-world."""
        items = list(payloads)
        with self._locks.exclusive():
            handles = self._engine.bulk_load(items, boundaries=boundaries)
            self._locks.set_shards(self._engine.shard_ids)
            self._versions = {sid: 1 for sid in self._engine.shard_ids}
            self._write_counts = {sid: 0
                                  for sid in self._engine.shard_ids}
            self._image_cache.clear()
            if self._journal is not None:
                self._journal({
                    "op": "bulk_load", "ps": items,
                    "bounds": list(boundaries)
                    if boundaries is not None else None})
            return handles

    def compact(self, params: Optional[LTreeParams] = None):
        """Stop-the-world vacuum; invalidates handles like the engine's.

        Not journaled: callers checkpoint right after (the slot
        remapping cannot be replayed against pre-compact handles).
        """
        with self._locks.exclusive():
            mapping = self._engine.compact(params)
            self._versions = {sid: version + 1 for sid, version
                              in self._versions.items()}
            self._image_cache.clear()
            return mapping

    # ------------------------------------------------------------------
    # online rebalancing (latch shared + involved shards exclusive)
    # ------------------------------------------------------------------
    def _fire_hook(self, stage: str, *args: Any) -> None:
        hook = self.rebalance_hook
        if hook is not None:
            hook(stage, *args)

    def split_shard(self, shard_id: int, at_leaf: int,
                    new_ids: Optional[Sequence[int]] = None
                    ) -> tuple[int, int]:
        """Split one shard online; returns the two new shard ids.

        Holds the latch *shared* and only ``shard_id``'s write lock:
        writers and readers of every other shard are completely
        unaffected (the writer-isolation tests prove it).  The engine
        commit — new directory epoch, forwarding entries — runs under
        the directory latch; the WAL record and the new shards' locks
        are installed by ``on_commit`` *before* the new ids become
        visible, so no racing writer can touch (or journal against) a
        new shard ahead of its creation record.
        """
        engine = self._engine
        locks = self._locks
        with locks.latch.read():
            lock = locks.lock_for(shard_id)
            if lock is None:
                raise ValueError(f"no shard with id {shard_id}")
            lock.acquire_write()
            try:
                if not engine.has_shard(shard_id):
                    raise ValueError(f"no shard with id {shard_id}")
                self._fire_hook("split:locked", shard_id)
                granted: list[int] = []

                def on_commit(ids: tuple[int, ...]) -> None:
                    granted.extend(ids)
                    locks.add_shards(ids)
                    for sid in ids:
                        self._versions[sid] = 1
                        self._write_counts[sid] = 0
                    if self._journal is not None:
                        self._journal({"op": "split", "id": shard_id,
                                       "at": at_leaf, "new": list(ids)})
                    failpoint("concurrent:split:post-journal",
                              shard_id=shard_id, new_ids=ids)

                try:
                    new_ids = engine.split_shard(shard_id, at_leaf,
                                                 new_ids=new_ids,
                                                 on_commit=on_commit)
                except BaseException:
                    # an on_commit journal failure aborts before the
                    # directory swap: retract the half-registered ids
                    locks.drop_shards(granted)
                    for sid in granted:
                        self._versions.pop(sid, None)
                        self._write_counts.pop(sid, None)
                    raise
                self._versions.pop(shard_id, None)
                self._write_counts.pop(shard_id, None)
                self._image_cache.pop(shard_id, None)
                locks.drop_shards((shard_id,))
                self._fire_hook("split:committed", shard_id, new_ids)
                return new_ids
            finally:
                lock.release_write()

    def merge_shards(self, id_a: int, id_b: int,
                     new_id: Optional[int] = None) -> int:
        """Merge two adjacent shards online; returns the new shard id.

        Same isolation contract as :meth:`split_shard`, holding both
        involved shards' write locks (acquired in ascending id, the
        table-wide order, so concurrent rebalances cannot deadlock).
        """
        engine = self._engine
        locks = self._locks
        first, second = sorted((id_a, id_b))
        with locks.latch.read():
            lock_a = locks.lock_for(first)
            lock_b = locks.lock_for(second)
            if lock_a is None or lock_b is None:
                missing = first if lock_a is None else second
                raise ValueError(f"no shard with id {missing}")
            lock_a.acquire_write()
            try:
                lock_b.acquire_write()
                try:
                    if not (engine.has_shard(first) and
                            engine.has_shard(second)):
                        missing = first if not engine.has_shard(first) \
                            else second
                        raise ValueError(f"no shard with id {missing}")
                    self._fire_hook("merge:locked", first, second)
                    granted: list[int] = []

                    def on_commit(sid: int) -> None:
                        granted.append(sid)
                        locks.add_shards((sid,))
                        self._versions[sid] = 1
                        self._write_counts[sid] = 0
                        if self._journal is not None:
                            self._journal({"op": "merge", "a": id_a,
                                           "b": id_b, "new": sid})
                        failpoint("concurrent:merge:post-journal",
                                  id_a=id_a, id_b=id_b, new_id=sid)

                    try:
                        new_id = engine.merge_shards(id_a, id_b,
                                                     new_id=new_id,
                                                     on_commit=on_commit)
                    except BaseException:
                        locks.drop_shards(granted)
                        for sid in granted:
                            self._versions.pop(sid, None)
                            self._write_counts.pop(sid, None)
                        raise
                    for sid in (first, second):
                        self._versions.pop(sid, None)
                        self._write_counts.pop(sid, None)
                        self._image_cache.pop(sid, None)
                    locks.drop_shards((first, second))
                    self._fire_hook("merge:committed", first, second,
                                    new_id)
                    return new_id
                finally:
                    lock_b.release_write()
            finally:
                lock_a.release_write()

    def write_counts(self) -> dict[int, int]:
        """Labeled writes applied per live shard since load/creation.

        The live workload signal :meth:`rebalance` hands to
        ``RebalancePolicy.plan(report, workload=...)`` and
        ``ConcurrentDocument.metrics()`` turns into per-shard write
        rates.  A shard's count resets when it is created (split/merge
        child, bulk_load) and is retired with the shard.
        """
        while True:
            try:
                return dict(self._write_counts)
            except RuntimeError:    # resized by a racing split/merge
                continue

    def rebalance(self, policy: Optional[RebalancePolicy] = None,
                  max_rounds: int = 4) -> list[dict]:
        """Plan (under a read cut) and apply rebalance actions online.

        Each action locks only its involved shards; an action that
        loses a race to a concurrent writer's rebalance (its shard id
        vanished) is simply skipped and the next round re-plans from a
        fresh report.  A policy whose ``plan`` accepts a ``workload``
        keyword is fed :meth:`write_counts`, so hot shards split on
        write pressure before occupancy alone would trigger.  Returns
        the actions performed.
        """
        policy = policy or RebalancePolicy()
        takes_workload = "workload" in inspect.signature(
            policy.plan).parameters
        performed: list[dict] = []
        for _ in range(max_rounds):
            if takes_workload:
                actions = policy.plan(self.shard_report(),
                                      workload=self.write_counts())
            else:
                actions = policy.plan(self.shard_report())
            if not actions:
                break
            applied = 0
            for action in actions:
                try:
                    if action[0] == "split":
                        with TRACER.span("engine.split", shard=action[1],
                                         at=action[2]) as span:
                            new_ids = self.split_shard(action[1],
                                                       action[2])
                            span.set(new=list(new_ids))
                        performed.append({"action": "split",
                                          "shard": action[1],
                                          "at": action[2],
                                          "new": list(new_ids)})
                    else:
                        with TRACER.span("engine.merge", a=action[1],
                                         b=action[2]) as span:
                            new_id = self.merge_shards(action[1],
                                                       action[2])
                            span.set(new=new_id)
                        performed.append({"action": "merge",
                                          "shards": [action[1],
                                                     action[2]],
                                          "new": new_id})
                    applied += 1
                except ValueError:
                    # the planned shard was rebalanced or rebuilt under
                    # us; the next round re-plans from a fresh report
                    continue
            if not applied:
                break
        return performed

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def num(self, handle: tuple[int, int]) -> int:
        """Point read of one global label.

        Consistent with concurrent writers of *other* shards only in
        the sense that each call composes with a stride valid for its
        own shard; for a mutually consistent label set use
        :meth:`labels`, :meth:`label_map` or :meth:`snapshot`.
        """
        with self._routed(handle, write=False) as (_sid, resolved):
            return self._engine.num(resolved)

    def is_deleted(self, handle: tuple[int, int]) -> bool:
        with self._routed(handle, write=False) as (_sid, resolved):
            return self._engine.is_deleted(resolved)

    def payload(self, handle: tuple[int, int]) -> Any:
        # may materialize a lazy shard — a structural write
        with self._routed(handle) as (_sid, resolved):
            return self._engine.payload(resolved)

    def is_leaf(self, handle: tuple[int, int]) -> bool:
        with self._routed(handle) as (_sid, resolved):
            return self._engine.is_leaf(resolved)

    def find_leaf(self, num: int) -> Optional[tuple[int, int]]:
        with self._locks.exclusive():
            return self._engine.find_leaf(num)

    def labels(self, include_deleted: bool = True) -> list[int]:
        if include_deleted:
            # tombstoned slots live only in materialized structure
            with self._locks.exclusive():
                return self._engine.labels(True)
        with self._locks.read_all():
            return self._engine.labels(False)

    def label_map(self) -> dict[tuple[int, int], int]:
        with self._locks.read_all():
            return self._engine.label_map()

    def iter_leaves(self, include_deleted: bool = True
                    ) -> Iterator[tuple[int, int]]:
        if include_deleted:
            with self._locks.exclusive():
                return iter(list(self._engine.iter_leaves(True)))
        with self._locks.read_all():
            return iter(list(self._engine.iter_leaves(False)))

    def payloads(self, include_deleted: bool = True) -> list[Any]:
        with self._locks.exclusive():
            return self._engine.payloads(include_deleted)

    # ------------------------------------------------------------------
    # snapshots (epoch-pinned, zero-lock reads)
    # ------------------------------------------------------------------
    def snapshot(self) -> LabelSnapshot:
        """Pin a consistent, immutable label view of every shard.

        Blocks writers only for the pin itself (all shard read locks at
        once); shards unchanged since the last snapshot reuse their
        cached image, so a snapshot between writes costs a few dict
        lookups.  The returned object never touches this engine again —
        rebalances committing after the pin are invisible to it.
        """
        engine = self._engine
        with self._locks.read_all():
            # membership cannot move while every shard is read-held
            ids = engine.shard_ids
            stride = engine.stride
            forwarding = engine._forwarding
            epoch = (engine.epoch,) + tuple(
                (sid, self._versions[sid]) for sid in ids)
            shards: list[_Shard] = []
            for sid in ids:
                version = self._versions[sid]
                cached = self._image_cache.get(sid)
                if cached is None or cached[0] != version:
                    image, live, meta = engine.shard_image(sid)
                    cached = (version, image, live, meta)
                    self._image_cache[sid] = cached
                shards.append(_Shard.lazy(cached[1], cached[2],
                                          cached[3], NULL_COUNTERS))
        return LabelSnapshot(engine.params, stride, ids, shards,
                             forwarding, epoch)

    # ------------------------------------------------------------------
    # persistence and validation (stop-the-world)
    # ------------------------------------------------------------------
    def exclusive(self):
        """Stop-the-world context: every routed op and read excluded.

        For multi-step maintenance that must be atomic against writers
        *as a whole* — a ``ConcurrentDocument`` checkpoint holds this
        across watermark capture, engine save and WAL truncate, acting
        on :attr:`engine` directly (the locks are not reentrant, so the
        wrapper's own locked methods cannot be used inside).
        """
        return self._locks.exclusive()

    def save(self, store: Any, name: str = "scheme",
             include_payloads: bool = True,
             extra_blobs: Optional[dict[str, bytes]] = None) -> None:
        with self._locks.exclusive():
            self._engine.save(store, name,
                              include_payloads=include_payloads,
                              extra_blobs=extra_blobs)

    @classmethod
    def load(cls, store: Any, name: str = "scheme",
             stats: Counters = NULL_COUNTERS,
             journal: Optional[Callable[[dict], Any]] = None,
             **engine_kwargs: Any) -> "ConcurrentLTree":
        """Reopen a saved engine (shard-lazily) and wrap it."""
        engine = ShardedCompactLTree.load(store, name, stats=stats,
                                          **engine_kwargs)
        return cls(engine, journal=journal)

    def validate(self, check_occupancy: bool = False) -> None:
        with self._locks.exclusive():
            self._engine.validate(check_occupancy)

    def __repr__(self) -> str:
        return f"ConcurrentLTree({self._engine!r})"
