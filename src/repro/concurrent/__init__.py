"""Concurrent document service over the sharded L-Tree engine.

The L-Tree's defining property — an update relabels only within one
subtree — became mechanically checkable in the sharded engine
(:class:`repro.core.sharded.ShardedCompactLTree`: every op writes
exactly one arena).  This package turns that isolation into an actual
multi-writer, incrementally durable service:

* :mod:`repro.concurrent.locks` — a per-shard reader–writer lock table
  plus the global latch stop-the-world operations take;
* :mod:`repro.concurrent.engine` — :class:`ConcurrentLTree`, the
  thread-safe engine wrapper (writers to different shards run in
  parallel; the only global critical section is the O(1) directory
  stride bump) with zero-lock :class:`LabelSnapshot` reads pinned from
  immutable per-shard byte images;
* :mod:`repro.concurrent.service` — :class:`ConcurrentDocument`, the
  WAL-backed service: every logical op is appended to a
  :class:`repro.storage.wal.WriteAheadLog` under group commit,
  checkpoints fold the log into an atomic
  :class:`repro.storage.pages.PageStore` save, and :meth:`open`
  recovers as checkpoint + replayed WAL tail with bit-identical labels.
"""

from repro.concurrent.engine import ConcurrentLTree, LabelSnapshot
from repro.concurrent.locks import RWLock, ShardLockTable
from repro.concurrent.service import ConcurrentDocument, apply_logged_op
from repro.core.sharded import RebalancePolicy

__all__ = [
    "ConcurrentLTree",
    "LabelSnapshot",
    "RebalancePolicy",
    "RWLock",
    "ShardLockTable",
    "ConcurrentDocument",
    "apply_logged_op",
]
