"""Reader–writer locks for the per-shard concurrency layer.

Two instruments, matching the two granularities of the sharded engine:

* a :class:`RWLock` per shard — writers to *different* shards hold
  different locks and proceed in parallel; readers of one shard share
  its lock;
* one global **latch** (also a :class:`RWLock`): every routed op holds
  it in read (shared) mode, so the rare whole-structure operations —
  ``bulk_load`` rebuilding the shard set, a checkpoint, ``validate`` —
  take it in write mode and get a true stop-the-world window without
  touching the per-shard locks.

The locks are writer-preferring (a waiting writer blocks new readers),
so a stream of snapshot readers cannot starve a writer.  They are not
reentrant; the concurrency layer keeps a strict acquisition order —
latch (read) → shard locks in ascending shard id → leaf mutexes
(directory, WAL) — and never escalates while holding, which is what
makes the whole arrangement deadlock-free.

The table is keyed by **stable shard id**, not position, and its
membership changes *online*: an exclusive holder replaces the whole
family (``set_shards``, the bulk-load path), while a rebalance commit —
which holds the latch only in *shared* mode plus the involved shards'
write locks — edits it incrementally with :meth:`add_shards` /
:meth:`drop_shards`.  Lookups tolerate that motion: :meth:`lock_for`
returns ``None`` for a just-retired id and the caller re-resolves its
handle through the engine's forwarding table, so writers to shards a
rebalance never touched proceed without ever noticing it.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterable, Iterator, Optional, Sequence


class RWLock:
    """A classic condition-variable reader–writer lock.

    Any number of readers may hold the lock together; a writer holds it
    alone.  Writer-preferring: once a writer waits, new readers queue
    behind it.  Not reentrant in either mode.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class ShardLockTable:
    """The latch + per-shard-id lock family one concurrent engine owns."""

    def __init__(self, shard_ids: Iterable[int]) -> None:
        self.latch = RWLock()
        self._locks: dict[int, RWLock] = {sid: RWLock()
                                          for sid in shard_ids}

    def __len__(self) -> int:
        return len(self._locks)

    def __contains__(self, shard_id: int) -> bool:
        return shard_id in self._locks

    def ids(self) -> list[int]:
        """The current id set, ascending (a point-in-time copy)."""
        return sorted(self._locks)

    def set_shards(self, shard_ids: Iterable[int]) -> None:
        """Replace the whole family (call only under ``exclusive()``) —
        the bulk-load path, where every old handle dies anyway."""
        self._locks = {sid: RWLock() for sid in shard_ids}

    def add_shards(self, shard_ids: Iterable[int]) -> None:
        """Register locks for shards a rebalance is about to install.

        Called *before* the directory commit (latch held shared, the
        involved old shards' write locks held), so by the time any
        writer can resolve a handle to a new id its lock already
        exists.  Single dict stores are atomic under the GIL; ids are
        never reused, so a concurrent ``lock_for`` either misses (and
        retries its resolve) or gets exactly this lock.
        """
        for sid in shard_ids:
            self._locks[sid] = RWLock()

    def drop_shards(self, shard_ids: Iterable[int]) -> None:
        """Retire the locks of shards a committed rebalance replaced
        (their write locks still held by the caller).  A writer still
        waiting on a dropped lock re-resolves when it wakes: its
        membership re-check fails and it retries through the
        forwarding table."""
        for sid in shard_ids:
            self._locks.pop(sid, None)

    def lock_for(self, shard_id: int) -> Optional[RWLock]:
        """The lock of one shard id, ``None`` if (just) retired."""
        return self._locks.get(shard_id)

    def _check(self, shard_id: int) -> RWLock:
        """Resolve an id *under the latch*: a handle minted before a
        concurrent ``bulk_load`` or rebalance retired its shard must
        fail like the engine's own routing does, not crash the lock
        table."""
        lock = self._locks.get(shard_id)
        if lock is None:
            raise ValueError(
                f"handle names unknown shard {shard_id}")
        return lock

    @contextmanager
    def op_write(self, shard_id: int) -> Iterator[None]:
        """One routed update: latch shared + that shard exclusive.

        Callers that must survive a concurrent rebalance use the
        engine wrapper's resolve-lock-recheck loop instead; this raw
        form raises on a retired id.
        """
        with self.latch.read():
            with self._check(shard_id).write():
                yield

    @contextmanager
    def op_read(self, shard_id: int) -> Iterator[None]:
        """One routed read: latch shared + that shard shared."""
        with self.latch.read():
            with self._check(shard_id).read():
                yield

    @contextmanager
    def read_all(self, shard_ids: Optional[Sequence[int]] = None
                 ) -> Iterator[Sequence[int]]:
        """Consistent multi-shard read; yields the locked id set
        (ascending).

        ``None`` (the usual call) means *every* shard.  The id set is
        re-read after the sweep and the sweep retried until it comes
        back unchanged: a rebalance needs a write lock on an involved
        shard, so once every current shard is read-held the membership
        provably cannot move — which is what makes the stride +
        per-shard images read under this context mutually consistent
        even against online splits.  Acquired in ascending id (routed
        ops hold at most one shard lock, rebalances acquire in the same
        order, so the ordering cannot deadlock).
        """
        with self.latch.read():
            if shard_ids is None:
                while True:
                    ordered: Sequence[int] = sorted(self._locks)
                    locks = [self._locks[sid] for sid in ordered]
                    for lock in locks:
                        lock.acquire_read()
                    if sorted(self._locks) == list(ordered):
                        break
                    for lock in reversed(locks):
                        lock.release_read()
            else:
                ordered = sorted(shard_ids)
                locks = [self._check(sid) for sid in ordered]
                for lock in locks:
                    lock.acquire_read()
            try:
                yield ordered
            finally:
                for lock in reversed(locks):
                    lock.release_read()

    @contextmanager
    def exclusive(self) -> Iterator[None]:
        """Stop the world: the latch in write mode.

        Every routed op holds the latch shared, so this alone excludes
        all of them — no per-shard acquisition sweep needed.
        """
        with self.latch.write():
            yield
