"""Reader–writer locks for the per-shard concurrency layer.

Two instruments, matching the two granularities of the sharded engine:

* a :class:`RWLock` per shard — writers to *different* shards hold
  different locks and proceed in parallel; readers of one shard share
  its lock;
* one global **latch** (also a :class:`RWLock`): every routed op holds
  it in read (shared) mode, so the rare whole-structure operations —
  ``bulk_load`` rebuilding the shard set, a checkpoint, ``validate`` —
  take it in write mode and get a true stop-the-world window without
  touching the per-shard locks.

The locks are writer-preferring (a waiting writer blocks new readers),
so a stream of snapshot readers cannot starve a writer.  They are not
reentrant; the concurrency layer keeps a strict acquisition order —
latch (read) → shard locks in ascending rank → leaf mutexes (directory,
WAL) — and never escalates while holding, which is what makes the whole
arrangement deadlock-free.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence


class RWLock:
    """A classic condition-variable reader–writer lock.

    Any number of readers may hold the lock together; a writer holds it
    alone.  Writer-preferring: once a writer waits, new readers queue
    behind it.  Not reentrant in either mode.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class ShardLockTable:
    """The latch + per-shard lock family one concurrent engine owns."""

    def __init__(self, n_shards: int) -> None:
        self.latch = RWLock()
        self._shards = [RWLock() for _ in range(n_shards)]

    def __len__(self) -> int:
        return len(self._shards)

    def resize(self, n_shards: int) -> None:
        """Replace the shard locks (call only under ``exclusive()``).

        Because the table only ever changes under the latch held in
        write mode, any indexing of it under the latch in *read* mode
        — every context manager below — is race-free against
        ``bulk_load``'s rebuild.
        """
        self._shards = [RWLock() for _ in range(n_shards)]

    def _check(self, rank: int) -> None:
        """Bound a rank *under the latch*: a handle minted before a
        concurrent ``bulk_load`` shrank the shard set must fail like
        the engine's own routing does, not crash the lock table."""
        if not 0 <= rank < len(self._shards):
            raise ValueError(
                f"handle names shard {rank} of {len(self._shards)}")

    @contextmanager
    def op_write(self, rank: int) -> Iterator[None]:
        """One routed update: latch shared + that shard exclusive."""
        with self.latch.read():
            self._check(rank)
            with self._shards[rank].write():
                yield

    @contextmanager
    def op_read(self, rank: int) -> Iterator[None]:
        """One routed read: latch shared + that shard shared."""
        with self.latch.read():
            self._check(rank)
            with self._shards[rank].read():
                yield

    @contextmanager
    def tail_write(self) -> Iterator[int]:
        """Write lock on the *current* last shard; yields its rank.

        The rank is resolved under the latch, so an ``append`` racing a
        ``bulk_load`` that changed the shard count locks the shard the
        engine will actually route to — never a stale index.
        """
        with self.latch.read():
            rank = len(self._shards) - 1
            with self._shards[rank].write():
                yield rank

    @contextmanager
    def read_all(self, ranks: Optional[Sequence[int]] = None
                 ) -> Iterator[Sequence[int]]:
        """Consistent multi-shard read; yields the locked rank set.

        ``None`` (the usual call) means *every* shard, resolved under
        the latch so a concurrent resize cannot skew the sweep.
        Acquired in ascending rank (routed ops hold at most one shard
        lock, so the ordering cannot deadlock); writers of every named
        shard are excluded together, which is what makes the stride +
        per-shard images read under this context mutually consistent.
        """
        with self.latch.read():
            if ranks is None:
                ordered: Sequence[int] = range(len(self._shards))
            else:
                ordered = sorted(ranks)
                for rank in ordered:
                    self._check(rank)
            for rank in ordered:
                self._shards[rank].acquire_read()
            try:
                yield ordered
            finally:
                for rank in reversed(ordered):
                    self._shards[rank].release_read()

    @contextmanager
    def exclusive(self) -> Iterator[None]:
        """Stop the world: the latch in write mode.

        Every routed op holds the latch shared, so this alone excludes
        all of them — no per-shard acquisition sweep needed.
        """
        with self.latch.write():
            yield
