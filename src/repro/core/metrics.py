"""Shape and slack metrics of an L-Tree.

The paper's conclusion claims the structure is *adaptive*: "in the areas
with heavy insertion activity, the L-Tree adjusts itself by creating more
slack between labels to better accommodate future insertions."  These
metrics make that claim measurable (experiment E12):

* :func:`gap_profile` — the label gaps between adjacent leaves;
* :func:`local_slack` — mean gap inside a leaf-index window;
* :func:`shape_summary` — node counts, fanout and occupancy statistics.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Iterator

from repro.core.ltree import LTree
from repro.core.node import LTreeNode


def gap_profile(tree: LTree) -> list[int]:
    """Gaps ``label[i+1] - label[i]`` over adjacent leaves (n-1 values).

    A gap of 1 means no room for an insertion without relabeling; larger
    gaps are the "slack" the paper's splits create.
    """
    labels = tree.labels()
    return [second - first for first, second in zip(labels, labels[1:])]


def local_slack(tree: LTree, center_index: int, window: int = 16) -> float:
    """Mean label gap in a window of leaves around ``center_index``."""
    labels = tree.labels()
    if len(labels) < 2:
        return 0.0
    low = max(0, center_index - window)
    high = min(len(labels) - 1, center_index + window)
    gaps = [labels[i + 1] - labels[i] for i in range(low, high)]
    if not gaps:
        return 0.0
    return sum(gaps) / len(gaps)


@dataclasses.dataclass(frozen=True)
class ShapeSummary:
    """Aggregate structural statistics of one L-Tree."""

    n_leaves: int
    internal_nodes: int
    height: int
    mean_fanout: float
    max_fanout: int
    mean_occupancy: float  # leaf_count / l_max over internal nodes
    max_occupancy: float
    label_space_used: float  # max label / label space

    def storage_overhead(self) -> float:
        """Internal nodes per leaf — the cost §4.2's virtual tree avoids."""
        if self.n_leaves == 0:
            return 0.0
        return self.internal_nodes / self.n_leaves


def _internal_nodes(tree: LTree) -> Iterator[LTreeNode]:
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            continue
        yield node
        assert node.children is not None
        stack.extend(node.children)


def shape_summary(tree: LTree) -> ShapeSummary:
    """Compute a :class:`ShapeSummary` for ``tree``."""
    fanouts = []
    occupancies = []
    internal = 0
    for node in _internal_nodes(tree):
        internal += 1
        assert node.children is not None
        fanouts.append(len(node.children))
        occupancies.append(
            node.leaf_count / tree.params.l_max(node.height))
    if not fanouts:
        fanouts = [0]
        occupancies = [0.0]
    space = tree.label_space
    return ShapeSummary(
        n_leaves=tree.n_leaves,
        internal_nodes=internal,
        height=tree.height,
        mean_fanout=statistics.fmean(fanouts),
        max_fanout=max(fanouts),
        mean_occupancy=statistics.fmean(occupancies),
        max_occupancy=max(occupancies),
        label_space_used=(tree.max_label() / space if space else 0.0),
    )


def capacity_headroom(tree: LTree, leaf: LTreeNode) -> int:
    """Insertions the path above ``leaf`` can absorb before any split.

    ``min over ancestors a of (l_max(a) - l(a))`` — the *capacity slack*
    the paper's splits replenish exactly where insertion pressure is
    (conclusion claim; experiment E12).  Always >= 1 at rest: the
    maintenance algorithm never leaves a full ancestor in place.
    """
    headroom = None
    for ancestor in leaf.ancestors():
        slack = tree.params.l_max(ancestor.height) - ancestor.leaf_count
        if headroom is None or slack < headroom:
            headroom = slack
    return headroom if headroom is not None else 0
