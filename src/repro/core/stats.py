"""Operation counters: the paper's cost model made executable.

Section 3.1 of the paper measures maintenance cost as *the number of nodes
accessed for searching or relabeling*, not wall-clock time.  Every structure
in this library therefore threads its work through a :class:`Counters`
instance so experiments can report exactly the quantity the paper analyzes.

The counter names mirror the three cost components of the paper's accounting
argument:

* ``count_updates`` — ancestor leaf-count increments (the ``h`` term);
* ``relabels``      — nodes whose ``num`` was (re)assigned (the ``f`` and
  ``2f/(s-1)`` terms);
* ``splits``        — node splits (never more than one per single insert,
  Proposition 3).

Additional counters (``node_accesses``, ``comparisons``, ``tuple_reads`` ...)
serve the storage and query substrates.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from typing import Iterator


@dataclasses.dataclass
class Counters:
    """Mutable bundle of operation counters.

    Instances are cheap; create one per experiment run.  ``Counters`` support
    ``+``/``-`` (field-wise) so a window of activity can be measured by
    subtracting snapshots.
    """

    #: ancestor leaf-count increments performed by inserts
    count_updates: int = 0
    #: nodes whose label was written (first assignment or reassignment)
    relabels: int = 0
    #: number of node splits performed
    splits: int = 0
    #: generic structure-node touches (B-tree nodes, L-Tree nodes searched)
    node_accesses: int = 0
    #: label/key comparisons
    comparisons: int = 0
    #: tuples read by the relational substrate
    tuple_reads: int = 0
    #: tuples written by the relational substrate
    tuple_writes: int = 0
    #: completed insert operations (single leaves)
    inserts: int = 0
    #: completed delete (mark) operations
    deletes: int = 0
    #: per-node label fetches issued by the document layer (the cost the
    #: cached label vector of LabeledDocument exists to avoid)
    label_lookups: int = 0
    #: columnar re-pin: shard segments served unchanged from the cached
    #: store (version and prefix both matched the pinned epoch)
    shards_reused: int = 0
    #: columnar re-pin: shards whose label columns were re-extracted
    #: (dirty versions, or forwarding targets of rebalanced-away shards)
    shards_reextracted: int = 0
    #: columnar re-pin: per-shard column/index segments spliced into the
    #: cached store's position space
    segments_spliced: int = 0
    #: candidate positions eliminated by predicate pushdown *before* the
    #: containment join (vs the post-filter plan, which joins them all)
    pushdown_pruned: int = 0

    #: hot paths consult this flag and skip counter maintenance entirely
    #: when it is False (see NullCounters); a plain class attribute, not
    #: a dataclass field, so it never appears in as_dict()/arithmetic
    enabled = True

    def snapshot(self) -> "Counters":
        """Return an immutable-by-convention copy of the current values."""
        return dataclasses.replace(self)

    def reset(self) -> None:
        """Zero every counter in place."""
        for field in dataclasses.fields(self):
            setattr(self, field.name, 0)

    def total_maintenance_cost(self) -> int:
        """The paper's §3.1 cost: count updates plus relabeled nodes."""
        return self.count_updates + self.relabels

    def amortized_cost(self) -> float:
        """Maintenance cost per completed insert (0.0 when no inserts)."""
        if self.inserts == 0:
            return 0.0
        return self.total_maintenance_cost() / self.inserts

    def __add__(self, other: "Counters") -> "Counters":
        if not isinstance(other, Counters):
            return NotImplemented
        merged = Counters()
        for field in dataclasses.fields(self):
            value = getattr(self, field.name) + getattr(other, field.name)
            setattr(merged, field.name, value)
        return merged

    def __sub__(self, other: "Counters") -> "Counters":
        if not isinstance(other, Counters):
            return NotImplemented
        delta = Counters()
        for field in dataclasses.fields(self):
            value = getattr(self, field.name) - getattr(other, field.name)
            setattr(delta, field.name, value)
        return delta

    def as_dict(self) -> dict[str, int]:
        """Field-name → value mapping (for reports)."""
        return dataclasses.asdict(self)

    @contextmanager
    def window(self) -> Iterator["Counters"]:
        """Context manager yielding a delta populated on exit.

        >>> stats = Counters()
        >>> with stats.window() as delta:
        ...     stats.relabels += 3
        >>> delta.relabels
        3
        """
        before = self.snapshot()
        delta = Counters()
        try:
            yield delta
        finally:
            diff = self - before
            for field in dataclasses.fields(diff):
                setattr(delta, field.name, getattr(diff, field.name))


class NullCounters(Counters):
    """A counter sink whose increments instrumented code may skip.

    Behaves exactly like :class:`Counters` for any caller that does write
    to it, but advertises ``enabled = False`` so hot loops can hoist one
    flag check and drop per-touched-slot increments entirely — the
    non-instrumented engine then pays zero attribute-update cost instead
    of one dictionary write per ancestor/relabel/access.
    """

    enabled = False


#: Shared do-nothing sink for callers that do not care about statistics.
#: Using a real Counters keeps hot paths free of ``if stats is not None``;
#: its ``enabled = False`` flag additionally lets them skip increments.
NULL_COUNTERS = NullCounters()
