"""ASCII rendering of L-Trees (debugging and documentation aid).

Reproduces the style of the paper's Figure 2 "Label tree" drawings::

    0 h2 l=8
    ├── 0 h1 l=2
    │   ├── 0 'A'
    │   └── 1 'B'
    └── 9 h1 l=2
        ...

Each line shows a node's number, its height (``h``), leaf count (``l``)
for internal nodes, and the payload for leaves.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.ltree import LTree
from repro.core.node import LTreeNode


def render(tree: LTree, max_leaves: int | None = None) -> str:
    """Multi-line drawing of ``tree``; truncates past ``max_leaves``."""
    kept: list[str] = []
    leaf_count = 0
    for line, is_leaf in _render_node(tree.root, prefix="", is_last=True,
                                      is_root=True):
        if is_leaf:
            leaf_count += 1
            if max_leaves is not None and leaf_count > max_leaves:
                kept.append("… (truncated)")
                break
        kept.append(line)
    return "\n".join(kept)


def _describe(node: LTreeNode) -> str:
    if node.is_leaf:
        mark = " ✝" if node.deleted else ""
        return f"{node.num} {node.payload!r}{mark}"
    return f"{node.num} h{node.height} l={node.leaf_count}"


def _render_node(node: LTreeNode, prefix: str, is_last: bool,
                 is_root: bool = False) -> Iterator[tuple[str, bool]]:
    if is_root:
        yield _describe(node), node.is_leaf
        child_prefix = ""
    else:
        connector = "└── " if is_last else "├── "
        yield f"{prefix}{connector}{_describe(node)}", node.is_leaf
        child_prefix = prefix + ("    " if is_last else "│   ")
    if node.children:
        for index, child in enumerate(node.children):
            yield from _render_node(child, child_prefix,
                                    index == len(node.children) - 1)


def label_ruler(tree: LTree, width: int = 72) -> str:
    """One-line density picture: ``#`` where labels sit, ``.`` where
    slack is, over the current label universe."""
    space = tree.label_space
    if space <= 0 or tree.n_leaves == 0:
        return "." * width
    cells = ["."] * width
    for label in tree.labels():
        position = min(width - 1, label * width // space)
        cells[position] = "#"
    return "".join(cells)
