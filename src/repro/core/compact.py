"""Array-backed L-Tree engine (same algorithms as :mod:`repro.core.ltree`).

:class:`CompactLTree` is a struct-of-arrays reimplementation of the
materialized L-Tree.  Where :class:`repro.core.ltree.LTree` spends every
operation chasing ``LTreeNode`` objects and their attribute slots, this
engine keeps the whole tree in parallel Python lists of integers —

* ``_num``          — the label of each slot;
* ``_height``       — 0 for leaves, increasing toward the root;
* ``_leaf_count``   — cached leaves below each slot;
* ``_parent``       — parent slot (``NIL`` for the root);
* ``_first_child`` / ``_next_sibling`` — the child lists, encoded as
  first-child/next-sibling links so a node costs six ints, not a list;
* ``_payload`` / ``_deleted`` — leaf payloads and tombstone marks;

plus a free-list of recycled slots, so splits and rebuilds reuse storage
instead of allocating.  Handles are plain ``int`` slot ids.

Every algorithm — bulk load (§2.2), Algorithm-1 single insert, the §4.1
run insert, mark-delete (§2.3), compaction — is a fully iterative port of
the reference implementation and performs the *same* work in the *same*
order, reporting into the same :class:`repro.core.stats.Counters` cost
model.  ``tests/core/test_compact_differential.py`` holds the two engines
to byte-identical label sequences and identical counter totals under
randomized operation streams; that equivalence is the contract this
module maintains.

The payoff is a flat, cache-friendly layout that later PRs can shard,
persist, or hand to an accelerator without first untangling object
graphs — the interchangeable-engine seam behind the
``ltree-compact`` scheme in :mod:`repro.order.registry`.

The hot paths run as **batch array passes** through
:mod:`repro.core.vectorized`: bulk load materializes all six columns with
closed-form level arithmetic (numpy when available, C-level list/slice
passes otherwise), and every relabel — splits, root rebuilds, the §4.1
run-insert relabel — walks the tree one *level* at a time with stride
arithmetic instead of one slot at a time.  The original per-slot loops
survive as the ``scalar`` backend, the baseline the vectorized paths are
differential-tested and benchmarked against; select a backend with
``REPRO_VECTOR_BACKEND`` or :func:`repro.core.vectorized.set_backend`.
"""

from __future__ import annotations

import json
import struct
import sys
from array import array
from typing import (Any, Iterable, Iterator, NamedTuple, Optional,
                    Sequence)

from repro.core import vectorized
from repro.core.params import LTreeParams
from repro.core.stats import NULL_COUNTERS, Counters
from repro.errors import ParameterError, InvariantViolation, LabelOverflow

#: sentinel slot id meaning "no node" (parent of the root, end of a
#: sibling chain, empty child list)
NIL = -1

#: magic prefix of the struct-of-arrays byte format (see ``to_bytes``)
ARRAY_MAGIC = b"LTREEARR"
#: version of the struct-of-arrays byte format (bump on layout changes)
ARRAY_FORMAT_VERSION = 1

#: header layout: magic, version, flags, f, s, label_base, root,
#: n_slots, n_free, payload byte length
_HEADER = struct.Struct("<8sIIqqqqqqq")
_FLAG_LOWEST_POLICY = 1
_FLAG_HAS_PAYLOADS = 2

#: labels stay below ``base * step`` for the largest memoized step, so
#: once that product could exceed this bound a restored tree's
#: ``array('q')`` label column is boxed back to a plain list (one power
#: of the base before int64 could actually overflow)
_PROMOTE_LIMIT = 2 ** 62


class ArrayImageHeader(NamedTuple):
    """Decoded ``LTREEARR`` header plus the derived column offsets.

    Lets readers address individual columns of a byte image *without*
    deserializing it — the sharded engine reads labels and tombstones
    of a still-lazy shard straight out of the mmapped image this way
    (see :mod:`repro.core.sharded`).
    """

    flags: int
    f: int
    s: int
    label_base: int
    root: int
    n_slots: int
    n_free: int
    payload_len: int

    @property
    def violator_policy(self) -> str:
        return "lowest" if self.flags & _FLAG_LOWEST_POLICY else "highest"

    @property
    def num_offset(self) -> int:
        """Byte offset of the label (``num``) column."""
        return _HEADER.size

    @property
    def deleted_offset(self) -> int:
        """Byte offset of the tombstone column."""
        return _HEADER.size + 8 * (6 * self.n_slots + self.n_free)

    @property
    def total_bytes(self) -> int:
        """Exact byte length a consistent image must have."""
        return self.deleted_offset + self.n_slots + self.payload_len


def read_array_header(data: bytes) -> ArrayImageHeader:
    """Validate and decode the header of a ``to_bytes`` image.

    Raises :class:`ParameterError` on a bad magic, an unsupported
    version, or a header inconsistent with the buffer length — the same
    checks :meth:`CompactLTree.from_bytes` performs before touching the
    columns.
    """
    view = memoryview(data)
    if len(view) < _HEADER.size:
        raise ParameterError(
            f"buffer of {len(view)} bytes is shorter than the "
            f"{_HEADER.size}-byte header")
    (magic, version, flags, f, s, label_base, root, n_slots, n_free,
     payload_len) = _HEADER.unpack_from(view, 0)
    if magic != ARRAY_MAGIC:
        raise ParameterError(
            f"bad magic {magic!r}; not a CompactLTree byte image")
    if version != ARRAY_FORMAT_VERSION:
        raise ParameterError(
            f"unsupported array-format version {version} "
            f"(supported: {ARRAY_FORMAT_VERSION})")
    if n_slots < 1 or n_free < 0 or payload_len < 0:
        # every real image holds at least the root slot
        raise ParameterError(
            f"inconsistent header: n_slots={n_slots}, "
            f"n_free={n_free}, payload_len={payload_len}")
    header = ArrayImageHeader(flags, f, s, label_base, root, n_slots,
                              n_free, payload_len)
    if len(view) != header.total_bytes:
        raise ParameterError(
            f"buffer is {len(view)} bytes, header describes "
            f"{header.total_bytes}")
    return header


class CompactLTree:
    """Dynamic order-preserving labeling structure on flat arrays.

    Drop-in algorithmic twin of :class:`repro.core.ltree.LTree`; the API
    differs only in that handles are ``int`` slot ids instead of
    ``LTreeNode`` objects, with accessor methods (:meth:`num`,
    :meth:`payload`, :meth:`is_deleted`) replacing attribute access.

    Parameters
    ----------
    params:
        The validated ``(f, s, label_base)`` parameter set.
    stats:
        Counter sink for maintenance cost accounting.  Defaults to a
        shared do-nothing instance.

    Examples
    --------
    >>> from repro.core.params import FIGURE2_PARAMS
    >>> tree = CompactLTree(FIGURE2_PARAMS)
    >>> leaves = tree.bulk_load("A B C /C /B D /D /A".split())
    >>> [tree.num(leaf) for leaf in leaves]    # paper Figure 2(a)
    [0, 1, 3, 4, 9, 10, 12, 13]
    """

    #: recognised violator-selection policies (see ``violator_policy``)
    POLICIES = ("highest", "lowest")

    def __init__(self, params: LTreeParams, stats: Counters = NULL_COUNTERS,
                 violator_policy: str = "highest"):
        if violator_policy not in self.POLICIES:
            raise ValueError(
                f"violator_policy must be one of {self.POLICIES}, got "
                f"{violator_policy!r}")
        self.params = params
        self.stats = stats
        #: which over-limit ancestor a single insert splits; "highest" is
        #: the paper's Algorithm 1, "lowest" the A1 ablation.
        self.violator_policy = violator_policy
        # struct-of-arrays node storage
        self._num: list[int] = []
        self._height: list[int] = []
        self._leaf_count: list[int] = []
        self._parent: list[int] = []
        self._first_child: list[int] = []
        self._next_sibling: list[int] = []
        self._payload: list[Any] = []
        self._deleted: bytearray = bytearray()
        self._free: list[int] = []
        #: cached powers of the label base, indexed by height
        self._steps: list[int] = [1]
        #: cached split thresholds ``l_max(h) = s * b**h``, indexed by height
        self._lmax: list[int] = [params.s]
        self.root = self._new_node(1)

    # ------------------------------------------------------------------
    # slot management
    # ------------------------------------------------------------------
    def _new_node(self, height: int, payload: Any = None) -> int:
        """Allocate a slot (recycling the free-list first)."""
        leaf_count = 1 if height == 0 else 0
        if self._free:
            slot = self._free.pop()
            self._num[slot] = 0
            self._height[slot] = height
            self._leaf_count[slot] = leaf_count
            self._parent[slot] = NIL
            self._first_child[slot] = NIL
            self._next_sibling[slot] = NIL
            self._payload[slot] = payload
            self._deleted[slot] = 0
            return slot
        slot = len(self._num)
        self._num.append(0)
        self._height.append(height)
        self._leaf_count.append(leaf_count)
        self._parent.append(NIL)
        self._first_child.append(NIL)
        self._next_sibling.append(NIL)
        self._payload.append(payload)
        self._deleted.append(0)
        return slot

    def _release(self, slot: int) -> None:
        """Return a slot to the free-list."""
        self._parent[slot] = NIL
        self._first_child[slot] = NIL
        self._next_sibling[slot] = NIL
        self._payload[slot] = None
        self._free.append(slot)

    def _release_internal_subtree(self, top: int) -> None:
        """Free ``top`` and every internal node below it, keeping leaves.

        Used by the split/rebuild paths, which detach the leaves of a
        subtree and hang them under freshly built internal nodes; the old
        internal skeleton is recycled instead of leaking slots.
        """
        height = self._height
        next_sibling = self._next_sibling
        stack = [top]
        while stack:
            node = stack.pop()
            if height[node] == 0:
                continue
            child = self._first_child[node]
            while child != NIL:
                stack.append(child)
                child = next_sibling[child]
            self._release(node)

    def _clear(self) -> None:
        """Drop every slot (bulk load rebuilds from scratch).

        Columns are *reassigned*, not cleared in place: a restored tree
        stores them as ``array('q')`` (see :meth:`from_bytes`) and a
        bulk load returns it to plain-list storage.
        """
        self._num = []
        self._height = []
        self._leaf_count = []
        self._parent = []
        self._first_child = []
        self._next_sibling = []
        self._payload = []
        self._deleted = bytearray()
        self._free = []

    @property
    def allocated_slots(self) -> int:
        """Total slots ever allocated and not reclaimed by bulk load."""
        return len(self._num)

    @property
    def free_slots(self) -> int:
        """Slots currently parked on the free-list."""
        return len(self._free)

    def _step(self, height: int) -> int:
        """``base ** height`` from the memoized power table."""
        steps = self._steps
        base = self.params.base
        while len(steps) <= height:
            steps.append(steps[-1] * base)
            if steps[-1] > _PROMOTE_LIMIT // base and \
                    isinstance(self._num, array):
                # restored trees keep labels in an int64 array (see
                # from_bytes); labels stay below base * step, so box
                # back to a plain list *before* any label near the
                # int64 rim could be stored into fixed-width storage
                self._num = self._num.tolist()
        return steps[height]

    def _l_max(self, height: int) -> int:
        """``s * b**height`` from the memoized threshold table."""
        lmax = self._lmax
        while len(lmax) <= height:
            lmax.append(lmax[-1] * self.params.arity)
        return lmax[height]

    # ------------------------------------------------------------------
    # child-list helpers (first-child/next-sibling encoding)
    # ------------------------------------------------------------------
    def _children_of(self, slot: int) -> list[int]:
        """Materialize the ordered child list of ``slot`` (O(fanout))."""
        children: list[int] = []
        next_sibling = self._next_sibling
        child = self._first_child[slot]
        while child != NIL:
            children.append(child)
            child = next_sibling[child]
        return children

    def _set_children(self, parent: int, children: Sequence[int]) -> None:
        """Relink ``parent``'s child chain to ``children``, in order.

        Also repoints each child's parent link; ``leaf_count`` is left to
        the caller (the reference implementation updates it separately).
        """
        parent_arr = self._parent
        next_sibling = self._next_sibling
        previous = NIL
        for child in children:
            parent_arr[child] = parent
            if previous == NIL:
                self._first_child[parent] = child
            else:
                next_sibling[previous] = child
            previous = child
        if previous == NIL:
            self._first_child[parent] = NIL
        else:
            next_sibling[previous] = NIL

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Height of the tree (leaves are at height 0)."""
        return self._height[self.root]

    @property
    def n_leaves(self) -> int:
        """Number of leaves, including marked-deleted ones."""
        return self._leaf_count[self.root]

    @property
    def label_space(self) -> int:
        """Exclusive upper bound of the current label universe."""
        return self.params.label_space(self._height[self.root])

    def num(self, slot: int) -> int:
        """Current label of ``slot``."""
        return self._num[slot]

    def payload(self, slot: int) -> Any:
        """Payload carried by a leaf slot."""
        return self._payload[slot]

    def set_payload(self, slot: int, payload: Any) -> None:
        """Replace the payload of a leaf slot (labels untouched).

        Used when reattaching in-memory objects to a restored tree whose
        serialized form carried no payloads (see :meth:`to_bytes`).
        """
        if self._height[slot] != 0:
            raise ValueError("only leaves carry payloads")
        self._payload[slot] = payload

    def is_leaf(self, slot: int) -> bool:
        """True for token-carrying leaves (height 0)."""
        return self._height[slot] == 0

    def is_deleted(self, slot: int) -> bool:
        """Tombstone mark of a leaf slot."""
        return bool(self._deleted[slot])

    def parent_of(self, slot: int) -> Optional[int]:
        """Parent slot, or ``None`` for the root."""
        parent = self._parent[slot]
        return None if parent == NIL else parent

    def children_of(self, slot: int) -> list[int]:
        """Ordered child slots of an internal node (empty for leaves)."""
        return self._children_of(slot)

    def leaf_count_of(self, slot: int) -> int:
        """Cached number of leaves below ``slot``."""
        return self._leaf_count[slot]

    def height_of(self, slot: int) -> int:
        """Height of ``slot`` (0 for leaves)."""
        return self._height[slot]

    def first_leaf(self) -> Optional[int]:
        """Leftmost leaf, or ``None`` when the tree is empty."""
        return self._first_leaf_of(self.root)

    def last_leaf(self) -> Optional[int]:
        """Rightmost leaf, or ``None`` when the tree is empty."""
        height = self._height
        next_sibling = self._next_sibling
        node = self.root
        while height[node] != 0:
            child = self._first_child[node]
            if child == NIL:
                return None
            while next_sibling[child] != NIL:
                child = next_sibling[child]
            node = child
        return node

    def _first_leaf_of(self, slot: int) -> Optional[int]:
        height = self._height
        node = slot
        while height[node] != 0:
            child = self._first_child[node]
            if child == NIL:
                return None
            node = child
        return node

    def iter_leaves(self, include_deleted: bool = True) -> Iterator[int]:
        """All leaves in document order."""
        return self._iter_subtree_leaves(self.root, include_deleted)

    def _iter_subtree_leaves(self, top: int, include_deleted: bool = True
                             ) -> Iterator[int]:
        """Leaves of the subtree rooted at ``top``, in document order.

        Walks the first-child/next-sibling links directly (the encoding
        *is* a binary tree whose pre-order is document order), so no
        per-node child list is ever materialized.
        """
        height = self._height
        first_child = self._first_child
        next_sibling = self._next_sibling
        deleted = self._deleted
        if height[top] == 0:
            if include_deleted or not deleted[top]:
                yield top
            return
        # stack of pending right-sibling chains; top's own siblings are
        # never followed because the walk starts at its first child
        stack = [first_child[top]]
        push = stack.append
        while stack:
            node = stack.pop()
            while node != NIL:
                if height[node] == 0:
                    if include_deleted or not deleted[node]:
                        yield node
                    node = next_sibling[node]
                else:
                    sibling = next_sibling[node]
                    if sibling != NIL:
                        push(sibling)
                    node = first_child[node]

    def labels(self, include_deleted: bool = True) -> list[int]:
        """The current label sequence (strictly increasing)."""
        num = self._num
        return [num[leaf] for leaf in self.iter_leaves(include_deleted)]

    def label_map(self) -> dict[int, int]:
        """Live handle → label, one pass over the flat ``num`` column.

        The bulk extraction primitive behind the document layer's
        cached label vector: no per-handle accessor calls, no tombstone
        re-checks (``iter_leaves(include_deleted=False)`` already
        filters).
        """
        num = self._num
        return {slot: num[slot]
                for slot in self.iter_leaves(include_deleted=False)}

    def payloads(self, include_deleted: bool = True) -> list[Any]:
        """Leaf payloads in document order."""
        payload = self._payload
        return [payload[leaf] for leaf in self.iter_leaves(include_deleted)]

    def leaf_at(self, index: int) -> int:
        """The ``index``-th leaf (0-based, counting deleted ones): O(h·f)."""
        if index < 0 or index >= self._leaf_count[self.root]:
            raise IndexError(
                f"leaf index {index} out of range "
                f"0..{self._leaf_count[self.root]}")
        height = self._height
        leaf_count = self._leaf_count
        next_sibling = self._next_sibling
        node = self.root
        accesses = 0
        while height[node] != 0:
            child = self._first_child[node]
            while child != NIL:
                accesses += 1
                if index < leaf_count[child]:
                    node = child
                    break
                index -= leaf_count[child]
                child = next_sibling[child]
        stats = self.stats
        if stats.enabled:
            stats.node_accesses += accesses
        return node

    def max_label(self) -> int:
        """Largest label currently assigned (-1 for an empty tree)."""
        last = self.last_leaf()
        return -1 if last is None else self._num[last]

    def find_leaf(self, num: int) -> Optional[int]:
        """The leaf labeled ``num``, or ``None``: O(height) descent.

        Labels spell their own path (paper §4.2): at a node numbered
        ``N`` with children ``N + i * B**h``, the target's child slot is
        ``(num - N) // B**h``; children occupy consecutive slots.
        """
        if num < 0:
            return None
        num_arr = self._num
        height = self._height
        next_sibling = self._next_sibling
        stats = self.stats
        track = stats.enabled
        node = self.root
        if num < num_arr[node]:
            return None
        while height[node] != 0:
            if track:
                stats.node_accesses += 1
            child = self._first_child[node]
            if child == NIL:
                return None
            step = self._step(height[node] - 1)
            index = (num - num_arr[node]) // step
            if index < 0:
                return None
            while index > 0 and child != NIL:
                child = next_sibling[child]
                index -= 1
            if child == NIL:
                return None
            node = child
        return node if num_arr[node] == num else None

    # ------------------------------------------------------------------
    # maintenance beyond the paper: compaction and re-parameterization
    # ------------------------------------------------------------------
    def compact(self, params: Optional[LTreeParams] = None
                ) -> dict[int, int]:
        """Rebuild the tree without tombstoned leaves (vacuum).

        Returns an old-handle -> new-handle mapping so callers can
        migrate.  All pre-compaction handles are invalid afterwards: the
        rebuild reclaims every slot.
        """
        live = list(self.iter_leaves(include_deleted=False))
        payloads = [self._payload[leaf] for leaf in live]
        if params is not None:
            self.params = params
            self._steps = [1]
            self._lmax = [params.s]
        new_leaves = self.bulk_load(payloads)
        return dict(zip(live, new_leaves))

    def tombstone_count(self) -> int:
        """Number of marked-deleted leaves still occupying label slots."""
        deleted = self._deleted
        return sum(1 for leaf in self.iter_leaves() if deleted[leaf])

    # ------------------------------------------------------------------
    # bulk loading (paper §2.2)
    # ------------------------------------------------------------------
    def bulk_load(self, payloads: Iterable[Any]) -> list[int]:
        """Replace the tree contents with a fresh left-complete tree.

        Reclaims every existing slot, so handles from before the load are
        invalid.  Returns the created leaves in order.

        Under the vectorized backends the whole struct-of-arrays image —
        labels, links, counts — is computed as closed-form column
        arithmetic (:func:`repro.core.vectorized.left_complete_columns`)
        with zero per-slot work; the slot layout and counter totals are
        identical to the scalar build.
        """
        items = list(payloads)
        self._clear()
        if not items or vectorized.get_backend() == "scalar":
            return self._bulk_load_scalar(items)
        n = len(items)
        params = self.params
        columns = vectorized.left_complete_columns(
            n, params.arity, params.base, params.height_for(n))
        (self._num, self._height, self._leaf_count, self._parent,
         self._first_child, self._next_sibling) = columns[:6]
        self._payload = items + [None] * (columns.total - n)
        self._deleted = bytearray(columns.total)
        self.root = columns.root
        stats = self.stats
        if stats.enabled:
            stats.relabels += columns.total
        return list(range(n))

    def _bulk_load_scalar(self, items: list) -> list[int]:
        """The per-slot bulk load (scalar backend, and the empty tree)."""
        leaves = [self._new_node(0, payload) for payload in items]
        height = self.params.height_for(len(leaves))
        if leaves:
            self.root = self._build_left_complete(leaves, height)
        else:
            self.root = self._new_node(1)
        self._assign_labels(self.root, 0)
        return leaves

    def _build_left_complete(self, leaves: Sequence[int],
                             height: int) -> int:
        """Pack ``leaves`` into a left-complete ``b``-ary tree of ``height``.

        Nodes are filled left to right; only the rightmost spine may be
        under-full.  ``len(leaves)`` must be in ``(0, b**height]``.
        """
        arity = self.params.arity
        if not 0 < len(leaves) <= arity ** height:
            raise ValueError(
                f"{len(leaves)} leaves do not fit height {height} "
                f"(capacity {arity ** height})")
        level: list[int] = list(leaves)
        for level_height in range(1, height + 1):
            next_level: list[int] = []
            for start in range(0, len(level), arity):
                group = level[start:start + arity]
                parent = self._new_node(level_height)
                self._set_children(parent, group)
                leaf_count = self._leaf_count
                total = 0
                for child in group:
                    total += leaf_count[child]
                leaf_count[parent] = total
                next_level.append(parent)
            level = next_level
        root = level[0]
        self._parent[root] = NIL
        return root

    def _build_even(self, leaves: Sequence[int], height: int) -> int:
        """Pack ``leaves`` into a ``b``-ary tree with *even* occupancy.

        Iterative pre-order port of the reference ``_build_even``: leaves
        are spread evenly over ``ceil(n / b**(height-1))`` children, so
        every internal node holds at least half its capacity share.
        """
        arity = self.params.arity
        n = len(leaves)
        if not 0 < n <= arity ** height:
            raise ValueError(
                f"{n} leaves do not fit height {height} "
                f"(capacity {arity ** height})")
        if height == 0:
            return leaves[0]
        root = NIL
        # per-parent tail pointer so pre-order frames append in O(1)
        tail: dict[int, int] = {}
        stack: list[tuple[int, int, int, int]] = [(0, n, height, NIL)]
        while stack:
            start, end, level_height, parent = stack.pop()
            if level_height == 0:
                node = leaves[start]
            else:
                node = self._new_node(level_height)
                self._leaf_count[node] = end - start
            if parent == NIL:
                root = node
                self._parent[node] = NIL
            else:
                self._parent[node] = parent
                last = tail.get(parent, NIL)
                if last == NIL:
                    self._first_child[parent] = node
                else:
                    self._next_sibling[last] = node
                self._next_sibling[node] = NIL
                tail[parent] = node
            if level_height == 0:
                continue
            capacity = arity ** (level_height - 1)
            count = end - start
            pieces = min(arity, -(-count // capacity))
            ranges: list[tuple[int, int]] = []
            cursor = start
            for piece in range(pieces):
                size = (end - cursor) // (pieces - piece)
                ranges.append((cursor, cursor + size))
                cursor += size
            for child_start, child_end in reversed(ranges):
                stack.append((child_start, child_end, level_height - 1,
                              node))
        return root

    # ------------------------------------------------------------------
    # single insertion (paper Algorithm 1)
    # ------------------------------------------------------------------
    def insert_after(self, anchor: int, payload: Any) -> int:
        """Insert a new leaf right after ``anchor`` and label it."""
        return self._insert_adjacent(anchor, payload, before=False)

    def insert_before(self, anchor: int, payload: Any) -> int:
        """Insert a new leaf right before ``anchor`` and label it."""
        return self._insert_adjacent(anchor, payload, before=True)

    def append(self, payload: Any) -> int:
        """Insert a new leaf at the end of the sequence."""
        last = self.last_leaf()
        if last is None:
            return self._insert_first(payload)
        return self.insert_after(last, payload)

    def prepend(self, payload: Any) -> int:
        """Insert a new leaf at the beginning of the sequence."""
        first = self.first_leaf()
        if first is None:
            return self._insert_first(payload)
        return self.insert_before(first, payload)

    def _insert_first(self, payload: Any) -> int:
        """Insert into an empty tree."""
        if self._leaf_count[self.root] != 0:
            raise ValueError("_insert_first on a non-empty tree")
        if self._height[self.root] != 1:
            self._release(self.root)
            self.root = self._new_node(1)
        leaf = self._new_node(0, payload)
        parent = self.root
        self._first_child[parent] = leaf
        self._parent[leaf] = parent
        leaf_count = self._leaf_count
        parent_arr = self._parent
        depth = 0
        node = parent
        while node != NIL:
            leaf_count[node] += 1
            depth += 1
            node = parent_arr[node]
        self._num[leaf] = self._num[parent]
        stats = self.stats
        if stats.enabled:
            stats.count_updates += depth
            stats.relabels += 1
            stats.inserts += 1
        return leaf

    def _insert_adjacent(self, anchor: int, payload: Any,
                         before: bool) -> int:
        """Algorithm 1: structural insert, count update, split or relabel."""
        if self._height[anchor] != 0:
            raise ValueError("insertion anchor must be a leaf")
        parent = self._parent[anchor]
        if parent == NIL:
            raise ValueError("anchor leaf is detached from any tree")
        next_sibling = self._next_sibling
        # locate the anchor in its parent's chain (O(fanout))
        index = 0
        previous = NIL
        child = self._first_child[parent]
        while child != anchor:
            previous = child
            child = next_sibling[child]
            index += 1
        position = index if before else index + 1
        leaf = self._new_node(0, payload)
        if before:
            if previous == NIL:
                self._first_child[parent] = leaf
            else:
                next_sibling[previous] = leaf
            next_sibling[leaf] = anchor
        else:
            next_sibling[leaf] = next_sibling[anchor]
            next_sibling[anchor] = leaf
        self._parent[leaf] = parent

        # Walk up: maintain leaf counts and find the violating ancestor
        # (the paper's Algorithm 1 takes the HIGHEST; "lowest" is the A1
        # ablation).
        leaf_count = self._leaf_count
        height = self._height
        parent_arr = self._parent
        lmax = self._lmax
        if len(lmax) <= height[self.root]:
            self._l_max(height[self.root])
        highest_policy = self.violator_policy == "highest"
        violator = NIL
        depth = 0
        node = parent
        while node != NIL:
            leaf_count[node] += 1
            depth += 1
            if leaf_count[node] >= lmax[height[node]]:
                if highest_policy or violator == NIL:
                    violator = node
            node = parent_arr[node]
        stats = self.stats
        if stats.enabled:
            stats.count_updates += depth

        if violator == NIL:
            # Relabel the new leaf and its right siblings (cost <= f).
            self._relabel_children_from(parent, position)
        elif violator == self.root:
            if leaf_count[self.root] == lmax[height[self.root]]:
                self._split_root()
            else:
                # Only reachable under the "lowest" ablation policy.
                self._rebuild_root()
        elif leaf_count[violator] == lmax[height[violator]]:
            self._split(violator)
        else:
            self._split_uneven(violator)
        if stats.enabled:
            stats.inserts += 1
        return leaf

    # ------------------------------------------------------------------
    # splitting and relabeling
    # ------------------------------------------------------------------
    def _split(self, node: int) -> None:
        """Replace ``node`` with ``s`` complete ``b``-ary subtrees (§2.3)."""
        parent = self._parent[node]
        assert parent != NIL
        node_height = self._height[node]
        expected = self.params.l_max(node_height)
        if self._leaf_count[node] != expected:
            raise InvariantViolation(
                f"split of node with l={self._leaf_count[node]}, expected "
                f"{expected}; use insert_run_* for batch updates")
        leaves = list(self._iter_subtree_leaves(node))
        chunk = self.params.l_min(node_height)  # b**h leaves per subtree
        siblings = self._children_of(parent)
        index = siblings.index(node)
        self._release_internal_subtree(node)
        subtrees = [
            self._build_left_complete(leaves[start:start + chunk],
                                      node_height)
            for start in range(0, len(leaves), chunk)
        ]
        siblings[index:index + 1] = subtrees
        self._set_children(parent, siblings)
        self.stats.splits += 1
        # Splits landing next to thin batch/bulk-load children can push
        # the parent's fanout past the addressable limit — regroup first.
        if len(siblings) > min(self.params.f, self.params.base):
            top = self._fix_fanout_upward(parent)
            if self._parent[top] == NIL:
                self._assign_labels(top, 0)
            else:
                grand = self._parent[top]
                self._relabel_children_from(
                    grand, self._children_of(grand).index(top))
        else:
            self._relabel_children_from(parent, index)

    def _split_root(self) -> None:
        """Grow the tree: new root adopting ``s`` complete subtrees.

        Paper Algorithm 1, lines 18–20: the root's ``s * b**H`` leaves
        become ``s`` complete trees of height ``H`` under a new root of
        height ``H + 1``, relabeled from 0.
        """
        old_root = self.root
        old_height = self._height[old_root]
        leaves = list(self._iter_subtree_leaves(old_root))
        chunk = self.params.l_min(old_height)
        self._release_internal_subtree(old_root)
        subtrees = [
            self._build_left_complete(leaves[start:start + chunk],
                                      old_height)
            for start in range(0, len(leaves), chunk)
        ]
        new_root = self._new_node(old_height + 1)
        self._set_children(new_root, subtrees)
        leaf_count = self._leaf_count
        leaf_count[new_root] = sum(leaf_count[tree] for tree in subtrees)
        self.root = new_root
        self.stats.splits += 1
        self._assign_labels(new_root, 0)

    def _relabel_children_from(self, parent: int, start: int) -> None:
        """Relabel children ``start..`` of ``parent`` and their subtrees.

        This is the paper's ``Relabel(parent, num(parent), i)``.  The
        child chain is walked in place — no child list is materialized —
        and whole subtrees are relabeled per level by
        :meth:`_assign_labels_batch`.
        """
        parent_height = self._height[parent]
        step = self._step(parent_height - 1)
        base_num = self._num[parent]
        next_sibling = self._next_sibling
        # one chain pass: fanout check + the first child to relabel
        fanout = 0
        start_child = NIL
        child = self._first_child[parent]
        while child != NIL:
            if fanout == start:
                start_child = child
            fanout += 1
            child = next_sibling[child]
        if fanout > self.params.base:
            raise LabelOverflow(
                f"node has {fanout} children but the label "
                f"base addresses only {self.params.base} slots")
        if start_child == NIL:
            return
        if parent_height == 1:
            # children are all leaves — one stride pass over the chain
            num_arr = self._num
            value = base_num + start * step
            child = start_child
            while child != NIL:
                num_arr[child] = value
                value += step
                child = next_sibling[child]
            stats = self.stats
            if stats.enabled:
                stats.relabels += fanout - start
            return
        slots = []
        values = []
        child = start_child
        value = base_num + start * step
        while child != NIL:
            slots.append(child)
            values.append(value)
            value += step
            child = next_sibling[child]
        self._assign_labels_batch(slots, values, parent_height - 1)

    def _assign_labels(self, node: int, num: int) -> None:
        """Set ``num`` on ``node`` and on its whole subtree."""
        self._assign_labels_batch([node], [num], self._height[node])

    def _assign_labels_batch(self, slots: list[int], values: list[int],
                             height: int) -> None:
        """Label same-height subtree roots ``slots`` with ``values``.

        The vectorized form of the subtree relabel: instead of a per-node
        stack walk, the whole frontier advances one *level* at a time and
        each parent's child labels are a stride progression; counters are
        settled once per call.  Under the ``scalar`` backend this defers
        to the original per-slot loop so the PR 1 baseline stays
        measurable (same labels, same counter totals either way).
        """
        if vectorized.get_backend() == "scalar":
            for slot, value in zip(slots, values):
                self._assign_labels_scalar(slot, value)
            return
        if height > 0:
            # extend the step memo (and run its array->list promotion
            # hook) *before* aliasing the label column: _step may
            # reassign self._num, and writes into a stale alias would
            # be silently lost
            self._step(height - 1)
        num_arr = self._num
        first_child = self._first_child
        next_sibling = self._next_sibling
        base = self.params.base
        for slot, value in zip(slots, values):
            num_arr[slot] = value
        written = len(slots)
        level = height
        while level > 0 and slots:
            step = self._step(level - 1)
            descend = level > 1
            next_slots: list[int] = []
            next_values: list[int] = []
            push_slot = next_slots.append
            push_value = next_values.append
            for parent, value in zip(slots, values):
                child = first_child[parent]
                count = 0
                while child != NIL:
                    num_arr[child] = value
                    count += 1
                    if descend:
                        push_slot(child)
                        push_value(value)
                    value += step
                    child = next_sibling[child]
                if count > base:
                    raise LabelOverflow(
                        f"node has {count} children but the "
                        f"label base addresses only {base} slots")
                written += count
            slots, values = next_slots, next_values
            level -= 1
        stats = self.stats
        if stats.enabled:
            stats.relabels += written

    def _assign_labels_scalar(self, node: int, num: int) -> None:
        """The per-slot stack walk (scalar backend baseline)."""
        if self._height[node] > 0:
            # see _assign_labels_batch: memoize steps (and let the
            # promotion hook swap self._num) before aliasing the column
            self._step(self._height[node] - 1)
        num_arr = self._num
        height = self._height
        first_child = self._first_child
        next_sibling = self._next_sibling
        base = self.params.base
        stats = self.stats
        if height[node] == 0:
            num_arr[node] = num
            stats.relabels += 1
            return
        stack = [(node, num)]
        while stack:
            current, value = stack.pop()
            num_arr[current] = value
            stats.relabels += 1
            current_height = height[current]
            if current_height == 0:
                continue
            step = self._step(current_height - 1)
            child = first_child[current]
            index = 0
            while child != NIL:
                stack.append((child, value + index * step))
                index += 1
                child = next_sibling[child]
            if index > base:
                raise LabelOverflow(
                    f"node has {index} children but the "
                    f"label base addresses only {base} slots")

    # ------------------------------------------------------------------
    # batch insertion (paper §4.1)
    # ------------------------------------------------------------------
    def insert_run_after(self, anchor: int,
                         payloads: Sequence[Any]) -> list[int]:
        """Insert a run of leaves right after ``anchor`` in one operation.

        The ``h`` (count update) and ``f`` (sibling relabel) cost terms
        are paid once for the whole run, matching paper §4.1.
        """
        return self._insert_run(anchor, payloads, before=False)

    def insert_run_before(self, anchor: int,
                          payloads: Sequence[Any]) -> list[int]:
        """Insert a run of leaves right before ``anchor``; see above."""
        return self._insert_run(anchor, payloads, before=True)

    def _insert_run(self, anchor: int, payloads: Sequence[Any],
                    before: bool) -> list[int]:
        if not payloads:
            return []
        if self._height[anchor] != 0:
            raise ValueError("insertion anchor must be a leaf")
        parent = self._parent[anchor]
        if parent == NIL:
            raise ValueError("anchor leaf is detached from any tree")
        next_sibling = self._next_sibling
        index = 0
        previous = NIL
        child = self._first_child[parent]
        while child != anchor:
            previous = child
            child = next_sibling[child]
            index += 1
        position = index if before else index + 1
        leaves = [self._new_node(0, payload) for payload in payloads]
        for left, right in zip(leaves, leaves[1:]):
            next_sibling[left] = right
        if before:
            if previous == NIL:
                self._first_child[parent] = leaves[0]
            else:
                next_sibling[previous] = leaves[0]
            next_sibling[leaves[-1]] = anchor
        else:
            next_sibling[leaves[-1]] = next_sibling[anchor]
            next_sibling[anchor] = leaves[0]
        parent_arr = self._parent
        for leaf in leaves:
            parent_arr[leaf] = parent

        count = len(leaves)
        leaf_count = self._leaf_count
        height = self._height
        lmax = self._lmax
        if len(lmax) <= height[self.root]:
            self._l_max(height[self.root])
        violator = NIL
        depth = 0
        node = parent
        while node != NIL:
            leaf_count[node] += count
            depth += 1
            if leaf_count[node] >= lmax[height[node]]:
                violator = node
            node = parent_arr[node]
        stats = self.stats
        if stats.enabled:
            stats.count_updates += depth

        if violator == NIL:
            self._relabel_children_from(parent, position)
        elif violator == self.root:
            self._rebuild_root()
        else:
            self._split_uneven(violator)
        if stats.enabled:
            stats.inserts += count
        return leaves

    def _split_uneven(self, node: int) -> None:
        """Generalized split for leaf counts above ``l_max`` (§4.1).

        The node is rebuilt into ``ceil(l / b**h)`` evenly-filled
        subtrees; any fanout overflow in the parent is repaired by
        :meth:`_fix_fanout_upward`.
        """
        parent = self._parent[node]
        assert parent != NIL
        node_height = self._height[node]
        leaves = list(self._iter_subtree_leaves(node))
        capacity = self.params.l_min(node_height)
        pieces = -(-len(leaves) // capacity)  # ceil division
        siblings = self._children_of(parent)
        index = siblings.index(node)
        self._release_internal_subtree(node)
        subtrees = []
        start = 0
        for piece in range(pieces):
            size = (len(leaves) - start) // (pieces - piece)
            subtrees.append(self._build_even(
                leaves[start:start + size], node_height))
            start += size
        siblings[index:index + 1] = subtrees
        self._set_children(parent, siblings)
        self.stats.splits += 1
        top = self._fix_fanout_upward(parent)
        if self._parent[top] == NIL:
            self._assign_labels(top, 0)
        else:
            grand = self._parent[top]
            self._relabel_children_from(
                grand, self._children_of(grand).index(top))

    def _fix_fanout_upward(self, node: int) -> int:
        """Regroup children wherever fanout exceeds the addressable limit.

        Iterative port of the reference: an over-full node is replaced
        (in *its* parent) by ``ceil(c / b)`` same-height nodes over
        consecutive child slices; the fix propagates upward, growing the
        tree at the root.  Returns the highest structurally modified
        node, where relabeling must start.
        """
        arity = self.params.arity
        limit = min(self.params.f, self.params.base)
        leaf_count = self._leaf_count
        highest = node
        current = node
        while current != NIL:
            children = self._children_of(current)
            if len(children) <= limit:
                current = self._parent[current]
                continue
            current_height = self._height[current]
            groups = -(-len(children) // arity)  # ceil division
            new_nodes: list[int] = []
            start = 0
            for group in range(groups):
                size = (len(children) - start) // (groups - group)
                packed = self._new_node(current_height)
                slice_ = children[start:start + size]
                self._set_children(packed, slice_)
                leaf_count[packed] = sum(leaf_count[c] for c in slice_)
                new_nodes.append(packed)
                start += size
            if self._parent[current] == NIL:
                new_root = self._new_node(current_height + 1)
                self._set_children(new_root, new_nodes)
                leaf_count[new_root] = sum(
                    leaf_count[packed] for packed in new_nodes)
                self._release(current)
                self.root = new_root
                return new_root
            parent = self._parent[current]
            siblings = self._children_of(parent)
            position = siblings.index(current)
            siblings[position:position + 1] = new_nodes
            self._set_children(parent, siblings)
            self._release(current)
            highest = parent
            current = parent
        return highest

    def _rebuild_root(self) -> None:
        """Batch analogue of the root split: rebuild at bulk-load height."""
        leaves = list(self._iter_subtree_leaves(self.root))
        height = self.params.height_for(len(leaves))
        if self.params.l_max(height) <= len(leaves):
            height += 1
        self._release_internal_subtree(self.root)
        self.root = self._build_even(leaves, height)
        self.stats.splits += 1
        self._assign_labels(self.root, 0)

    # ------------------------------------------------------------------
    # deletion (paper §2.3)
    # ------------------------------------------------------------------
    def mark_deleted(self, leaf: int) -> None:
        """Mark ``leaf`` deleted; no relabeling, no structural change."""
        if self._height[leaf] != 0:
            raise ValueError("only leaves can be marked deleted")
        self._deleted[leaf] = 1
        stats = self.stats
        if stats.enabled:
            stats.deletes += 1

    # ------------------------------------------------------------------
    # byte serialization (struct-of-arrays format)
    # ------------------------------------------------------------------
    def to_bytes(self, include_payloads: bool = True) -> bytes:
        """Serialize the whole engine state to a single buffer.

        Layout (all integers little-endian)::

            header   magic "LTREEARR", version, flags, f, s, label_base,
                     root slot, n_slots, n_free, payload byte length
            arrays   num, height, leaf_count, parent, first_child,
                     next_sibling — six int64 arrays of n_slots each
            free     int64 array of n_free recycled slot ids
            deleted  n_slots tombstone bytes
            payload  UTF-8 JSON list of n_slots entries (omitted when
                     ``include_payloads`` is false)

        Unlike the label-only snapshot of :mod:`repro.core.persistence`,
        this captures the *exact* slot layout — free-list order included —
        so :meth:`from_bytes` restores an engine that allocates, splits
        and counts identically to the original from the first operation
        on.  Payloads ride along as JSON (tuples come back as lists;
        non-JSON-able payloads raise :class:`ParameterError`); pass
        ``include_payloads=False`` when payloads are reattached from an
        external source, e.g. a re-parsed XML document.
        """
        n_slots = len(self._num)
        flags = 0
        if self.violator_policy == "lowest":
            flags |= _FLAG_LOWEST_POLICY
        payload_blob = b""
        if include_payloads:
            flags |= _FLAG_HAS_PAYLOADS
            try:
                payload_blob = json.dumps(self._payload).encode("utf-8")
            except (TypeError, ValueError) as exc:
                raise ParameterError(
                    f"payloads are not JSON-serializable ({exc}); pass "
                    f"include_payloads=False and reattach them after "
                    f"from_bytes()") from None
        try:
            header = _HEADER.pack(
                ARRAY_MAGIC, ARRAY_FORMAT_VERSION, flags, self.params.f,
                self.params.s, self.params.base, self.root, n_slots,
                len(self._free), len(payload_blob))
        except struct.error:
            raise ParameterError(
                f"parameters exceed the int64 range of the byte format "
                f"(f={self.params.f}, s={self.params.s}, "
                f"base={self.params.base}); use the label-only JSON "
                f"snapshot instead") from None
        pieces = [header]
        try:
            for column in (self._num, self._height, self._leaf_count,
                           self._parent, self._first_child,
                           self._next_sibling):
                pieces.append(_pack_int64(column))
            pieces.append(_pack_int64(self._free))
        except OverflowError:
            # labels are arbitrary-precision in memory; the byte format
            # stores fixed 64-bit columns
            raise ParameterError(
                f"tree state exceeds the int64 range of the byte "
                f"format (base {self.params.base}, height "
                f"{self.height}); use the label-only JSON snapshot "
                f"instead") from None
        pieces.append(bytes(self._deleted))
        pieces.append(payload_blob)
        return b"".join(pieces)

    @classmethod
    def from_bytes(cls, data: bytes, stats: Counters = NULL_COUNTERS
                   ) -> "CompactLTree":
        """Rebuild an engine from a :meth:`to_bytes` buffer.

        Accepts any bytes-like object — including a ``memoryview`` over
        an mmapped page file — and copies each column in one bulk
        ``frombytes``, then *adopts* the resulting ``array('q')``
        objects as storage with no per-slot boxing (the ``tolist``
        floor the restore path used to pay).  Mutation paths treat the
        adopted arrays exactly like lists; the next :meth:`bulk_load`
        or an approach to the int64 rim (see :meth:`_step`) returns the
        affected columns to plain lists.  Raises
        :class:`ParameterError` on a bad magic, an unsupported version,
        or a truncated/inconsistent buffer.
        """
        view = memoryview(data)
        header = read_array_header(view)
        n_slots, n_free = header.n_slots, header.n_free
        root = header.root
        params = LTreeParams(f=header.f, s=header.s,
                             label_base=header.label_base)
        tree = cls(params, stats,
                   violator_policy=header.violator_policy)
        offset = _HEADER.size
        columns = []
        for _ in range(6):
            columns.append(_unpack_int64(view, offset, n_slots))
            offset += 8 * n_slots
        (tree._num, tree._height, tree._leaf_count, tree._parent,
         tree._first_child, tree._next_sibling) = columns
        tree._free = _unpack_int64(view, offset, n_free)
        offset += 8 * n_free
        seen_free = set(tree._free)
        if len(seen_free) != n_free or \
                any(not 0 <= slot < n_slots for slot in seen_free) or \
                root in seen_free:
            # a bogus free slot would silently corrupt live nodes on
            # the next allocation (negative ids index from the end)
            raise ParameterError(
                f"free-list holds invalid or duplicate slot ids for a "
                f"{n_slots}-slot arena")
        tree._deleted = bytearray(view[offset:offset + n_slots])
        offset += n_slots
        if header.flags & _FLAG_HAS_PAYLOADS:
            tree._payload = json.loads(
                view[offset:offset + header.payload_len].tobytes()
                .decode("utf-8"))
            if len(tree._payload) != n_slots:
                raise ParameterError(
                    f"payload column has {len(tree._payload)} entries, "
                    f"expected {n_slots}")
        else:
            tree._payload = [None] * n_slots
        if not 0 <= root < n_slots:
            raise ParameterError(
                f"root slot {root} outside the {n_slots}-slot arena")
        tree.root = root
        return tree

    def save(self, store: Any, name: str = "ltree",
             include_payloads: bool = True) -> None:
        """Persist this engine as blob ``name`` of a page store.

        ``store`` is any object with ``put_blob(name, data)`` —
        canonically :class:`repro.storage.pages.PageStore`.
        """
        store.put_blob(name, self.to_bytes(include_payloads))

    @classmethod
    def load(cls, store: Any, name: str = "ltree",
             stats: Counters = NULL_COUNTERS,
             prefer_mmap: bool = True) -> "CompactLTree":
        """Reopen an engine saved by :meth:`save`.

        With ``prefer_mmap`` (default) the blob is read through the
        store's mmap fast path when available, so the columns are copied
        straight out of the OS page cache.
        """
        return cls.from_bytes(store.get_blob(name, prefer_mmap=prefer_mmap),
                              stats=stats)

    # ------------------------------------------------------------------
    # validation (used by tests; never on production paths)
    # ------------------------------------------------------------------
    def validate(self, check_occupancy: bool = False) -> None:
        """Check every structural invariant; raise InvariantViolation.

        Same checks as :meth:`repro.core.ltree.LTree.validate`, performed
        iteratively, plus array-storage consistency (no free slot
        reachable from the root).
        """
        if self._num[self.root] != 0:
            raise InvariantViolation(
                f"root num is {self._num[self.root]}, not 0")
        if self._parent[self.root] != NIL:
            raise InvariantViolation("root has a parent")
        free = set(self._free)
        num = self._num
        height = self._height
        leaf_count = self._leaf_count
        parent_arr = self._parent
        stack: list[tuple[int, bool]] = [(self.root, True)]
        while stack:
            node, on_right_spine = stack.pop()
            if node in free:
                raise InvariantViolation(
                    f"free slot {node} is reachable from the root")
            if height[node] == 0:
                if leaf_count[node] != 1:
                    raise InvariantViolation("leaf with leaf_count != 1")
                continue
            children = self._children_of(node)
            if node != self.root and not children:
                raise InvariantViolation("non-root internal node is empty")
            if len(children) > self.params.f:
                raise InvariantViolation(
                    f"fanout {len(children)} exceeds f={self.params.f} "
                    f"at height {height[node]}")
            if len(children) > self.params.base:
                raise InvariantViolation("fanout exceeds label base")
            total = 0
            step = self._step(height[node] - 1)
            for index, child in enumerate(children):
                if parent_arr[child] != node:
                    raise InvariantViolation("broken parent link")
                if height[child] != height[node] - 1:
                    raise InvariantViolation(
                        f"child height {height[child]} under height "
                        f"{height[node]}")
                expected = num[node] + index * step
                if num[child] != expected:
                    raise InvariantViolation(
                        f"child num {num[child]}, expected {expected}")
                total += leaf_count[child]
                child_on_spine = (on_right_spine and
                                  index == len(children) - 1)
                stack.append((child, child_on_spine))
            if total != leaf_count[node]:
                raise InvariantViolation(
                    f"cached leaf_count {leaf_count[node]} != actual "
                    f"{total}")
            limit = self.params.l_max(height[node])
            if leaf_count[node] >= limit and \
                    self.violator_policy == "highest":
                raise InvariantViolation(
                    f"leaf count {leaf_count[node]} at height "
                    f"{height[node]} reached the split limit {limit} "
                    f"at rest")
            if check_occupancy and node != self.root and \
                    not on_right_spine:
                lower = self.params.l_min(height[node]) / 4
                if leaf_count[node] < lower:
                    raise InvariantViolation(
                        f"leaf count {leaf_count[node]} at height "
                        f"{height[node]} below the relaxed occupancy "
                        f"bound {lower}")
        labels = self.labels()
        for left, right in zip(labels, labels[1:]):
            if left >= right:
                raise InvariantViolation(
                    f"labels not strictly increasing: {left} >= {right}")


def _pack_int64(values: Sequence[int]) -> bytes:
    """One column as little-endian int64 bytes (single bulk copy).

    A column that already *is* an ``array('q')`` — the storage a
    restored tree keeps, see :func:`_unpack_int64` — is emitted with a
    single ``tobytes`` and no per-value conversion at all.
    """
    if isinstance(values, array) and values.typecode == "q":
        if sys.byteorder == "big":
            swapped = array("q", values)
            swapped.byteswap()
            return swapped.tobytes()
        return values.tobytes()
    column = array("q", values)
    if sys.byteorder == "big":
        column.byteswap()
    return column.tobytes()


def _unpack_int64(view: memoryview, offset: int,
                  count: int) -> array:
    """Read ``count`` little-endian int64 values starting at ``offset``.

    Returns the ``array('q')`` itself — **not** a boxed list.  The
    engine adopts it directly as column storage: ``array`` supports the
    same indexing/append/pop operations the mutation paths use, so the
    restore path skips the ``tolist`` boxing that used to dominate its
    profile.  The one place fixed-width storage could betray us —
    labels outgrowing int64 after further inserts — is guarded by the
    promotion hook in :meth:`CompactLTree._step`.
    """
    column = array("q")
    column.frombytes(view[offset:offset + 8 * count])
    if sys.byteorder == "big":
        column.byteswap()
    return column
