"""Core L-Tree: the paper's primary contribution.

Public surface:

* :class:`~repro.core.params.LTreeParams` — validated (f, s, base) triple;
* :class:`~repro.core.ltree.LTree` — materialized dynamic labeling tree;
* :class:`~repro.core.compact.CompactLTree` — the same algorithms on a
  struct-of-arrays engine (flat int arrays, ``int`` handles);
* :class:`~repro.core.sharded.ShardedCompactLTree` — per-subtree compact
  arenas behind an epoch-versioned shard directory (``(shard, slot)``
  handles, labels composed as shard prefix ⊕ local label, online
  split/merge rebalancing driven by
  :class:`~repro.core.sharded.RebalancePolicy`);
* :class:`~repro.core.virtual.VirtualLTree` — label-only variant (§4.2);
* :mod:`~repro.core.cost` — the paper's closed-form cost model (§3.1/4.1);
* :mod:`~repro.core.tuning` — parameter optimization (§3.2);
* :class:`~repro.core.stats.Counters` — the node-touch cost accounting.
"""

from repro.core.compact import CompactLTree
from repro.core.ltree import LTree
from repro.core.node import LTreeNode
from repro.core.params import (DEFAULT_PARAMS, FIGURE2_PARAMS, LTreeParams,
                               gather_digits, spread_digits)
from repro.core.persistence import ltree_from_labels, restore, snapshot
from repro.core.sharded import RebalancePolicy, ShardedCompactLTree
from repro.core.stats import NULL_COUNTERS, Counters
from repro.core.virtual import VirtualLTree

__all__ = [
    "LTree",
    "LTreeNode",
    "CompactLTree",
    "ShardedCompactLTree",
    "RebalancePolicy",
    "LTreeParams",
    "VirtualLTree",
    "DEFAULT_PARAMS",
    "FIGURE2_PARAMS",
    "Counters",
    "NULL_COUNTERS",
    "spread_digits",
    "gather_digits",
    "snapshot",
    "restore",
    "ltree_from_labels",
]
