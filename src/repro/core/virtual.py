"""Virtual L-Tree (paper Section 4.2).

The L-Tree never has to be materialized: a leaf label written in base
``B`` spells out the child slot taken at every level, so the (virtual)
ancestor of label ``x`` at height ``h`` is simply numbered
``anc(x, h) = x - (x mod B**h)``.  Keeping the labels in a counted B-tree
(:class:`repro.storage.btree.CountedBTree`) supports the two operations the
maintenance algorithm needs, both in O(log n):

* the split criterion of the virtual node at height ``h`` above label
  ``x`` is ``count_range(anc(x,h), anc(x,h) + B**h) >= s * b**h``;
* relabeling a split region rewrites the labels in one parent range —
  the split node's leaves get fresh complete-subtree labels while every
  right-sibling subtree shifts by the constant ``(s-1) * B**h`` (offsets
  preserve internal structure).

:class:`VirtualLTree` mirrors :class:`repro.core.ltree.LTree` operation for
operation; for identical inputs both produce **identical label sequences**
(verified by ``tests/core/test_virtual.py``), trading the materialized
tree's storage for logarithmic range counting (the paper's stated
tradeoff).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence

from repro.core import vectorized
from repro.core.params import LTreeParams
from repro.core.stats import NULL_COUNTERS, Counters
from repro.errors import InvariantViolation, KeyNotFound
from repro.storage.btree import CountedBTree


class _Entry:
    """Payload wrapper so deletions can tombstone without relabeling."""

    __slots__ = ("payload", "deleted")

    def __init__(self, payload: Any):
        self.payload = payload
        self.deleted = False


class VirtualLTree:
    """Label-only L-Tree over a counted B-tree (paper §4.2).

    Supports the same single-insert maintenance as the materialized tree;
    labels are the only persistent state.

    Examples
    --------
    >>> from repro.core.params import FIGURE2_PARAMS
    >>> tree = VirtualLTree(FIGURE2_PARAMS)
    >>> tree.bulk_load("A B C /C /B D /D /A".split())
    [0, 1, 3, 4, 9, 10, 12, 13]
    """

    def __init__(self, params: LTreeParams, stats: Counters = NULL_COUNTERS,
                 btree_order: int = 32):
        self.params = params
        self.stats = stats
        self._entries = CountedBTree(order=btree_order, stats=stats)
        self._height = 1

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Height of the virtual tree."""
        return self._height

    @property
    def n_leaves(self) -> int:
        """Number of labels, including tombstoned ones."""
        return len(self._entries)

    @property
    def label_space(self) -> int:
        """Exclusive upper bound of the current label universe."""
        return self.params.label_space(self._height)

    def labels(self, include_deleted: bool = True) -> list[int]:
        """Current label sequence in order."""
        return [label for label, entry in self._entries.items()
                if include_deleted or not entry.deleted]

    def payload(self, label: int) -> Any:
        """Payload stored under ``label``; raises KeyNotFound."""
        return self._entries.get(label).payload

    def items(self, include_deleted: bool = True
              ) -> Iterator[tuple[int, Any]]:
        """(label, payload) pairs in document order."""
        for label, entry in self._entries.items():
            if include_deleted or not entry.deleted:
                yield label, entry.payload

    def first_label(self) -> Optional[int]:
        """Smallest label, or ``None`` when empty."""
        try:
            return self._entries.min_key()
        except KeyNotFound:
            return None

    def last_label(self) -> Optional[int]:
        """Largest label, or ``None`` when empty."""
        try:
            return self._entries.max_key()
        except KeyNotFound:
            return None

    def anc(self, label: int, height: int) -> int:
        """Number of the virtual ancestor of ``label`` at ``height``."""
        return label - (label % self.params.child_step(height))

    def label_at(self, index: int) -> int:
        """The ``index``-th smallest label: O(log n) via B-tree counts."""
        return self._entries.select(index)

    def index_of(self, label: int) -> int:
        """Document-order position of ``label``: O(log n) rank query."""
        if label not in self._entries:
            raise KeyNotFound(f"label {label} does not exist")
        return self._entries.rank(label)

    # ------------------------------------------------------------------
    # bulk load (mirrors LTree.bulk_load)
    # ------------------------------------------------------------------
    def bulk_load(self, payloads: Iterable[Any]) -> list[int]:
        """Load payloads into a fresh virtual tree; return their labels.

        A left-complete ``b``-ary tree places leaf ``j`` along the path
        spelled by ``j`` in base ``b``, so its label is
        :func:`~repro.core.params.spread_digits`\\ ``(j)`` — no tree
        needed.  The whole label run comes from one
        :func:`~repro.core.vectorized.complete_leaf_offsets` expansion
        (numpy-backed when the active backend allows), identical digit
        for digit to the per-leaf ``spread_digits`` loop.
        """
        items = list(payloads)
        self._height = self.params.height_for(len(items))
        labels = vectorized.complete_leaf_offsets(
            len(items), self.params.arity, self.params.base,
            self._height)
        self._entries.bulk_load(
            (label, _Entry(payload))
            for label, payload in zip(labels, items))
        self.stats.relabels += len(items)
        return labels

    # ------------------------------------------------------------------
    # insertion (Algorithm 1 run on virtual nodes)
    # ------------------------------------------------------------------
    def insert_after(self, anchor: int, payload: Any) -> int:
        """Insert right after label ``anchor``; return the new label."""
        return self._insert_adjacent(anchor, payload, before=False)

    def insert_before(self, anchor: int, payload: Any) -> int:
        """Insert right before label ``anchor``; return the new label."""
        return self._insert_adjacent(anchor, payload, before=True)

    def append(self, payload: Any) -> int:
        """Insert at the end of the sequence."""
        last = self.last_label()
        if last is None:
            return self._insert_into_empty(payload)
        return self.insert_after(last, payload)

    def prepend(self, payload: Any) -> int:
        """Insert at the beginning of the sequence."""
        first = self.first_label()
        if first is None:
            return self._insert_into_empty(payload)
        return self.insert_before(first, payload)

    def _insert_into_empty(self, payload: Any) -> int:
        self._height = 1
        self._entries.insert(0, _Entry(payload))
        self.stats.count_updates += 1
        self.stats.relabels += 1
        self.stats.inserts += 1
        return 0

    def _insert_adjacent(self, anchor: int, payload: Any,
                         before: bool) -> int:
        if anchor not in self._entries:
            raise KeyNotFound(f"anchor label {anchor} does not exist")
        # Find the highest violating virtual ancestor: the node at height h
        # containing the anchor holds count_range(...) leaves, +1 for the
        # leaf about to arrive.
        violator_height = 0
        for height in range(1, self._height):
            low = self.anc(anchor, height)
            high = low + self.params.child_step(height)
            occupancy = self._entries.count_range(low, high) + 1
            self.stats.count_updates += 1
            if occupancy >= self.params.l_max(height):
                violator_height = height
        root_occupancy = self.n_leaves + 1
        self.stats.count_updates += 1
        if root_occupancy >= self.params.l_max(self._height):
            violator_height = self._height

        if violator_height == 0:
            label = self._relabel_parent_range(anchor, payload, before)
        elif violator_height == self._height:
            label = self._split_root(anchor, payload, before)
        else:
            label = self._split(anchor, payload, before, violator_height)
        self.stats.inserts += 1
        return label

    def _relabel_parent_range(self, anchor: int, payload: Any,
                              before: bool) -> int:
        """No split: shift the anchor's right siblings up one slot.

        Leaves below one height-1 virtual node always occupy consecutive
        slots ``parent, parent+1, ...`` (every maintenance path labels them
        consecutively), so the new leaf takes the anchor's slot (+1 when
        inserting after) and everything to its right moves up by one.
        """
        parent = self.anc(anchor, 1)
        step = self.params.child_step(1)
        pairs = list(self._entries.iter_range(parent, parent + step))
        index = next(i for i, (label, _) in enumerate(pairs)
                     if label == anchor)
        position = index if before else index + 1
        moved = pairs[position:]
        for label, _ in reversed(moved):
            self._entries.delete(label)
        new_entry = _Entry(payload)
        new_label = parent + position
        sequence = [(new_label, new_entry)] + [
            (parent + position + 1 + offset, entry)
            for offset, (_, entry) in enumerate(moved)
        ]
        for label, entry in sequence:
            self._entries.insert(label, entry)
            self.stats.relabels += 1
        return new_label

    def _split(self, anchor: int, payload: Any, before: bool,
               height: int) -> int:
        """Split the virtual node at ``height`` above the anchor.

        Mirrors LTree._split + Relabel: the split node's leaves (including
        the new one) are rewritten as ``s`` complete ``b``-ary subtrees in
        slots ``slot_t .. slot_t + s - 1`` of the parent range; leaves of
        right-sibling subtrees shift by the constant ``(s-1) * B**height``.
        """
        params = self.params
        step = params.child_step(height)
        node_low = self.anc(anchor, height)
        parent_low = self.anc(anchor, height + 1)
        parent_step = params.child_step(height + 1)
        parent_high = parent_low + parent_step

        node_pairs = list(self._entries.iter_range(node_low,
                                                   node_low + step))
        expected = params.l_max(height)
        if len(node_pairs) + 1 != expected:
            raise InvariantViolation(
                f"virtual split with l={len(node_pairs) + 1}, "
                f"expected {expected}")
        index = next(i for i, (label, _) in enumerate(node_pairs)
                     if label == anchor)
        position = index if before else index + 1
        entries = [entry for _, entry in node_pairs]
        new_entry = _Entry(payload)
        entries.insert(position, new_entry)

        right_pairs = list(self._entries.iter_range(node_low + step,
                                                    parent_high))
        for label, _ in node_pairs:
            self._entries.delete(label)
        for label, _ in right_pairs:
            self._entries.delete(label)

        new_label: Optional[int] = None
        chunk = params.l_min(height)  # b**height leaves per new subtree
        # one batch expansion of a complete subtree's offsets serves all
        # s subtrees (each holds the same chunk, shifted by whole steps)
        offsets = vectorized.complete_leaf_offsets(
            min(chunk, len(entries)), params.arity, params.base, height)
        for offset, entry in enumerate(entries):
            subtree, within = divmod(offset, chunk)
            label = node_low + subtree * step + offsets[within]
            self._entries.insert(label, entry)
            self.stats.relabels += 1
            if entry is new_entry:
                new_label = label
        shift = (params.s - 1) * step
        for label, entry in right_pairs:
            self._entries.insert(label + shift, entry)
            self.stats.relabels += 1
        self.stats.splits += 1
        assert new_label is not None
        return new_label

    def _split_root(self, anchor: int, payload: Any, before: bool) -> int:
        """Grow the virtual tree: rewrite all labels one level taller."""
        params = self.params
        pairs = list(self._entries.items())
        index = next(i for i, (label, _) in enumerate(pairs)
                     if label == anchor)
        position = index if before else index + 1
        entries = [entry for _, entry in pairs]
        new_entry = _Entry(payload)
        entries.insert(position, new_entry)
        for label, _ in pairs:
            self._entries.delete(label)

        old_height = self._height
        self._height = old_height + 1
        top_step = params.child_step(old_height)
        chunk = params.l_min(old_height)
        offsets = vectorized.complete_leaf_offsets(
            min(chunk, len(entries)), params.arity, params.base,
            old_height)
        new_label: Optional[int] = None
        for offset, entry in enumerate(entries):
            subtree, within = divmod(offset, chunk)
            label = subtree * top_step + offsets[within]
            self._entries.insert(label, entry)
            self.stats.relabels += 1
            if entry is new_entry:
                new_label = label
        self.stats.splits += 1
        assert new_label is not None
        return new_label

    # ------------------------------------------------------------------
    # batch insertion (§4.1 applied to the virtual variant)
    # ------------------------------------------------------------------
    def insert_run_after(self, anchor: int,
                         payloads: Sequence[Any]) -> list[int]:
        """Insert a run of payloads right after label ``anchor``.

        One maintenance pass for the whole run (the §4.1 cost sharing):
        the lowest non-violating virtual ancestor that can absorb the
        ``k`` new leaves is rebuilt in place as an even ``b``-ary forest
        over its label range.  The resulting labels differ from what
        ``k`` single inserts would produce (both are valid L-Trees); all
        density invariants still hold (``validate()``-checked in tests).
        """
        if not payloads:
            return []
        if anchor not in self._entries:
            raise KeyNotFound(f"anchor label {anchor} does not exist")
        params = self.params
        count = len(payloads)

        # Highest violating virtual ancestor once the run lands.
        highest_violator = 0
        for height in range(1, self._height):
            low = self.anc(anchor, height)
            occupancy = self._entries.count_range(
                low, low + params.child_step(height)) + count
            self.stats.count_updates += 1
            if occupancy >= params.l_max(height):
                highest_violator = height
        self.stats.count_updates += 1
        if self.n_leaves + count >= params.l_max(self._height):
            highest_violator = self._height

        if highest_violator >= self._height:
            # Root rebuild: grow the universe until the run fits.
            self._height += 1
            while self.n_leaves + count >= params.l_max(self._height):
                self._height += 1
            rebuild_height = self._height
        else:
            rebuild_height = highest_violator + 1

        low = self.anc(anchor, rebuild_height)
        step = params.child_step(rebuild_height)
        pairs = list(self._entries.iter_range(low, low + step))
        index = next(i for i, (label, _) in enumerate(pairs)
                     if label == anchor)
        entries = [entry for _, entry in pairs]
        new_entries = [_Entry(payload) for payload in payloads]
        entries[index + 1:index + 1] = new_entries
        for label, _ in pairs:
            self._entries.delete(label)

        # Even b-ary forest over the node's child slots.
        child_capacity = params.l_min(rebuild_height - 1) \
            if rebuild_height > 1 else 1
        slots = -(-len(entries) // child_capacity)  # ceil
        slot_step = params.child_step(rebuild_height - 1)
        # slot sizes differ by at most one, and complete_leaf_offsets is
        # prefix-closed, so the largest slot's expansion serves them all
        offsets = vectorized.complete_leaf_offsets(
            -(-len(entries) // slots), params.arity, params.base,
            rebuild_height - 1) if rebuild_height > 1 else None
        new_labels: dict[int, int] = {}
        start = 0
        for slot in range(slots):
            size = (len(entries) - start) // (slots - slot)
            for offset in range(size):
                entry = entries[start + offset]
                label = (low + slot * slot_step + offsets[offset]
                         if rebuild_height > 1 else low + slot)
                self._entries.insert(label, entry)
                self.stats.relabels += 1
                new_labels[id(entry)] = label
            start += size
        self.stats.splits += 1
        self.stats.inserts += count
        return [new_labels[id(entry)] for entry in new_entries]

    # ------------------------------------------------------------------
    # deletion (paper §2.3: tombstone, never relabel)
    # ------------------------------------------------------------------
    def mark_deleted(self, label: int) -> None:
        """Tombstone ``label``; its slot keeps counting toward density."""
        self._entries.get(label).deleted = True
        self.stats.deletes += 1

    # ------------------------------------------------------------------
    # validation (tests only)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check virtual-tree invariants via range counting."""
        labels = self.labels()
        if labels and labels[-1] >= self.label_space:
            raise InvariantViolation(
                f"label {labels[-1]} outside universe {self.label_space}")
        for height in range(1, self._height):
            step = self.params.child_step(height)
            limit = self.params.l_max(height)
            seen: set[int] = set()
            for label in labels:
                low = self.anc(label, height)
                if low in seen:
                    continue
                seen.add(low)
                count = self._entries.count_range(low, low + step)
                if count >= limit:
                    raise InvariantViolation(
                        f"virtual node {low} at height {height} holds "
                        f"{count} >= {limit} leaves")
        if self.n_leaves >= self.params.l_max(self._height):
            raise InvariantViolation("virtual root over its leaf limit")
        self._entries.validate()
