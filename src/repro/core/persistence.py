"""Persistence: L-Trees to and from plain label lists.

Paper §4.2's key observation — *"the base-(f+1) digits of num(v) provide
an encoding of all the ancestors of v ... all the structural information
of the L-Tree is implicit in the labels themselves"* — means a
materialized L-Tree can be serialized as nothing but its (label, payload)
pairs and rebuilt exactly:

* :func:`snapshot` captures a tree as a JSON-able dict;
* :func:`restore` / :func:`ltree_from_labels` rebuild the identical
  structure by decoding each label's digit path — **not** by re-running
  bulk load, so labels (and therefore any external references to them)
  are preserved bit-for-bit.

Round-trip identity is property-tested in
``tests/core/test_persistence.py``.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from repro.core.ltree import LTree
from repro.core.node import LTreeNode
from repro.core.params import LTreeParams
from repro.core.stats import NULL_COUNTERS, Counters
from repro.errors import ParameterError

#: snapshot format version (bump on layout changes)
FORMAT_VERSION = 1


def snapshot(tree: LTree) -> dict[str, Any]:
    """Serialize ``tree`` to a JSON-able dict (payloads must be
    JSON-able themselves for an actual JSON round trip)."""
    entries = []
    for leaf in tree.iter_leaves():
        entries.append({
            "num": leaf.num,
            "payload": leaf.payload,
            "deleted": leaf.deleted,
        })
    return {
        "version": FORMAT_VERSION,
        "f": tree.params.f,
        "s": tree.params.s,
        "label_base": tree.params.base,
        "height": tree.height,
        "entries": entries,
    }


def restore(data: dict[str, Any], stats: Counters = NULL_COUNTERS) -> LTree:
    """Rebuild the exact tree captured by :func:`snapshot`."""
    if data.get("version") != FORMAT_VERSION:
        raise ParameterError(
            f"unsupported snapshot version {data.get('version')!r}")
    params = LTreeParams(f=data["f"], s=data["s"],
                         label_base=data["label_base"])
    pairs = [(entry["num"], entry["payload"])
             for entry in data["entries"]]
    tree = ltree_from_labels(params, data["height"], pairs, stats=stats)
    for entry, leaf in zip(data["entries"], tree.iter_leaves()):
        leaf.deleted = entry["deleted"]
    return tree


def ltree_from_labels(params: LTreeParams, height: int,
                      pairs: Sequence[tuple[int, Any]],
                      stats: Counters = NULL_COUNTERS) -> LTree:
    """Materialize the L-Tree whose leaves carry exactly ``pairs``.

    ``pairs`` must be sorted by label; each label is decoded into its
    digit path (child slot per level, most significant first) and the
    path's nodes are created on demand.  Because labels arrive sorted,
    construction is a single left-to-right sweep: at each level the next
    slot is either the current rightmost child (descend) or a brand-new
    sibling (extend).

    Raises :class:`ParameterError` on unsorted labels, labels outside
    the height's universe, or slot indices that no L-Tree could produce.
    """
    if height < 1:
        raise ParameterError(f"height must be >= 1, got {height}")
    tree = LTree(params, stats)
    root = LTreeNode(height=height)
    tree.root = root
    previous = -1
    for label, payload in pairs:
        if label <= previous:
            raise ParameterError(
                f"labels must be strictly increasing "
                f"({label} after {previous})")
        if label >= params.label_space(height):
            raise ParameterError(
                f"label {label} outside the universe of height {height}")
        previous = label
        _attach(tree, root, label, payload)
    _recount(root)
    return tree


def _attach(tree: LTree, root: LTreeNode, label: int, payload: Any) -> None:
    """Create the digit path of ``label`` under ``root``.

    Sorted labels sweep the tree left to right, so at every level the
    slot is either the current rightmost child (descend) or the next
    fresh slot (extend by one).  Anything else — a gap, a step backwards,
    a slot beyond the base — cannot come from one L-Tree and is rejected.
    """
    node = root
    offset = label
    created = False
    for level in range(root.height - 1, -1, -1):
        step = tree.params.child_step(level)
        slot, offset = divmod(offset, step)
        if slot >= tree.params.base:
            raise ParameterError(
                f"label {label} uses child slot {slot} at height "
                f"{level + 1}, beyond base {tree.params.base}")
        assert node.children is not None
        last = len(node.children) - 1
        if slot < last:
            raise ParameterError(
                f"label {label} revisits an earlier subtree (slot {slot} "
                f"after {last}); labels are not from one L-Tree")
        if slot > last + 1:
            raise ParameterError(
                f"label {label} skips child slots {last + 1}..{slot - 1} "
                f"at height {level + 1}; labels are not from one L-Tree")
        if slot == last + 1:
            child = LTreeNode(height=level)
            child.parent = node
            child.num = node.num + slot * step
            node.children.append(child)
            tree.stats.relabels += 1
            created = True
        node = node.children[slot]
    if not created:
        raise ParameterError(f"duplicate label {label}")
    node.payload = payload


def _recount(node: LTreeNode) -> int:
    """Recompute cached leaf counts bottom-up; returns the subtree's."""
    if node.is_leaf:
        node.leaf_count = 1
        return 1
    assert node.children is not None
    node.leaf_count = sum(_recount(child) for child in node.children)
    return node.leaf_count
