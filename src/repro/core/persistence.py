"""Persistence: L-Trees to and from plain label lists.

Paper §4.2's key observation — *"the base-(f+1) digits of num(v) provide
an encoding of all the ancestors of v ... all the structural information
of the L-Tree is implicit in the labels themselves"* — means a
materialized L-Tree can be serialized as nothing but its (label, payload)
pairs and rebuilt exactly:

* :func:`snapshot` captures a tree — node-object :class:`LTree` *or*
  array-backed :class:`repro.core.compact.CompactLTree` — as a JSON-able
  dict, validated eagerly so a snapshot that would later choke
  ``json.dumps`` (or fail parameter validation on restore) raises
  :class:`ParameterError` naming the offending field at snapshot time;
* :func:`restore` / :func:`ltree_from_labels` rebuild the identical
  node-object structure by decoding each label's digit path — **not** by
  re-running bulk load, so labels (and therefore any external references
  to them) are preserved bit-for-bit;
* :func:`restore_compact` / :func:`compact_from_labels` do the same
  decode onto the struct-of-arrays engine, so the two engines
  **cross-restore**: a snapshot taken from either engine reopens on
  either engine with identical labels.

Snapshot format versions
------------------------

``version: 1`` (current) — the label-only JSON dict produced here:
``{version, f, s, label_base, height, violator_policy,
entries:[{num, payload, deleted}]}`` (``violator_policy`` is optional
and defaults to ``"highest"``, the paper's Algorithm 1).  It stores no
structure and no slot layout; restore reconstructs both from the
labels.  The *other* on-disk format in this library is the
struct-of-arrays byte image (``LTREEARR``, version 1) written by
:meth:`repro.core.compact.CompactLTree.to_bytes`, which additionally
preserves the exact slot arena and free-list; see that module and
:mod:`repro.storage.pages` for the page-file framing (``LTPAGES``,
version 1).  The two formats are interchangeable for labels: a tree saved
in either reopens from the other with a byte-identical label sequence.

Round-trip identity is property-tested in
``tests/core/test_persistence.py`` and
``tests/core/test_compact_persistence.py``.
"""

from __future__ import annotations

import json
from typing import Any, Sequence, Union

from repro.core.compact import NIL, CompactLTree
from repro.core.ltree import LTree
from repro.core.node import LTreeNode
from repro.core.params import LTreeParams
from repro.core.stats import NULL_COUNTERS, Counters
from repro.errors import ParameterError

#: snapshot format version (bump on layout changes)
FORMAT_VERSION = 1

AnyLTree = Union[LTree, CompactLTree]


def snapshot(tree: AnyLTree, include_payloads: bool = True
             ) -> dict[str, Any]:
    """Serialize ``tree`` (either engine) to a JSON-able dict.

    Every entry is validated *now*: a payload ``json.dumps`` would choke
    on later raises :class:`ParameterError` immediately, naming the
    offending entry.  Pass ``include_payloads=False`` (payloads stored as
    ``None``) when payloads live elsewhere — e.g. a
    :class:`repro.labeling.scheme.LabeledDocument` re-derives them from
    the document text on reopen.
    """
    entries = []
    if isinstance(tree, CompactLTree):
        for leaf in tree.iter_leaves():
            entries.append({
                "num": tree.num(leaf),
                "payload": tree.payload(leaf) if include_payloads
                else None,
                "deleted": tree.is_deleted(leaf),
            })
    else:
        for leaf in tree.iter_leaves():
            entries.append({
                "num": leaf.num,
                "payload": leaf.payload if include_payloads else None,
                "deleted": leaf.deleted,
            })
    data = {
        "version": FORMAT_VERSION,
        "f": tree.params.f,
        "s": tree.params.s,
        "label_base": tree.params.base,
        "height": tree.height,
        "violator_policy": tree.violator_policy,
        "entries": entries,
    }
    validate_snapshot(data)
    return data


def validate_snapshot(data: dict[str, Any],
                      check_payloads: bool = True) -> None:
    """Eagerly check a snapshot dict; raise ParameterError on the field.

    Checks what :func:`restore` would otherwise only trip over later —
    or what ``json.dumps`` would reject after the snapshot was already
    handed out: version, parameter consistency (including a
    ``label_base`` below the safe minimum its ``(f, s)`` derive), height,
    entry shape, and JSON-serializability of every payload.  The restore
    paths pass ``check_payloads=False``: a payload already parsed from
    (or about to stay in) memory needs no per-entry ``json.dumps``
    probe.
    """
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ParameterError(
            f"field 'version': unsupported snapshot version {version!r} "
            f"(supported: {FORMAT_VERSION})")
    for field in ("f", "s", "label_base", "height"):
        value = data.get(field)
        if not isinstance(value, int) or isinstance(value, bool):
            raise ParameterError(
                f"field {field!r}: expected an int, got {value!r}")
    try:
        params = LTreeParams(f=data["f"], s=data["s"],
                             label_base=data["label_base"])
    except ParameterError as exc:
        raise ParameterError(
            f"field 'label_base': {data['label_base']!r} is invalid for "
            f"f={data['f']}, s={data['s']} ({exc})") from None
    if data["height"] < 1:
        raise ParameterError(
            f"field 'height': must be >= 1, got {data['height']}")
    policy = data.get("violator_policy", "highest")
    if policy not in CompactLTree.POLICIES:
        raise ParameterError(
            f"field 'violator_policy': must be one of "
            f"{CompactLTree.POLICIES}, got {policy!r}")
    universe = params.label_space(data["height"])
    entries = data.get("entries")
    if not isinstance(entries, list):
        raise ParameterError(
            f"field 'entries': expected a list, got {type(entries)}")
    previous = -1
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ParameterError(
                f"field 'entries[{index}]': expected a dict, got "
                f"{type(entry)}")
        num = entry.get("num")
        if not isinstance(num, int) or isinstance(num, bool):
            raise ParameterError(
                f"field 'entries[{index}].num': expected an int, got "
                f"{num!r}")
        if num <= previous:
            raise ParameterError(
                f"field 'entries[{index}].num': labels must strictly "
                f"increase ({num} after {previous})")
        if num >= universe:
            raise ParameterError(
                f"field 'entries[{index}].num': label {num} outside the "
                f"universe of height {data['height']}")
        previous = num
        if not isinstance(entry.get("deleted"), bool):
            raise ParameterError(
                f"field 'entries[{index}].deleted': expected a bool, "
                f"got {entry.get('deleted')!r}")
    if check_payloads and entries:
        payloads = [entry.get("payload") for entry in entries]
        try:
            json.dumps(payloads)  # one bulk probe for the common case
        except (TypeError, ValueError):
            for index, payload in enumerate(payloads):
                try:
                    json.dumps(payload)
                except (TypeError, ValueError) as exc:
                    raise ParameterError(
                        f"field 'entries[{index}].payload': not "
                        f"JSON-serializable ({exc})") from None


def restore(data: dict[str, Any], stats: Counters = NULL_COUNTERS) -> LTree:
    """Rebuild the exact node-object tree captured by :func:`snapshot`."""
    validate_snapshot(data, check_payloads=False)
    params = LTreeParams(f=data["f"], s=data["s"],
                         label_base=data["label_base"])
    pairs = [(entry["num"], entry["payload"])
             for entry in data["entries"]]
    tree = ltree_from_labels(
        params, data["height"], pairs, stats=stats,
        violator_policy=data.get("violator_policy", "highest"))
    for entry, leaf in zip(data["entries"], tree.iter_leaves()):
        leaf.deleted = entry["deleted"]
    return tree


def restore_compact(data: dict[str, Any],
                    stats: Counters = NULL_COUNTERS) -> CompactLTree:
    """Rebuild a snapshot onto the array-backed engine.

    The cross-restore counterpart of :func:`restore`: the snapshot may
    come from either engine; the result carries byte-identical labels and
    the same structure (leaf counts included), so subsequent identical
    operations produce identical labels and costs on both engines.
    """
    validate_snapshot(data, check_payloads=False)
    params = LTreeParams(f=data["f"], s=data["s"],
                         label_base=data["label_base"])
    pairs = [(entry["num"], entry["payload"])
             for entry in data["entries"]]
    tree = compact_from_labels(
        params, data["height"], pairs, stats=stats,
        violator_policy=data.get("violator_policy", "highest"))
    for entry, leaf in zip(data["entries"], tree.iter_leaves()):
        if entry["deleted"]:
            tree._deleted[leaf] = 1
    return tree


def ltree_from_labels(params: LTreeParams, height: int,
                      pairs: Sequence[tuple[int, Any]],
                      stats: Counters = NULL_COUNTERS,
                      violator_policy: str = "highest") -> LTree:
    """Materialize the L-Tree whose leaves carry exactly ``pairs``.

    ``pairs`` must be sorted by label; each label is decoded into its
    digit path (child slot per level, most significant first) and the
    path's nodes are created on demand.  Because labels arrive sorted,
    construction is a single left-to-right sweep: at each level the next
    slot is either the current rightmost child (descend) or a brand-new
    sibling (extend).

    Raises :class:`ParameterError` on unsorted labels, labels outside
    the height's universe, or slot indices that no L-Tree could produce.
    """
    if height < 1:
        raise ParameterError(f"height must be >= 1, got {height}")
    tree = LTree(params, stats, violator_policy=violator_policy)
    root = LTreeNode(height=height)
    tree.root = root
    previous = -1
    for label, payload in pairs:
        if label <= previous:
            raise ParameterError(
                f"labels must be strictly increasing "
                f"({label} after {previous})")
        if label >= params.label_space(height):
            raise ParameterError(
                f"label {label} outside the universe of height {height}")
        previous = label
        _attach(tree, root, label, payload)
    _recount(root)
    return tree


def compact_from_labels(params: LTreeParams, height: int,
                        pairs: Sequence[tuple[int, Any]],
                        stats: Counters = NULL_COUNTERS,
                        violator_policy: str = "highest") -> CompactLTree:
    """:func:`ltree_from_labels` onto the struct-of-arrays engine.

    The same single left-to-right sweep over sorted labels, decoded via
    §4.2 digit paths, building parallel arrays instead of node objects.
    Rejects exactly the inputs the node-object decoder rejects.
    """
    if height < 1:
        raise ParameterError(f"height must be >= 1, got {height}")
    tree = CompactLTree(params, stats, violator_policy=violator_policy)
    tree._clear()
    root = tree._new_node(height)
    tree.root = root
    num = tree._num
    parent_arr = tree._parent
    first_child = tree._first_child
    next_sibling = tree._next_sibling
    #: per-node (last child slot id, last child index) — the sweep only
    #: ever touches the rightmost spine, so this stays height-sized hot
    tail: dict[int, tuple[int, int]] = {}
    previous = -1
    for label, payload in pairs:
        if label <= previous:
            raise ParameterError(
                f"labels must be strictly increasing "
                f"({label} after {previous})")
        if label >= params.label_space(height):
            raise ParameterError(
                f"label {label} outside the universe of height {height}")
        previous = label
        node = root
        offset = label
        created = False
        for level in range(height - 1, -1, -1):
            step = params.child_step(level)
            slot, offset = divmod(offset, step)
            if slot >= params.base:
                raise ParameterError(
                    f"label {label} uses child slot {slot} at height "
                    f"{level + 1}, beyond base {params.base}")
            last_child, last_index = tail.get(node, (NIL, -1))
            if slot < last_index:
                raise ParameterError(
                    f"label {label} revisits an earlier subtree (slot "
                    f"{slot} after {last_index}); labels are not from "
                    f"one L-Tree")
            if slot > last_index + 1:
                raise ParameterError(
                    f"label {label} skips child slots "
                    f"{last_index + 1}..{slot - 1} at height "
                    f"{level + 1}; labels are not from one L-Tree")
            if slot == last_index + 1:
                child = tree._new_node(level)
                parent_arr[child] = node
                num[child] = num[node] + slot * step
                if last_child == NIL:
                    first_child[node] = child
                else:
                    next_sibling[last_child] = child
                tail[node] = (child, slot)
                tree.stats.relabels += 1
                created = True
                node = child
            else:
                node = last_child
        if not created:
            raise ParameterError(f"duplicate label {label}")
        tree._payload[node] = payload
    _recount_compact(tree)
    return tree


def _attach(tree: LTree, root: LTreeNode, label: int, payload: Any) -> None:
    """Create the digit path of ``label`` under ``root``.

    Sorted labels sweep the tree left to right, so at every level the
    slot is either the current rightmost child (descend) or the next
    fresh slot (extend by one).  Anything else — a gap, a step backwards,
    a slot beyond the base — cannot come from one L-Tree and is rejected.
    """
    node = root
    offset = label
    created = False
    for level in range(root.height - 1, -1, -1):
        step = tree.params.child_step(level)
        slot, offset = divmod(offset, step)
        if slot >= tree.params.base:
            raise ParameterError(
                f"label {label} uses child slot {slot} at height "
                f"{level + 1}, beyond base {tree.params.base}")
        assert node.children is not None
        last = len(node.children) - 1
        if slot < last:
            raise ParameterError(
                f"label {label} revisits an earlier subtree (slot {slot} "
                f"after {last}); labels are not from one L-Tree")
        if slot > last + 1:
            raise ParameterError(
                f"label {label} skips child slots {last + 1}..{slot - 1} "
                f"at height {level + 1}; labels are not from one L-Tree")
        if slot == last + 1:
            child = LTreeNode(height=level)
            child.parent = node
            child.num = node.num + slot * step
            node.children.append(child)
            tree.stats.relabels += 1
            created = True
        node = node.children[slot]
    if not created:
        raise ParameterError(f"duplicate label {label}")
    node.payload = payload


def _recount(node: LTreeNode) -> int:
    """Recompute cached leaf counts bottom-up; returns the subtree's."""
    if node.is_leaf:
        node.leaf_count = 1
        return 1
    assert node.children is not None
    node.leaf_count = sum(_recount(child) for child in node.children)
    return node.leaf_count


def _recount_compact(tree: CompactLTree) -> None:
    """Recompute cached leaf counts bottom-up on the array engine."""
    height = tree._height
    first_child = tree._first_child
    next_sibling = tree._next_sibling
    leaf_count = tree._leaf_count
    order: list[int] = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        order.append(node)
        child = first_child[node]
        while child != NIL:
            stack.append(child)
            child = next_sibling[child]
    for node in reversed(order):  # descendants before ancestors
        if height[node] == 0:
            leaf_count[node] = 1
        else:
            total = 0
            child = first_child[node]
            while child != NIL:
                total += leaf_count[child]
                child = next_sibling[child]
            leaf_count[node] = total
