"""Nodes of the materialized L-Tree.

A single class models both internal nodes and leaves: leaves are the nodes
with ``height == 0``; they carry the document token (or any payload) and a
deletion mark (paper §2.3: deletions only mark leaves, they never relabel).
Internal nodes carry an ordered ``children`` list and the cached number of
leaves below them (``leaf_count``), which drives the split criterion.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional


class LTreeNode:
    """One node of an L-Tree.

    Attributes
    ----------
    parent:
        The parent node, or ``None`` for the root.
    height:
        Edges on the longest downward path; leaves have height 0 and all
        leaves sit at the same depth (paper Prop. 2(3)).
    num:
        The label assigned by the labeling scheme (paper §2.1).  The root is
        always 0; leaf ``num`` values are the public token labels.
    children:
        Ordered child list (internal nodes only; ``None`` for leaves).
    leaf_count:
        Number of leaves in this subtree (leaves count themselves as 1).
        Marked-deleted leaves still count — the paper never reclaims their
        label slots.
    payload:
        Arbitrary caller object attached to a leaf (e.g. an XML token).
    deleted:
        Deletion mark (leaves only).
    """

    __slots__ = ("parent", "height", "num", "children", "leaf_count",
                 "payload", "deleted")

    def __init__(self, height: int, payload: Any = None):
        self.parent: Optional["LTreeNode"] = None
        self.height = height
        self.num = 0
        self.children: Optional[list["LTreeNode"]] = (
            None if height == 0 else [])
        self.leaf_count = 1 if height == 0 else 0
        self.payload = payload
        self.deleted = False

    # ------------------------------------------------------------------
    # classification helpers
    # ------------------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        """True for token-carrying leaves (height 0)."""
        return self.height == 0

    @property
    def is_root(self) -> bool:
        """True when the node has no parent."""
        return self.parent is None

    def child_index(self) -> int:
        """Position of this node in its parent's child list.

        O(f) — fanout is a small constant bounded by the parameters.
        """
        if self.parent is None:
            raise ValueError("the root has no child index")
        assert self.parent.children is not None
        return self.parent.children.index(self)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def iter_leaves(self, include_deleted: bool = True
                    ) -> Iterator["LTreeNode"]:
        """Yield the leaves of this subtree in document order.

        Iterative DFS so arbitrarily tall trees do not hit the recursion
        limit.
        """
        stack = [self]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                if include_deleted or not node.deleted:
                    yield node
            else:
                assert node.children is not None
                stack.extend(reversed(node.children))

    def first_leaf(self) -> Optional["LTreeNode"]:
        """Leftmost leaf of this subtree (``None`` for an empty subtree)."""
        node = self
        while not node.is_leaf:
            assert node.children is not None
            if not node.children:
                return None
            node = node.children[0]
        return node

    def last_leaf(self) -> Optional["LTreeNode"]:
        """Rightmost leaf of this subtree (``None`` for an empty subtree)."""
        node = self
        while not node.is_leaf:
            assert node.children is not None
            if not node.children:
                return None
            node = node.children[-1]
        return node

    def next_leaf(self) -> Optional["LTreeNode"]:
        """The leaf immediately after this leaf in document order.

        O(height) walk: climb until a right sibling exists, then descend to
        its leftmost leaf.  Returns ``None`` at the end of the document.
        """
        node: LTreeNode = self
        while node.parent is not None:
            siblings = node.parent.children
            assert siblings is not None
            index = siblings.index(node)
            if index + 1 < len(siblings):
                return siblings[index + 1].first_leaf()
            node = node.parent
        return None

    def prev_leaf(self) -> Optional["LTreeNode"]:
        """The leaf immediately before this leaf in document order."""
        node: LTreeNode = self
        while node.parent is not None:
            siblings = node.parent.children
            assert siblings is not None
            index = siblings.index(node)
            if index > 0:
                return siblings[index - 1].last_leaf()
            node = node.parent
        return None

    def ancestors(self) -> Iterator["LTreeNode"]:
        """Yield parent, grandparent, ... up to and including the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def leaf_index(self) -> int:
        """Global 0-based position of this leaf among all leaves.

        Counts marked-deleted leaves (label slots are never reclaimed).
        O(height * fanout).
        """
        if not self.is_leaf:
            raise ValueError("leaf_index is defined for leaves only")
        index = 0
        node: LTreeNode = self
        while node.parent is not None:
            siblings = node.parent.children
            assert siblings is not None
            for sibling in siblings:
                if sibling is node:
                    break
                index += sibling.leaf_count
            node = node.parent
        return index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else f"h{self.height}"
        mark = "+del" if self.deleted else ""
        return f"<LTreeNode {kind} num={self.num}{mark}>"
