"""The materialized L-Tree (paper Sections 2.1–2.4 and 4.1).

An :class:`LTree` maintains an order-preserving integer labeling of a
sequence of payloads (XML tokens in the paper) under insertions and
deletions:

* :meth:`LTree.bulk_load` builds the initial complete ``b``-ary tree
  (paper §2.2);
* :meth:`LTree.insert_after` / :meth:`LTree.insert_before` run the paper's
  Algorithm 1 — increment ancestor leaf counts, split the *highest* ancestor
  that reached its leaf-count limit (or relabel right siblings when none
  did), growing the tree at the root when the root itself overflows;
* :meth:`LTree.insert_run_after` / :meth:`LTree.insert_run_before` implement
  the batch insertion of §4.1 — one structural multi-leaf insert followed by
  a single rebalance pass, so the per-insert ``h`` and ``f`` cost terms are
  shared across the run;
* :meth:`LTree.mark_deleted` marks a leaf deleted without any relabeling
  (§2.3).

All maintenance work is accounted in a :class:`repro.core.stats.Counters`
in the units of the paper's cost model (nodes touched).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence

from repro.core.node import LTreeNode
from repro.core.params import LTreeParams
from repro.core.stats import NULL_COUNTERS, Counters
from repro.errors import InvariantViolation, LabelOverflow


class LTree:
    """Dynamic order-preserving labeling structure.

    Parameters
    ----------
    params:
        The validated ``(f, s, label_base)`` parameter set.
    stats:
        Counter sink for maintenance cost accounting.  Defaults to a shared
        do-nothing instance.

    Examples
    --------
    >>> from repro.core.params import FIGURE2_PARAMS
    >>> tree = LTree(FIGURE2_PARAMS)
    >>> leaves = tree.bulk_load("A B C /C /B D /D /A".split())
    >>> [leaf.num for leaf in leaves]        # paper Figure 2(a)
    [0, 1, 3, 4, 9, 10, 12, 13]
    """

    #: recognised violator-selection policies (see ``violator_policy``)
    POLICIES = ("highest", "lowest")

    def __init__(self, params: LTreeParams, stats: Counters = NULL_COUNTERS,
                 violator_policy: str = "highest"):
        if violator_policy not in self.POLICIES:
            raise ValueError(
                f"violator_policy must be one of {self.POLICIES}, got "
                f"{violator_policy!r}")
        self.params = params
        self.stats = stats
        #: which over-limit ancestor a single insert splits.  The paper's
        #: Algorithm 1 picks the HIGHEST; "lowest" exists as an ablation
        #: (experiment A1) demonstrating why: splitting low leaves higher
        #: violators in place, so density control degrades.
        self.violator_policy = violator_policy
        self.root = LTreeNode(height=1)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Height of the tree (leaves are at height 0)."""
        return self.root.height

    @property
    def n_leaves(self) -> int:
        """Number of leaves, including marked-deleted ones."""
        return self.root.leaf_count

    @property
    def label_space(self) -> int:
        """Exclusive upper bound of the current label universe."""
        return self.params.label_space(self.root.height)

    def first_leaf(self) -> Optional[LTreeNode]:
        """Leftmost leaf, or ``None`` when the tree is empty."""
        return self.root.first_leaf()

    def last_leaf(self) -> Optional[LTreeNode]:
        """Rightmost leaf, or ``None`` when the tree is empty."""
        return self.root.last_leaf()

    def iter_leaves(self, include_deleted: bool = True
                    ) -> Iterator[LTreeNode]:
        """All leaves in document order."""
        return self.root.iter_leaves(include_deleted=include_deleted)

    def labels(self, include_deleted: bool = True) -> list[int]:
        """The current label sequence (strictly increasing)."""
        return [leaf.num for leaf in self.iter_leaves(include_deleted)]

    def leaf_at(self, index: int) -> LTreeNode:
        """The ``index``-th leaf (0-based, counting deleted ones): O(h·f)."""
        if index < 0 or index >= self.root.leaf_count:
            raise IndexError(
                f"leaf index {index} out of range 0..{self.root.leaf_count}")
        node = self.root
        while not node.is_leaf:
            assert node.children is not None
            for child in node.children:
                self.stats.node_accesses += 1
                if index < child.leaf_count:
                    node = child
                    break
                index -= child.leaf_count
        return node

    def max_label(self) -> int:
        """Largest label currently assigned (-1 for an empty tree)."""
        last = self.last_leaf()
        return -1 if last is None else last.num

    def find_leaf(self, num: int) -> Optional[LTreeNode]:
        """The leaf labeled ``num``, or ``None``: O(height) descent.

        Labels spell their own path (paper §4.2): at a node numbered
        ``N`` with children ``N + i * B**h``, the target's child slot is
        ``(num - N) // B**h``.  Children always occupy consecutive slots,
        so one division per level suffices.
        """
        if num < 0:
            return None
        node = self.root
        if num < node.num:
            return None
        while not node.is_leaf:
            assert node.children is not None
            self.stats.node_accesses += 1
            if not node.children:
                return None
            step = self.params.child_step(node.height - 1)
            index = (num - node.num) // step
            if not 0 <= index < len(node.children):
                return None
            node = node.children[index]
        return node if node.num == num else None

    # ------------------------------------------------------------------
    # maintenance beyond the paper: compaction and re-parameterization
    # ------------------------------------------------------------------
    def compact(self, params: Optional[LTreeParams] = None
                ) -> dict[LTreeNode, LTreeNode]:
        """Rebuild the tree without tombstoned leaves (vacuum).

        The paper's deletions only mark (§2.3), so long-lived documents
        accumulate dead label slots that keep inflating density and label
        width.  ``compact`` bulk-reloads the live payloads — optionally
        under new ``params``, the §3.2 re-tuning scenario when the
        document size has drifted from the planning estimate — and
        returns an old-leaf -> new-leaf mapping so callers can migrate
        their handles.  Cost: one full relabeling, O(n), amortizable
        against the deletions that made it worthwhile.
        """
        live = list(self.iter_leaves(include_deleted=False))
        if params is not None:
            self.params = params
        new_leaves = self.bulk_load([leaf.payload for leaf in live])
        return dict(zip(live, new_leaves))

    def tombstone_count(self) -> int:
        """Number of marked-deleted leaves still occupying label slots."""
        return sum(1 for leaf in self.iter_leaves() if leaf.deleted)

    # ------------------------------------------------------------------
    # bulk loading (paper §2.2)
    # ------------------------------------------------------------------
    def bulk_load(self, payloads: Iterable[Any]) -> list[LTreeNode]:
        """Replace the tree contents with a fresh left-complete tree.

        Builds a complete ``b``-ary tree of the smallest height whose leaf
        capacity covers ``len(payloads)`` — "to maximize the capability to
        accommodate further insertions" (paper §2.2) — and labels it.

        Returns the created leaves in order.
        """
        leaves = [LTreeNode(height=0, payload=payload)
                  for payload in payloads]
        height = self.params.height_for(len(leaves))
        if leaves:
            self.root = self._build_left_complete(leaves, height)
        else:
            self.root = LTreeNode(height=1)
        self._assign_labels(self.root, 0)
        return leaves

    def _build_left_complete(self, leaves: Sequence[LTreeNode],
                             height: int) -> LTreeNode:
        """Pack ``leaves`` into a left-complete ``b``-ary tree of ``height``.

        Nodes are filled left to right; only the rightmost spine may be
        under-full.  ``len(leaves)`` must be in ``(0, b**height]``.
        """
        arity = self.params.arity
        if not 0 < len(leaves) <= arity ** height:
            raise ValueError(
                f"{len(leaves)} leaves do not fit height {height} "
                f"(capacity {arity ** height})")
        level: list[LTreeNode] = list(leaves)
        for level_height in range(1, height + 1):
            next_level: list[LTreeNode] = []
            for start in range(0, len(level), arity):
                group = level[start:start + arity]
                parent = LTreeNode(height=level_height)
                assert parent.children is not None
                parent.children.extend(group)
                parent.leaf_count = 0
                for child in group:
                    child.parent = parent
                    parent.leaf_count += child.leaf_count
                next_level.append(parent)
            level = next_level
        root = level[0]
        root.parent = None
        return root

    def _build_even(self, leaves: Sequence[LTreeNode],
                    height: int) -> LTreeNode:
        """Pack ``leaves`` into a ``b``-ary tree with *even* occupancy.

        Unlike :meth:`_build_left_complete` (which under-fills only the
        rightmost spine), leaves are spread evenly over
        ``ceil(n / b**(height-1))`` children, so every internal node holds
        at least half its capacity share.  Used by the batch-insert
        rebalancing paths, where the occupancy bound matters for the §4.1
        amortization.
        """
        arity = self.params.arity
        if not 0 < len(leaves) <= arity ** height:
            raise ValueError(
                f"{len(leaves)} leaves do not fit height {height} "
                f"(capacity {arity ** height})")
        if height == 0:
            return leaves[0]
        capacity = arity ** (height - 1)
        pieces = min(arity, -(-len(leaves) // capacity))
        node = LTreeNode(height=height)
        assert node.children is not None
        start = 0
        for piece in range(pieces):
            size = (len(leaves) - start) // (pieces - piece)
            child = self._build_even(leaves[start:start + size],
                                     height - 1)
            child.parent = node
            node.children.append(child)
            node.leaf_count += child.leaf_count
            start += size
        return node

    # ------------------------------------------------------------------
    # single insertion (paper Algorithm 1)
    # ------------------------------------------------------------------
    def insert_after(self, anchor: LTreeNode, payload: Any) -> LTreeNode:
        """Insert a new leaf right after ``anchor`` and label it."""
        return self._insert_adjacent(anchor, payload, before=False)

    def insert_before(self, anchor: LTreeNode, payload: Any) -> LTreeNode:
        """Insert a new leaf right before ``anchor`` and label it."""
        return self._insert_adjacent(anchor, payload, before=True)

    def append(self, payload: Any) -> LTreeNode:
        """Insert a new leaf at the end of the sequence."""
        last = self.last_leaf()
        if last is None:
            return self._insert_first(payload)
        return self.insert_after(last, payload)

    def prepend(self, payload: Any) -> LTreeNode:
        """Insert a new leaf at the beginning of the sequence."""
        first = self.first_leaf()
        if first is None:
            return self._insert_first(payload)
        return self.insert_before(first, payload)

    def _insert_first(self, payload: Any) -> LTreeNode:
        """Insert into an empty tree."""
        if self.root.leaf_count != 0:
            raise ValueError("_insert_first on a non-empty tree")
        if self.root.height != 1:
            self.root = LTreeNode(height=1)
        leaf = LTreeNode(height=0, payload=payload)
        parent = self.root
        assert parent.children is not None
        parent.children.append(leaf)
        leaf.parent = parent
        node: Optional[LTreeNode] = parent
        while node is not None:
            node.leaf_count += 1
            self.stats.count_updates += 1
            node = node.parent
        self._set_num(leaf, parent.num)
        self.stats.inserts += 1
        return leaf

    def _insert_adjacent(self, anchor: LTreeNode, payload: Any,
                         before: bool) -> LTreeNode:
        """Algorithm 1: structural insert, count update, split or relabel."""
        if not anchor.is_leaf:
            raise ValueError("insertion anchor must be a leaf")
        parent = anchor.parent
        if parent is None:
            raise ValueError("anchor leaf is detached from any tree")
        assert parent.children is not None
        index = parent.children.index(anchor)
        position = index if before else index + 1
        leaf = LTreeNode(height=0, payload=payload)
        parent.children.insert(position, leaf)
        leaf.parent = parent

        # Walk up: maintain leaf counts and find the violating ancestor.
        # The paper's Algorithm 1 takes the HIGHEST one ("the highest
        # ancestor t satisfying l(t) = l_max(t)"); the "lowest" policy is
        # an ablation (experiment A1).
        violator: Optional[LTreeNode] = None
        node: Optional[LTreeNode] = parent
        while node is not None:
            node.leaf_count += 1
            self.stats.count_updates += 1
            if node.leaf_count >= self.params.l_max(node.height):
                if self.violator_policy == "highest" or violator is None:
                    violator = node
            node = node.parent

        if violator is None:
            # Relabel the new leaf and its right siblings (cost <= f).
            self._relabel_children_from(parent, position)
        elif violator is self.root:
            if self.root.leaf_count == self.params.l_max(self.root.height):
                self._split_root()
            else:
                # Only reachable under the "lowest" ablation policy, where
                # the root may have drifted past its exact limit.
                self._rebuild_root()
        elif violator.leaf_count == self.params.l_max(violator.height):
            self._split(violator)
        else:
            self._split_uneven(violator)
        self.stats.inserts += 1
        return leaf

    # ------------------------------------------------------------------
    # splitting and relabeling
    # ------------------------------------------------------------------
    def _split(self, node: LTreeNode) -> None:
        """Replace ``node`` with ``s`` complete ``b``-ary subtrees.

        ``node.leaf_count`` equals ``l_max`` exactly when reached through
        single inserts, so the leaf sequence divides into ``s`` complete
        ``b``-ary trees of the same height (paper §2.3).  Afterwards the new
        subtrees and ``node``'s right siblings are relabeled.
        """
        parent = node.parent
        assert parent is not None and parent.children is not None
        expected = self.params.l_max(node.height)
        if node.leaf_count != expected:
            raise InvariantViolation(
                f"split of node with l={node.leaf_count}, expected "
                f"{expected}; use insert_run_* for batch updates")
        leaves = list(node.iter_leaves())
        chunk = self.params.l_min(node.height)  # b**h leaves per subtree
        subtrees = [
            self._build_left_complete(leaves[start:start + chunk],
                                      node.height)
            for start in range(0, len(leaves), chunk)
        ]
        index = parent.children.index(node)
        parent.children[index:index + 1] = subtrees
        for subtree in subtrees:
            subtree.parent = parent
        node.parent = None
        self.stats.splits += 1
        # Pure single-insert histories keep the parent's fanout below f
        # (every child then holds >= b^h leaves), but splits landing next
        # to thin batch/bulk-load children can push it over — regroup
        # before any label runs out of child slots.
        if len(parent.children) > min(self.params.f, self.params.base):
            top = self._fix_fanout_upward(parent)
            if top.parent is None:
                self._assign_labels(top, 0)
            else:
                assert top.parent.children is not None
                self._relabel_children_from(
                    top.parent, top.parent.children.index(top))
        else:
            self._relabel_children_from(parent, index)

    def _split_root(self) -> None:
        """Grow the tree: new root adopting ``s`` complete subtrees.

        Paper Algorithm 1, lines 18–20: when the root itself reaches its
        leaf limit, its ``s * b**H`` leaves become ``s`` complete ``b``-ary
        trees of height ``H`` under a brand-new root of height ``H + 1``,
        and everything is relabeled from 0.
        """
        old_root = self.root
        leaves = list(old_root.iter_leaves())
        chunk = self.params.l_min(old_root.height)
        subtrees = [
            self._build_left_complete(leaves[start:start + chunk],
                                      old_root.height)
            for start in range(0, len(leaves), chunk)
        ]
        new_root = LTreeNode(height=old_root.height + 1)
        assert new_root.children is not None
        for subtree in subtrees:
            subtree.parent = new_root
            new_root.children.append(subtree)
            new_root.leaf_count += subtree.leaf_count
        self.root = new_root
        self.stats.splits += 1
        self._assign_labels(new_root, 0)

    def _relabel_children_from(self, parent: LTreeNode, start: int) -> None:
        """Relabel children ``start..`` of ``parent`` and their subtrees.

        This is the paper's ``Relabel(parent, num(parent), i)``.
        """
        assert parent.children is not None
        step = self.params.child_step(parent.height - 1)
        if len(parent.children) > self.params.base:
            raise LabelOverflow(
                f"node has {len(parent.children)} children but the label "
                f"base addresses only {self.params.base} slots")
        for index in range(start, len(parent.children)):
            child = parent.children[index]
            self._assign_labels(child, parent.num + index * step)

    def _assign_labels(self, node: LTreeNode, num: int) -> None:
        """Set ``num`` on ``node`` and recursively on its whole subtree."""
        stack = [(node, num)]
        while stack:
            current, value = stack.pop()
            self._set_num(current, value)
            if current.is_leaf:
                continue
            assert current.children is not None
            if len(current.children) > self.params.base:
                raise LabelOverflow(
                    f"node has {len(current.children)} children but the "
                    f"label base addresses only {self.params.base} slots")
            step = self.params.child_step(current.height - 1)
            for index, child in enumerate(current.children):
                stack.append((child, value + index * step))

    def _set_num(self, node: LTreeNode, num: int) -> None:
        node.num = num
        self.stats.relabels += 1

    # ------------------------------------------------------------------
    # batch insertion (paper §4.1)
    # ------------------------------------------------------------------
    def insert_run_after(self, anchor: LTreeNode,
                         payloads: Sequence[Any]) -> list[LTreeNode]:
        """Insert a run of leaves right after ``anchor`` in one operation.

        The ``h`` (count update) and ``f`` (sibling relabel) cost terms are
        paid once for the whole run instead of once per leaf, matching the
        batch analysis of paper §4.1.
        """
        return self._insert_run(anchor, payloads, before=False)

    def insert_run_before(self, anchor: LTreeNode,
                          payloads: Sequence[Any]) -> list[LTreeNode]:
        """Insert a run of leaves right before ``anchor``; see above."""
        return self._insert_run(anchor, payloads, before=True)

    def _insert_run(self, anchor: LTreeNode, payloads: Sequence[Any],
                    before: bool) -> list[LTreeNode]:
        if not payloads:
            return []
        if not anchor.is_leaf:
            raise ValueError("insertion anchor must be a leaf")
        parent = anchor.parent
        if parent is None:
            raise ValueError("anchor leaf is detached from any tree")
        assert parent.children is not None
        index = parent.children.index(anchor)
        position = index if before else index + 1
        leaves = [LTreeNode(height=0, payload=payload)
                  for payload in payloads]
        parent.children[position:position] = leaves
        for leaf in leaves:
            leaf.parent = parent

        count = len(leaves)
        violator: Optional[LTreeNode] = None
        node: Optional[LTreeNode] = parent
        while node is not None:
            node.leaf_count += count
            self.stats.count_updates += 1
            if node.leaf_count >= self.params.l_max(node.height):
                violator = node
            node = node.parent

        if violator is None:
            self._relabel_children_from(parent, position)
        elif violator is self.root:
            self._rebuild_root()
        else:
            self._split_uneven(violator)
        self.stats.inserts += count
        return leaves

    def _split_uneven(self, node: LTreeNode) -> None:
        """Generalized split for leaf counts above ``l_max``.

        Batch inserts can push ``l(t)`` past the exact threshold, so the
        node is rebuilt into ``ceil(l / b**h)`` left-complete subtrees with
        evenly distributed leaves (each holds more than ``b**h / 2``).  The
        parent's fanout may overflow ``f``; :meth:`_fix_fanout_upward`
        restores it.
        """
        parent = node.parent
        assert parent is not None and parent.children is not None
        leaves = list(node.iter_leaves())
        capacity = self.params.l_min(node.height)
        pieces = -(-len(leaves) // capacity)  # ceil division
        subtrees = []
        start = 0
        for piece in range(pieces):
            size = (len(leaves) - start) // (pieces - piece)
            subtrees.append(self._build_even(
                leaves[start:start + size], node.height))
            start += size
        index = parent.children.index(node)
        parent.children[index:index + 1] = subtrees
        for subtree in subtrees:
            subtree.parent = parent
        node.parent = None
        self.stats.splits += 1
        top = self._fix_fanout_upward(parent)
        if top.parent is None:
            self._assign_labels(top, 0)
        else:
            assert top.parent.children is not None
            self._relabel_children_from(top.parent,
                                        top.parent.children.index(top))

    def _fix_fanout_upward(self, node: LTreeNode) -> LTreeNode:
        """Regroup children wherever fanout exceeds the addressable limit.

        After an uneven split the parent may hold more than
        ``min(f, base)`` children.  Such a node is replaced (in *its*
        parent) by ``ceil(c / b)`` same-height nodes over consecutive child
        slices — the fanout analogue of a split.  Leaf depths stay uniform
        because each replacement node sits exactly where the original did.
        The fix propagates upward; at the root the tree grows one level.
        Returns the highest structurally modified node, where relabeling
        must start.
        """
        arity = self.params.arity
        limit = min(self.params.f, self.params.base)
        highest = node
        current: Optional[LTreeNode] = node
        while current is not None:
            assert current.children is not None
            if len(current.children) <= limit:
                current = current.parent
                continue
            children = current.children
            groups = -(-len(children) // arity)  # ceil division
            new_nodes: list[LTreeNode] = []
            start = 0
            for group in range(groups):
                size = (len(children) - start) // (groups - group)
                packed = LTreeNode(height=current.height)
                assert packed.children is not None
                for child in children[start:start + size]:
                    child.parent = packed
                    packed.children.append(child)
                    packed.leaf_count += child.leaf_count
                new_nodes.append(packed)
                start += size
            if current.parent is None:
                new_root = LTreeNode(height=current.height + 1)
                assert new_root.children is not None
                for packed in new_nodes:
                    packed.parent = new_root
                    new_root.children.append(packed)
                    new_root.leaf_count += packed.leaf_count
                self.root = new_root
                return new_root
            parent = current.parent
            assert parent.children is not None
            position = parent.children.index(current)
            for packed in new_nodes:
                packed.parent = parent
            parent.children[position:position + 1] = new_nodes
            current.parent = None
            highest = parent
            current = parent
        return highest

    def _rebuild_root(self) -> None:
        """Batch analogue of the root split: rebuild at bulk-load height."""
        leaves = list(self.root.iter_leaves())
        height = self.params.height_for(len(leaves))
        if self.params.l_max(height) <= len(leaves):
            height += 1
        self.root = self._build_even(leaves, height)
        self.stats.splits += 1
        self._assign_labels(self.root, 0)

    # ------------------------------------------------------------------
    # deletion (paper §2.3)
    # ------------------------------------------------------------------
    def mark_deleted(self, leaf: LTreeNode) -> None:
        """Mark ``leaf`` deleted; no relabeling, no structural change."""
        if not leaf.is_leaf:
            raise ValueError("only leaves can be marked deleted")
        leaf.deleted = True
        self.stats.deletes += 1

    # ------------------------------------------------------------------
    # validation (used by tests; never on production paths)
    # ------------------------------------------------------------------
    def validate(self, check_occupancy: bool = False) -> None:
        """Check every structural invariant; raise InvariantViolation.

        Verified invariants (paper Prop. 2 and the labeling definition):

        * parent/child links are mutual and heights decrease by exactly 1;
        * all leaves are at depth ``root.height``;
        * cached ``leaf_count`` values are correct;
        * ``l(t) < l_max(t)`` for every internal node at rest;
        * fanout ``c(t) <= f`` and every child slot index fits the base;
        * ``num`` follows ``num(parent) + i * base**h`` with ``num(root)=0``;
        * leaf labels strictly increase in document order (Prop. 1).

        ``check_occupancy=True`` additionally enforces the lower bound
        ``l(t) >= b**h / 4``.  This is guaranteed for **single-insert
        histories** (splits produce exactly-complete subtrees); batch
        insertions may compose fanout regroupings with under-full
        bulk-load spine nodes and land below it, so batch-mode tests
        check only the upper density bound — the one the paper's §3.1
        cost and bits analysis actually relies on.  Nodes on the
        rightmost spine are always exempt: bulk-loading a
        non-power-of-``b`` leaf count necessarily under-fills them, which
        the paper's "complete tree" description glosses over.
        """
        if self.root.num != 0:
            raise InvariantViolation(f"root num is {self.root.num}, not 0")
        if self.root.parent is not None:
            raise InvariantViolation("root has a parent")
        self._validate_node(self.root, check_occupancy,
                            on_right_spine=True)
        labels = self.labels()
        for left, right in zip(labels, labels[1:]):
            if left >= right:
                raise InvariantViolation(
                    f"labels not strictly increasing: {left} >= {right}")

    def _validate_node(self, node: LTreeNode, check_occupancy: bool,
                       on_right_spine: bool = False) -> None:
        if node.is_leaf:
            if node.leaf_count != 1:
                raise InvariantViolation("leaf with leaf_count != 1")
            return
        assert node.children is not None
        if node is not self.root and not node.children:
            raise InvariantViolation("non-root internal node is empty")
        if len(node.children) > self.params.f:
            raise InvariantViolation(
                f"fanout {len(node.children)} exceeds f={self.params.f} "
                f"at height {node.height}")
        if len(node.children) > self.params.base:
            raise InvariantViolation("fanout exceeds label base")
        total = 0
        step = self.params.child_step(node.height - 1)
        for index, child in enumerate(node.children):
            if child.parent is not node:
                raise InvariantViolation("broken parent link")
            if child.height != node.height - 1:
                raise InvariantViolation(
                    f"child height {child.height} under height "
                    f"{node.height}")
            expected = node.num + index * step
            if child.num != expected:
                raise InvariantViolation(
                    f"child num {child.num}, expected {expected}")
            total += child.leaf_count
            child_on_spine = (on_right_spine and
                              index == len(node.children) - 1)
            self._validate_node(child, check_occupancy, child_on_spine)
        if total != node.leaf_count:
            raise InvariantViolation(
                f"cached leaf_count {node.leaf_count} != actual {total}")
        limit = self.params.l_max(node.height)
        if node.leaf_count >= limit and self.violator_policy == "highest":
            # The "lowest" ablation policy deliberately leaves higher
            # violators unsplit — that degradation is what A1 measures.
            raise InvariantViolation(
                f"leaf count {node.leaf_count} at height {node.height} "
                f"reached the split limit {limit} at rest")
        if check_occupancy and node is not self.root and \
                not on_right_spine:
            lower = self.params.l_min(node.height) / 4
            if node.leaf_count < lower:
                raise InvariantViolation(
                    f"leaf count {node.leaf_count} at height {node.height} "
                    f"below the relaxed occupancy bound {lower}")
