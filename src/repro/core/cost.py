"""Closed-form cost model of the L-Tree (paper Section 3.1 and 4.1).

The paper derives two functions of the parameters ``(f, s)`` and the
document size ``n``:

* the amortized maintenance cost of a single insertion, in nodes touched::

      cost(f, s, n) <= (1 + 2f/(s-1)) * log(n)/log(f/s) + f

  (``h = log n / log b`` ancestor count updates, ``f`` right-sibling
  relabels, and a ``2f/(s-1)`` split charge per ancestor level — a split of
  a height-``h0`` node relabels at most ``2 s b^(h0+1)`` nodes, amortized
  over the ``(s-1) b^h0`` insertions that filled it);

* the number of bits needed per label::

      bits(f, s, n) = log2(base) * ceil(log(n)/log(f/s)),   base = f + 1

Section 4.1 refines the cost for batch insertions of ``k`` leaves::

      cost(f, s, n, k) <= (h + f)/k + (2f/(s-1)) * (h - h0 + 1)

with ``h0 = floor(log_b(k/(s-1)))`` the height whose split one batch of
``k = (s-1) b^h0`` insertions pays for outright.

These are *upper bounds*; benchmarks in ``benchmarks/`` verify that measured
costs stay below them and follow the same growth shape (EXPERIMENTS.md E1,
E2, E6).
"""

from __future__ import annotations

import dataclasses
import math

from repro.core.params import LTreeParams
from repro.errors import ParameterError


def _check_fs(f: float, s: float) -> None:
    if s <= 1.0:
        raise ParameterError(f"s must exceed 1, got {s}")
    if f / s <= 1.0:
        raise ParameterError(f"f/s must exceed 1, got {f}/{s}")


def tree_height(f: float, s: float, n: float) -> float:
    """Continuous tree height ``log(n) / log(f/s)`` (>= 1)."""
    _check_fs(f, s)
    if n <= 1:
        return 1.0
    return max(1.0, math.log(n) / math.log(f / s))


def amortized_insert_cost(f: float, s: float, n: float) -> float:
    """Paper §3.1 amortized bound ``(1 + 2f/(s-1)) * h + f``.

    Continuous in (f, s) so the tuning module can optimize it.
    """
    _check_fs(f, s)
    height = tree_height(f, s, n)
    return (1.0 + 2.0 * f / (s - 1.0)) * height + f


def label_bits(f: float, s: float, n: float,
               base: float | None = None) -> float:
    """Paper §3.1 label size ``log2(base) * ceil(log_b n)`` in bits.

    ``base`` defaults to the paper's ``f + 1``.  Continuous relaxation:
    ``ceil`` is dropped so the function is differentiable for tuning; the
    exact integer variant is :func:`label_bits_exact`.
    """
    _check_fs(f, s)
    if base is None:
        base = f + 1.0
    return math.log2(base) * tree_height(f, s, n)


def label_bits_exact(params: LTreeParams, n: int) -> int:
    """Exact bit count for integer parameters (uses the real heights)."""
    return params.max_label_bits(n)


def batch_insert_cost(f: float, s: float, n: float, k: float) -> float:
    """Paper §4.1 amortized per-leaf cost of a batch of ``k`` insertions.

    ``cost = (h + f)/k + (2f/(s-1)) * (h - h0 + 1)`` with
    ``h0 = log_b(k/(s-1))`` clamped to ``[0, h]``.  For ``k = 1`` this
    reduces to (slightly above) the single-insert bound.
    """
    _check_fs(f, s)
    if k < 1:
        raise ParameterError(f"batch size must be >= 1, got {k}")
    height = tree_height(f, s, n)
    arity = f / s
    h0 = 0.0
    if k > (s - 1.0):
        h0 = math.log(k / (s - 1.0)) / math.log(arity)
    h0 = min(h0, height)
    split_charge = (2.0 * f / (s - 1.0)) * (height - h0 + 1.0)
    return (height + f) / k + split_charge


def query_comparison_cost(bits: float, word_bits: int = 64) -> float:
    """Cost of one label comparison (paper §3.2, "Minimize Overall Cost").

    Hardware comparison (cost 1) while the label fits a machine word;
    software multi-word comparison proportional to ``bits/word`` above.
    """
    if bits <= word_bits:
        return 1.0
    return bits / word_bits


def overall_cost(f: float, s: float, n: float, update_fraction: float,
                 comparisons_per_query: float = 1.0,
                 word_bits: int = 64) -> float:
    """Weighted workload cost: §3.2's query+update objective.

    ``update_fraction`` is the share of operations that are insertions; the
    remainder are queries costing ``comparisons_per_query`` label
    comparisons each.
    """
    if not 0.0 <= update_fraction <= 1.0:
        raise ParameterError(
            f"update_fraction must be within [0, 1], got {update_fraction}")
    bits = label_bits(f, s, n)
    query = (1.0 - update_fraction) * comparisons_per_query * \
        query_comparison_cost(bits, word_bits)
    update = update_fraction * amortized_insert_cost(f, s, n)
    return query + update


@dataclasses.dataclass(frozen=True)
class CostBreakdown:
    """Per-component amortized cost prediction for a parameter set."""

    params: LTreeParams
    n: int
    height: float
    count_update_term: float
    sibling_relabel_term: float
    split_charge_term: float

    @property
    def total(self) -> float:
        return (self.count_update_term + self.sibling_relabel_term +
                self.split_charge_term)


def cost_breakdown(params: LTreeParams, n: int) -> CostBreakdown:
    """Split the §3.1 bound into its three charges for reporting."""
    f, s = float(params.f), float(params.s)
    height = tree_height(f, s, n)
    return CostBreakdown(
        params=params,
        n=n,
        height=height,
        count_update_term=height,
        sibling_relabel_term=f,
        split_charge_term=(2.0 * f / (s - 1.0)) * height,
    )
