"""Batch label arithmetic for the compact engine (numpy-gated).

The struct-of-arrays layout of :class:`repro.core.compact.CompactLTree`
makes its hot paths — bulk load, subtree relabeling, the §4.1 run-insert
rebuild — pure arithmetic over flat integer columns: the leaf labels of a
complete ``b``-ary tree are ``spread_digits(i)`` for consecutive ``i``,
every internal level is a stride-``b`` slice of the level below, and the
parent / first-child / next-sibling links of a left-complete tree follow
closed-form index formulas.  This module computes those columns in bulk
instead of one slot at a time.

Three interchangeable backends implement the arithmetic:

``numpy``
    int64 ndarray passes — the fast path, selected automatically when
    numpy is importable.  Falls back to the pure-Python path for any
    single call whose labels could overflow int64 (deep trees with a
    large ``label_base``), so results are always exact.
``array``
    pure-Python batch passes: C-level list repetition, ``range`` strides
    and slice assignment over the same flat integer columns the engine
    serializes as ``array('q')``.  Always available; this is the
    guaranteed-correct fallback when numpy is absent.
``scalar``
    the per-slot loops of the original (PR 1) engine, kept as the
    differential baseline the vectorized paths are benchmarked and
    parity-tested against.

The backend is selected **once at import** from the environment variable
``REPRO_VECTOR_BACKEND`` (``numpy`` | ``array`` | ``scalar`` | ``auto``,
default ``auto`` = numpy when available, else array).  Tests and
benchmarks override it at runtime with :func:`set_backend` or the
:func:`use_backend` context manager; the engine re-reads the selection on
every bulk operation, so an override takes effect immediately.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, NamedTuple

from repro.errors import ParameterError

try:  # gated dependency: everything here must work without numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

#: True when the numpy backend can be selected in this interpreter.
HAS_NUMPY = _np is not None

#: recognised backend names (see module docstring)
BACKENDS = ("numpy", "array", "scalar")

#: environment variable read once at import to pick the default backend
BACKEND_ENV = "REPRO_VECTOR_BACKEND"

#: sentinel slot id meaning "no node" (mirrors repro.core.compact.NIL)
NIL = -1

#: largest label magnitude the numpy backend accepts; anything bigger is
#: routed to the exact pure-Python path (int64 would overflow silently)
_INT64_SAFE = 2 ** 62


def _resolve(name: str) -> str:
    """Validate a backend name, resolving ``auto``."""
    name = name.strip().lower()
    if name in ("auto", ""):
        return "numpy" if HAS_NUMPY else "array"
    if name not in BACKENDS:
        raise ParameterError(
            f"unknown vector backend {name!r}; known: "
            f"{', '.join(BACKENDS)} (or 'auto')")
    if name == "numpy" and not HAS_NUMPY:
        raise ParameterError(
            "vector backend 'numpy' requested but numpy is not "
            "importable; install numpy or use 'array'")
    return name


_active = _resolve(os.environ.get(BACKEND_ENV, "auto"))


def get_backend() -> str:
    """The currently active backend name."""
    return _active


def set_backend(name: str) -> str:
    """Switch the active backend; returns the previous one.

    Accepts ``auto`` (re-runs the import-time selection).  Raises
    :class:`ParameterError` for unknown names or ``numpy`` without numpy.
    """
    global _active
    previous = _active
    _active = _resolve(name)
    return previous


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Context manager pinning the backend for a test or benchmark."""
    previous = set_backend(name)
    try:
        yield _active
    finally:
        set_backend(previous)


class BulkColumns(NamedTuple):
    """The complete struct-of-arrays image of a left-complete tree.

    Slot layout matches the scalar builder exactly: leaves occupy slots
    ``0..n-1`` in list order, internal nodes follow level by level
    bottom-up, the root is the last slot.  Feeding these columns straight
    into a :class:`~repro.core.compact.CompactLTree` therefore produces a
    byte-image identical to the per-slot build.
    """

    num: list[int]
    heights: list[int]
    leaf_counts: list[int]
    parents: list[int]
    first_children: list[int]
    next_siblings: list[int]
    root: int
    total: int


def complete_leaf_offsets(n: int, arity: int, base: int,
                          height: int) -> list[int]:
    """Label offsets of the first ``n`` leaves of a complete tree.

    Equals ``[spread_digits(i, arity, base, height) for i in range(n)]``
    (see :func:`repro.core.params.spread_digits`) computed as whole-level
    expansions: the offsets of ``b**(k+1)`` leaves are ``b`` shifted
    copies of the offsets of ``b**k`` leaves.  Total work is O(n).
    """
    if n <= 0:
        return []
    if _active == "numpy" and base ** height <= _INT64_SAFE:
        return _offsets_numpy(n, arity, base).tolist()
    return _offsets_py(n, arity, base)


def _offsets_py(n: int, arity: int, base: int) -> list[int]:
    offsets = [0]
    step = 1  # base**k: label distance between adjacent blocks
    size = 1  # arity**k: leaves covered by one block
    while size < n:
        blocks = min(arity, -(-n // size))  # only the top level is partial
        offsets = [shift + offset
                   for shift in range(0, blocks * step, step)
                   for offset in offsets]
        step *= base
        size *= blocks
    del offsets[n:]
    return offsets


def _offsets_numpy(n: int, arity: int, base: int):
    offsets = _np.zeros(1, dtype=_np.int64)
    step = 1
    size = 1
    while size < n:
        blocks = min(arity, -(-n // size))
        shifts = _np.arange(blocks, dtype=_np.int64) * step
        offsets = (shifts[:, None] + offsets[None, :]).ravel()
        step *= base
        size *= blocks
    return offsets[:n]


def left_complete_columns(n: int, arity: int, base: int,
                          height: int) -> BulkColumns:
    """All six node columns of a left-complete ``arity``-ary tree.

    ``n`` leaves, ``height`` internal levels (``height >= 1``; callers
    pass ``LTreeParams.height_for(n)``).  Labels are computed with radix
    ``base``.  Dispatches on the active backend; the ``scalar`` backend
    has no columnar builder — callers check :func:`get_backend` first.
    """
    if n < 1 or height < 1:
        raise ParameterError(
            f"left_complete_columns needs n >= 1 and height >= 1, got "
            f"n={n}, height={height}")
    if arity ** height < n:
        raise ParameterError(
            f"{n} leaves do not fit height {height} "
            f"(capacity {arity ** height})")
    if _active == "numpy" and base ** height <= _INT64_SAFE:
        return _columns_numpy(n, arity, base, height)
    return _columns_py(n, arity, base, height)


def _columns_py(n: int, arity: int, base: int, height: int) -> BulkColumns:
    # leaf level: slots 0..n-1
    num = _offsets_py(n, arity, base)
    heights = [0] * n
    leaf_counts = [1] * n
    first_children = [NIL] * n
    parents: list[int] = []
    next_siblings: list[int] = []

    level_num = num  # labels of the level under construction's children
    m_prev, off_prev = n, 0
    for level in range(1, height + 1):
        m = -(-m_prev // arity)
        off = off_prev + m_prev          # first slot of this level
        off_next = off + m               # first slot of the level above
        # links of the previous level now that this level's slots exist
        _extend_parents(parents, m_prev, arity, off)
        _extend_siblings(next_siblings, m_prev, arity, off_prev)
        # labels: each node inherits its first child's label
        level_num = level_num[::arity]
        num.extend(level_num)
        heights.extend([level] * m)
        cap = arity ** level
        full, rem = divmod(n, cap)
        leaf_counts.extend([cap] * full)
        if rem:
            leaf_counts.append(rem)
        first_children.extend(range(off_prev, off_prev + m * arity, arity))
        m_prev, off_prev = m, off
    assert m_prev == 1, "left-complete chain must end at a single root"
    parents.append(NIL)
    next_siblings.append(NIL)
    total = off_prev + 1
    return BulkColumns(num, heights, leaf_counts, parents, first_children,
                       next_siblings, root=total - 1, total=total)


def _extend_parents(parents: list[int], m: int, arity: int,
                    parent_off: int) -> None:
    """Append the parent links of an ``m``-node level (groups of
    ``arity`` consecutive children share one parent slot)."""
    extend = parents.extend
    full, rem = divmod(m, arity)
    slot = parent_off
    for _ in range(full):
        extend((slot,) * arity)
        slot += 1
    if rem:
        extend((slot,) * rem)


def _extend_siblings(next_siblings: list[int], m: int, arity: int,
                     off: int) -> None:
    """Append the sibling links of an ``m``-node level starting at slot
    ``off``: consecutive slots chain, breaking at every ``arity``
    boundary and at the end of the level."""
    links = list(range(off + 1, off + m))
    links.append(NIL)
    links[arity - 1::arity] = [NIL] * len(range(arity - 1, m, arity))
    next_siblings.extend(links)


def _columns_numpy(n: int, arity: int, base: int,
                   height: int) -> BulkColumns:
    np = _np
    num_parts = [_offsets_numpy(n, arity, base)]
    height_parts = [np.zeros(n, dtype=np.int64)]
    leaf_parts = [np.ones(n, dtype=np.int64)]
    parent_parts = []
    first_parts = [np.full(n, NIL, dtype=np.int64)]
    sibling_parts = []

    m_prev, off_prev = n, 0
    for level in range(1, height + 1):
        m = -(-m_prev // arity)
        off = off_prev + m_prev
        prev_idx = np.arange(m_prev, dtype=np.int64)
        parent_parts.append(off + prev_idx // arity)
        siblings = off_prev + prev_idx + 1
        siblings[arity - 1::arity] = NIL
        siblings[m_prev - 1] = NIL
        sibling_parts.append(siblings)

        idx = np.arange(m, dtype=np.int64)
        num_parts.append(num_parts[-1][::arity])
        height_parts.append(np.full(m, level, dtype=np.int64))
        cap = arity ** level
        counts = np.full(m, cap, dtype=np.int64)
        counts[m - 1] = n - (m - 1) * cap
        leaf_parts.append(counts)
        first_parts.append(off_prev + idx * arity)
        m_prev, off_prev = m, off
    assert m_prev == 1, "left-complete chain must end at a single root"
    root_link = np.full(1, NIL, dtype=np.int64)
    parent_parts.append(root_link)
    sibling_parts.append(root_link)
    total = off_prev + 1
    return BulkColumns(
        np.concatenate(num_parts).tolist(),
        np.concatenate(height_parts).tolist(),
        np.concatenate(leaf_parts).tolist(),
        np.concatenate(parent_parts).tolist(),
        np.concatenate(first_parts).tolist(),
        np.concatenate(sibling_parts).tolist(),
        root=total - 1, total=total)
