"""Sharded label spaces: per-subtree compact arenas behind a directory.

A :class:`ShardedCompactLTree` splits one logical ordered list across
``n_shards`` *contiguous* :class:`repro.core.compact.CompactLTree`
arenas.  Every operation routes to exactly one shard — the one owning
the anchor handle — so writers touching disjoint regions (in the
document workload: disjoint top-level subtrees) never contend on, or
relabel across, each other's arenas.  Splits, §4.1 run inserts, and
relabels are shard-local by construction.

**Label composition.**  The paper's own structure invites this: an
L-Tree label is a root prefix plus a subtree-local suffix, the same
composition that lets optimal ancestry schemes label subtrees
independently (Fraigniaud & Korman 2016; Dahlgaard et al. 2014).  Here
the global label of handle ``(rank, slot)`` is::

    rank * stride + local_label        stride = base ** directory_height

where ``directory_height`` is the tallest shard's height.  Local labels
are always below ``base ** height <= stride``, so shard-local label
sequences concatenate into a globally strictly increasing sequence with
**zero** cross-shard relabeling.  When one shard grows past the
directory height — the only way the shard directory can overflow — the
stride is bumped one power of the base.  That is the root-level
rebuild, and because global labels are *composed on read* rather than
stored, it costs O(1) and relabels nothing (``directory_rebuilds``
counts the bumps).

**Handles** are ``(shard_rank, local_slot)`` pairs; the shard set is
fixed at :meth:`bulk_load` (contiguous balanced chunks), so ranks are
stable until the next bulk load or :meth:`compact` — the same handle
lifetime the flat engine offers.

**Cost accounting.**  By default every shard reports into the one
``stats`` sink the tree was built with, so aggregate counters mean what
they do on the flat engine.  Pass ``shard_stats=True`` to give each
shard its own :class:`~repro.core.stats.Counters` — the instrument
behind the isolation guarantee: an insert into one shard provably
leaves every other shard's counters untouched
(``tests/core/test_sharded.py``).

**Persistence** (:meth:`save` / :meth:`load`) writes one ``LTREEARR``
byte image per shard — each its own blob span in a
:class:`repro.storage.pages.PageStore` — plus a JSON manifest (with a
CRC32 per image, checked on load) and a small per-shard sidecar of
live leaf slots in document order.  Loading
is **shard-lazy** by default: only the manifest and sidecars are
decoded; a shard's arena is deserialized the first time an operation
*writes* it (or needs its structure).  Pure label reads — ``num``,
``label_map``, the document layer's cached label vector — are served
straight off the byte image through the column offsets of
:func:`repro.core.compact.read_array_header`, so a reopen followed by
queries and single-subtree edits touches one arena, not all of them.
"""

from __future__ import annotations

import json
import struct
import sys
import zlib
from array import array
from typing import Any, Iterator, Optional, Sequence

from repro.core.compact import (_FLAG_HAS_PAYLOADS, CompactLTree,
                                _pack_int64, _unpack_int64,
                                read_array_header)
from repro.core.params import LTreeParams
from repro.core.stats import NULL_COUNTERS, Counters
from repro.errors import InvariantViolation, ParameterError

#: shard count the registry's ``ltree-sharded`` scheme uses
DEFAULT_N_SHARDS = 8

#: on-store format version of the sharded manifest blob
MANIFEST_FORMAT_VERSION = 1

#: ``kind`` tag of the manifest (a JSON blob, not an LTREEARR image)
MANIFEST_KIND = "sharded-ltree"

_INT64 = struct.Struct("<q")


class _Shard:
    """One arena: a materialized engine, or a still-lazy byte image.

    A lazy shard can answer *label* questions (``num``, tombstone bits,
    live-leaf enumeration) straight from its image; the first mutation
    or structural question materializes it through
    :meth:`CompactLTree.from_bytes`.
    """

    __slots__ = ("tree", "stats", "image", "header", "live", "pending",
                 "meta_height", "meta_n_leaves", "meta_tombstones",
                 "_num_column")

    def __init__(self, tree: Optional[CompactLTree], stats: Counters):
        self.tree = tree
        self.stats = stats
        self.image: Any = None
        self.header = None
        #: live leaf slots in document order (lazy shards only)
        self.live: Optional[Sequence[int]] = None
        #: payloads reattached while lazy, applied on materialization
        self.pending: dict[int, Any] = {}
        #: decoded label column of a lazy image, memoized on first use
        #: (a lazy shard is immutable, so this can never go stale)
        self._num_column: Optional[array] = None
        self.meta_height = 0
        self.meta_n_leaves = 0
        self.meta_tombstones = 0

    @classmethod
    def lazy(cls, image: Any, live: Sequence[int], meta: dict,
             stats: Counters) -> "_Shard":
        shard = cls(None, stats)
        shard.image = image
        shard.header = read_array_header(image)
        shard.live = live
        shard.meta_height = meta["height"]
        shard.meta_n_leaves = meta["n_leaves"]
        shard.meta_tombstones = meta["tombstones"]
        return shard

    @property
    def is_lazy(self) -> bool:
        return self.tree is None

    def materialize(self) -> CompactLTree:
        """Deserialize the arena (idempotent); applies pending payloads."""
        if self.tree is None:
            self.tree = CompactLTree.from_bytes(self.image,
                                                stats=self.stats)
            for slot, payload in self.pending.items():
                self.tree.set_payload(slot, payload)
            self.image = None
            self.header = None
            self.live = None
            self.pending = {}
            self._num_column = None
        return self.tree

    # -- label reads that never materialize ---------------------------
    def _check_slot(self, slot: int) -> None:
        """Bound a lazy read: a stale or invalid slot must raise like
        the materialized column access would, not return bytes of a
        neighboring column as a "label"."""
        if not 0 <= slot < self.header.n_slots:
            raise IndexError(
                f"slot {slot} outside the {self.header.n_slots}-slot "
                f"arena")

    def num(self, slot: int) -> int:
        if self.tree is not None:
            return self.tree.num(slot)
        self._check_slot(slot)
        return _INT64.unpack_from(self.image,
                                  self.header.num_offset + 8 * slot)[0]

    def is_deleted(self, slot: int) -> bool:
        if self.tree is not None:
            return self.tree.is_deleted(slot)
        self._check_slot(slot)
        return bool(memoryview(self.image)
                    [self.header.deleted_offset + slot])

    def live_slots(self) -> Iterator[int]:
        """Live leaf slots in document order (no materialization)."""
        if self.tree is not None:
            return self.tree.iter_leaves(include_deleted=False)
        return iter(self.live)

    def num_column(self) -> Sequence[int]:
        """The full slot-indexed local label column, bulk-decoded.

        For a lazy shard this is one ``array('q')`` decode straight off
        the frozen byte image (memoized — the image is immutable); for a
        materialized shard it is the engine's own column, returned
        without copying.  Entry ``column[slot]`` is the *local* label of
        ``slot``; callers compose ``rank * stride + column[slot]``.
        """
        if self.tree is not None:
            return self.tree._num
        column = self._num_column
        if column is None:
            header = self.header
            column = array("q")
            column.frombytes(memoryview(self.image)[
                header.num_offset:
                header.num_offset + 8 * header.n_slots])
            if sys.byteorder == "big":
                column.byteswap()
            self._num_column = column
        return column

    def nums_of_live(self) -> list[int]:
        """Labels of the live leaves, bulk-decoded for lazy shards."""
        if self.tree is not None:
            num = self.tree._num
            return [num[slot] for slot in
                    self.tree.iter_leaves(include_deleted=False)]
        column = self.num_column()
        return [column[slot] for slot in self.live]

    # -- shape metadata ------------------------------------------------
    @property
    def height(self) -> int:
        return self.meta_height if self.tree is None else self.tree.height

    @property
    def n_leaves(self) -> int:
        return self.meta_n_leaves if self.tree is None \
            else self.tree.n_leaves

    def tombstone_count(self) -> int:
        return self.meta_tombstones if self.tree is None \
            else self.tree.tombstone_count()


class ShardedCompactLTree:
    """Ordered labeling over per-shard compact arenas (see module doc).

    Parameters
    ----------
    params:
        The ``(f, s, label_base)`` set every shard arena uses.
    stats:
        Counter sink shared by all shards (aggregate semantics match
        the flat engine).
    violator_policy:
        Passed through to every shard arena.
    n_shards:
        Number of contiguous arenas :meth:`bulk_load` splits into (the
        actual count is capped by the item count; at least one shard
        always exists).
    shard_stats:
        ``True`` gives every shard its *own* ``Counters`` (exposed as
        :attr:`shard_counters`) instead of the shared sink — the probe
        for the write-isolation guarantee.

    Examples
    --------
    >>> from repro.core.params import LTreeParams
    >>> tree = ShardedCompactLTree(LTreeParams(f=4, s=2), n_shards=2)
    >>> leaves = tree.bulk_load("abcdef")
    >>> [tree.num(leaf) for leaf in leaves]    # stride = 5**2 = 25
    [0, 1, 5, 25, 26, 30]
    >>> leaves[3]                      # handles are (shard, slot)
    (1, 0)
    """

    #: when True, routed updates do *not* bump the stride inline; the
    #: caller promises to call :meth:`grow_directory` itself (see that
    #: method).  A class attribute so every construction path —
    #: including :meth:`load`'s ``__new__`` — starts with inline growth.
    defer_directory_growth = False

    def __init__(self, params: LTreeParams, stats: Counters = NULL_COUNTERS,
                 violator_policy: str = "highest",
                 n_shards: int = DEFAULT_N_SHARDS,
                 shard_stats: bool = False):
        if n_shards < 1:
            raise ParameterError(
                f"n_shards must be >= 1, got {n_shards}")
        self.params = params
        self.stats = stats
        self.violator_policy = violator_policy
        self.n_shards = n_shards
        self._track_shards = bool(shard_stats)
        #: stride bumps performed because one shard outgrew the
        #: directory height (the only root-level "rebuild"; O(1) each)
        self.directory_rebuilds = 0
        self._shards: list[_Shard] = [self._fresh_shard()]
        self._directory_height = 1
        self._stride = params.base
        self._refresh_directory()

    # ------------------------------------------------------------------
    # shard plumbing
    # ------------------------------------------------------------------
    def _fresh_shard(self) -> _Shard:
        sink = Counters() if self._track_shards else self.stats
        return _Shard(CompactLTree(self.params, sink,
                                   violator_policy=self.violator_policy),
                      sink)

    @property
    def shard_counters(self) -> list[Counters]:
        """Per-shard counter sinks (the shared sink repeated unless the
        tree was built with ``shard_stats=True``)."""
        return [shard.stats for shard in self._shards]

    @property
    def shard_count(self) -> int:
        """Number of arenas currently in the directory."""
        return len(self._shards)

    @property
    def materialized_shards(self) -> list[int]:
        """Ranks whose arena is deserialized (all, unless lazily loaded)."""
        return [rank for rank, shard in enumerate(self._shards)
                if not shard.is_lazy]

    @property
    def directory_height(self) -> int:
        """Height of the tallest shard — the stride exponent."""
        return self._directory_height

    @property
    def stride(self) -> int:
        """Label-space width reserved per shard: ``base ** dir_height``."""
        return self._stride

    @property
    def label_space(self) -> int:
        """Exclusive upper bound of the global label universe."""
        return len(self._shards) * self._stride

    def _refresh_directory(self) -> None:
        """Recompute the stride from scratch (bulk load, compact, load)."""
        height = max((shard.height for shard in self._shards), default=1)
        height = max(height, 1)
        self._directory_height = height
        self._stride = self.params.base ** height

    def _grow_directory(self, shard: _Shard) -> None:
        """Bump the stride when ``shard`` outgrew the directory height."""
        if self.defer_directory_growth:
            return
        if shard.height > self._directory_height:
            self._directory_height = shard.height
            self._stride = self.params.base ** self._directory_height
            self.directory_rebuilds += 1

    def needs_directory_growth(self, rank: int) -> bool:
        """Whether shard ``rank`` has outgrown the directory stride.

        Only ever True under ``defer_directory_growth`` (inline growth
        keeps the invariant continuously); the deferring caller checks
        this after each update and performs :meth:`grow_directory`
        under its own serialization.
        """
        return self._shards[rank].height > self._directory_height

    def grow_directory(self, rank: int) -> bool:
        """Deferred counterpart of the inline stride bump (O(1)).

        Returns True when the stride actually grew.  The caller must
        ensure no reader composes shard ``rank``'s labels between the
        update that grew it and this call — e.g. by holding that
        shard's write lock across both.
        """
        shard = self._shards[rank]
        if shard.height <= self._directory_height:
            return False
        self._directory_height = shard.height
        self._stride = self.params.base ** self._directory_height
        self.directory_rebuilds += 1
        return True

    def _shard_at(self, handle: tuple[int, int]) -> tuple[_Shard, int]:
        rank, slot = handle
        if not 0 <= rank < len(self._shards):
            raise ValueError(
                f"handle {handle!r} names shard {rank} of "
                f"{len(self._shards)}")
        return self._shards[rank], slot

    # ------------------------------------------------------------------
    # bulk loading
    # ------------------------------------------------------------------
    def bulk_load(self, payloads: Sequence[Any],
                  boundaries: Optional[Sequence[int]] = None
                  ) -> list[tuple[int, int]]:
        """Split ``payloads`` into contiguous chunks, one arena each.

        Existing handles are invalidated (same contract as the flat
        engine's bulk load).  Returns the new handles in order.

        By default the items are split into ``n_shards`` balanced
        chunks.  ``boundaries`` overrides the split with explicit chunk
        *sizes* (each >= 1, summing to ``len(payloads)``): chunk ``k``
        becomes shard ``k``'s arena.  This is how the document layer
        aligns shards with top-level document children — every
        subtree's tokens land in one arena, so a subtree edit provably
        writes one shard (see ``LabeledDocument``).  The number of
        boundaries decides the shard count, ``n_shards`` is only the
        default split's target.
        """
        items = list(payloads)
        if boundaries is not None:
            sizes = [int(size) for size in boundaries]
            if not sizes:
                raise ParameterError("boundaries must name at least one "
                                     "chunk")
            if any(size < 1 for size in sizes):
                raise ParameterError(
                    f"every boundary chunk needs >= 1 item, got {sizes}")
            if sum(sizes) != len(items):
                raise ParameterError(
                    f"boundaries cover {sum(sizes)} items, bulk load has "
                    f"{len(items)}")
        else:
            shard_count = min(self.n_shards, len(items)) or 1
            sizes = []
            start = 0
            for rank in range(shard_count):
                size = (len(items) - start) // (shard_count - rank)
                sizes.append(size)
                start += size
        self._shards = [self._fresh_shard() for _ in sizes]
        handles: list[tuple[int, int]] = []
        start = 0
        for rank, (shard, size) in enumerate(zip(self._shards, sizes)):
            slots = shard.tree.bulk_load(items[start:start + size])
            handles.extend((rank, slot) for slot in slots)
            start += size
        self._refresh_directory()
        return handles

    # ------------------------------------------------------------------
    # routed updates (all shard-local)
    # ------------------------------------------------------------------
    def insert_after(self, handle: tuple[int, int],
                     payload: Any) -> tuple[int, int]:
        shard, slot = self._shard_at(handle)
        rank = handle[0]
        leaf = shard.materialize().insert_after(slot, payload)
        self._grow_directory(shard)
        return (rank, leaf)

    def insert_before(self, handle: tuple[int, int],
                      payload: Any) -> tuple[int, int]:
        shard, slot = self._shard_at(handle)
        rank = handle[0]
        leaf = shard.materialize().insert_before(slot, payload)
        self._grow_directory(shard)
        return (rank, leaf)

    def append(self, payload: Any) -> tuple[int, int]:
        rank = len(self._shards) - 1
        shard = self._shards[rank]
        leaf = shard.materialize().append(payload)
        self._grow_directory(shard)
        return (rank, leaf)

    def prepend(self, payload: Any) -> tuple[int, int]:
        shard = self._shards[0]
        leaf = shard.materialize().prepend(payload)
        self._grow_directory(shard)
        return (0, leaf)

    def insert_run_after(self, handle: tuple[int, int],
                         payloads: Sequence[Any]) -> list[tuple[int, int]]:
        """§4.1 batch insert — the whole run lands in the anchor's shard."""
        shard, slot = self._shard_at(handle)
        rank = handle[0]
        leaves = shard.materialize().insert_run_after(slot, payloads)
        self._grow_directory(shard)
        return [(rank, leaf) for leaf in leaves]

    def insert_run_before(self, handle: tuple[int, int],
                          payloads: Sequence[Any]) -> list[tuple[int, int]]:
        shard, slot = self._shard_at(handle)
        rank = handle[0]
        leaves = shard.materialize().insert_run_before(slot, payloads)
        self._grow_directory(shard)
        return [(rank, leaf) for leaf in leaves]

    def mark_deleted(self, handle: tuple[int, int]) -> None:
        """Tombstone a leaf (paper §2.3) — no relabeling anywhere."""
        shard, slot = self._shard_at(handle)
        shard.materialize().mark_deleted(slot)

    def set_payload(self, handle: tuple[int, int], payload: Any) -> None:
        """Reattach a payload; buffered (not materializing) on lazy shards."""
        shard, slot = self._shard_at(handle)
        if shard.is_lazy:
            shard.pending[slot] = payload
        else:
            shard.tree.set_payload(slot, payload)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def num(self, handle: tuple[int, int]) -> int:
        """Global label: shard prefix ⊕ shard-local label."""
        shard, slot = self._shard_at(handle)
        return handle[0] * self._stride + shard.num(slot)

    def payload(self, handle: tuple[int, int]) -> Any:
        shard, slot = self._shard_at(handle)
        if shard.is_lazy and slot in shard.pending:
            return shard.pending[slot]
        return shard.materialize().payload(slot)

    def is_leaf(self, handle: tuple[int, int]) -> bool:
        shard, slot = self._shard_at(handle)
        return shard.materialize().is_leaf(slot)

    def is_deleted(self, handle: tuple[int, int]) -> bool:
        shard, slot = self._shard_at(handle)
        return shard.is_deleted(slot)

    def iter_leaves(self, include_deleted: bool = True
                    ) -> Iterator[tuple[int, int]]:
        """All leaves in document order, shard by shard.

        With ``include_deleted=False`` (the wrapper's ``handles()``
        path) lazy shards serve their sidecar enumeration and stay
        unmaterialized; including tombstones needs the structure.
        """
        for rank, shard in enumerate(self._shards):
            if include_deleted:
                slots: Iterator[int] = \
                    shard.materialize().iter_leaves(True)
            else:
                slots = shard.live_slots()
            for slot in slots:
                yield (rank, slot)

    def labels(self, include_deleted: bool = True) -> list[int]:
        """The global label sequence (strictly increasing)."""
        stride = self._stride
        out: list[int] = []
        for rank, shard in enumerate(self._shards):
            prefix = rank * stride
            if include_deleted:
                tree = shard.materialize()
                out.extend(prefix + tree.num(slot)
                           for slot in tree.iter_leaves(True))
            else:
                out.extend(prefix + value
                           for value in shard.nums_of_live())
        return out

    def payloads(self, include_deleted: bool = True) -> list[Any]:
        return [self.payload(handle)
                for handle in self.iter_leaves(include_deleted)]

    def label_columns(self, rank: int) -> tuple[list[int], Sequence[int]]:
        """``(live_slots, local_label_column)`` of one shard, in bulk.

        The columnar query engine's input hook
        (:mod:`repro.query.columnar`): the slot-indexed local label
        column comes off the shard's flat storage in one decode — a
        lazy shard stays lazy — and the global label of ``slot`` is
        ``rank * stride + column[slot]``.  One call per shard replaces
        one :meth:`num` round trip per node.
        """
        shard = self._shards[rank]
        return list(shard.live_slots()), shard.num_column()

    def label_map(self) -> dict[tuple[int, int], int]:
        """Live handle → global label, composed across every shard.

        One bulk column decode per shard — lazy shards stay lazy — so
        the document layer's cached label vector costs the same flat
        extraction it does on the unsharded engine.
        """
        stride = self._stride
        mapping: dict[tuple[int, int], int] = {}
        for rank, shard in enumerate(self._shards):
            prefix = rank * stride
            mapping.update(
                ((rank, slot), prefix + value)
                for slot, value in zip(shard.live_slots(),
                                       shard.nums_of_live()))
        return mapping

    def find_leaf(self, num: int) -> Optional[tuple[int, int]]:
        """The leaf holding global label ``num``: the shard prefix is
        ``num // stride``, the rest an O(height) in-shard descent."""
        if num < 0:
            return None
        rank, local = divmod(num, self._stride)
        if rank >= len(self._shards):
            return None
        slot = self._shards[rank].materialize().find_leaf(local)
        return None if slot is None else (rank, slot)

    @property
    def n_leaves(self) -> int:
        """Leaves across all shards, tombstones included."""
        return sum(shard.n_leaves for shard in self._shards)

    def tombstone_count(self) -> int:
        return sum(shard.tombstone_count() for shard in self._shards)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def compact(self, params: Optional[LTreeParams] = None
                ) -> dict[tuple[int, int], tuple[int, int]]:
        """Vacuum tombstones shard by shard; old→new handle mapping.

        Shards are rebuilt independently (ranks never change), then the
        directory stride is recomputed — it can shrink, which is the
        one relabel-like event compaction implies, and it is still
        O(1) because global labels are composed on read.
        """
        if params is not None:
            self.params = params
        mapping: dict[tuple[int, int], tuple[int, int]] = {}
        for rank, shard in enumerate(self._shards):
            local = shard.materialize().compact(params)
            mapping.update(((rank, old), (rank, new))
                           for old, new in local.items())
        self._refresh_directory()
        return mapping

    def shard_image(self, rank: int) -> tuple[Any, list[int], dict]:
        """``(label image, live leaf slots, shape meta)`` of one shard.

        The image is the same payload-free ``LTREEARR`` byte image the
        lazy-reopen path serves label reads from; a still-lazy shard
        hands back its existing image with **zero** copies or
        deserialization.  This is the pinning hook snapshot readers use
        (:meth:`repro.concurrent.engine.ConcurrentLTree.snapshot`): the
        returned triple is immutable with respect to later writes, so a
        reader can answer label/order/containment queries off it with
        no locks against live writers.
        """
        shard = self._shards[rank]
        meta = {"height": shard.height, "n_leaves": shard.n_leaves,
                "tombstones": shard.tombstone_count()}
        if shard.is_lazy:
            image = shard.image
            if not isinstance(image, bytes):
                # a memoryview into the store's mmap aliases the file:
                # a later save/checkpoint rewriting the span in place
                # would mutate (or tear) the "immutable" pin under a
                # zero-lock reader.  The pin must own its bytes.
                image = bytes(image)
            return image, list(shard.live), meta
        return (shard.tree.to_bytes(include_payloads=False),
                list(shard.tree.iter_leaves(include_deleted=False)),
                meta)

    # ------------------------------------------------------------------
    # persistence (one LTREEARR blob span per shard + manifest)
    # ------------------------------------------------------------------
    def save(self, store: Any, name: str = "scheme",
             include_payloads: bool = True,
             extra_blobs: Optional[dict[str, bytes]] = None) -> None:
        """Persist every arena as its own blob span plus a manifest.

        Blob layout under ``name``: ``{name}.s{rank}`` holds shard
        ``rank``'s ``LTREEARR`` image, ``{name}.s{rank}.leaves`` its
        live-leaf sidecar, and ``{name}`` the JSON manifest.  On a
        store with batched puts (:meth:`PageStore.put_blobs`) the whole
        save — arenas, sidecars, manifest, stale-shard cleanup — lands
        under one atomic catalog flip; on a plain ``put_blob`` store
        the manifest is written last, so a reader never sees it
        pointing at *missing* blobs.  Re-saving a same-size arena
        rewrites its span in place
        — the page store's one non-atomic window — so a crash mid-save
        can tear an arena's *contents*; every manifest entry therefore
        carries a CRC32 of its image and sidecar, and :meth:`load`
        fails loudly on a mismatch instead of deserializing torn bytes.

        A still-lazy shard is copied image-for-image without
        deserializing — an open → edit-one-subtree → save cycle reads
        and parses exactly one arena — but only when the copy would be
        faithful: a lazy shard is materialized first when its image's
        payload flag disagrees with ``include_payloads``, or when
        payloads were reattached via :meth:`set_payload` while lazy and
        ``include_payloads`` asks for them (buffered payloads are
        irrelevant when payloads are not persisted, so the document
        layer's ``include_payloads=False`` saves stay fully lazy).

        ``extra_blobs`` ride along inside the *same* atomic catalog
        flip on a batched store (a ``ConcurrentDocument`` checkpoint
        stores its WAL watermark this way, so "engine state saved" and
        "checkpoint sequence recorded" can never be observed apart); on
        a plain ``put_blob`` store they are written just before the
        manifest.
        """
        entries = []
        puts: dict[str, bytes] = {}
        for rank, shard in enumerate(self._shards):
            arena_name = f"{name}.s{rank}"
            leaves_name = f"{name}.s{rank}.leaves"
            if shard.is_lazy:
                has_payloads = bool(shard.header.flags &
                                    _FLAG_HAS_PAYLOADS)
                if has_payloads != include_payloads or \
                        (include_payloads and shard.pending):
                    shard.materialize()
            if shard.is_lazy:
                raw = bytes(shard.image)
                live = list(shard.live)
            else:
                raw = shard.tree.to_bytes(
                    include_payloads=include_payloads)
                live = list(shard.tree.iter_leaves(
                    include_deleted=False))
            raw_leaves = _pack_int64(live)
            puts[arena_name] = raw
            puts[leaves_name] = raw_leaves
            entries.append({
                "blob": arena_name,
                "leaves": leaves_name,
                "height": shard.height,
                "n_leaves": shard.n_leaves,
                "tombstones": shard.tombstone_count(),
                "live": len(live),
                "checksum": zlib.crc32(raw),
                "leaves_checksum": zlib.crc32(raw_leaves),
            })
        manifest = {
            "format": MANIFEST_FORMAT_VERSION,
            "kind": MANIFEST_KIND,
            "f": self.params.f,
            "s": self.params.s,
            "label_base": self.params.base,
            "violator_policy": self.violator_policy,
            "n_shards": self.n_shards,
            "directory_height": self._directory_height,
            "directory_rebuilds": self.directory_rebuilds,
            "shards": entries,
        }
        manifest_raw = json.dumps(manifest).encode("utf-8")
        # blobs of shard ranks this tree no longer has (a re-bulk_load
        # can shrink the shard count) must be dropped, or their spans
        # leak past every vacuum.  The catalog is scanned rather than
        # probed rank-by-rank from len(shards): a cleanup interrupted by
        # a crash can leave *gaps* in the stale rank sequence, and an
        # arena can survive without its sidecar (or vice versa)
        stale = []
        if hasattr(store, "blobs") and hasattr(store, "delete_blob"):
            prefix = f"{name}.s"
            for blob_name in list(store.blobs()):
                if not blob_name.startswith(prefix):
                    continue
                tail = blob_name[len(prefix):]
                if tail.endswith(".leaves"):
                    tail = tail[:-len(".leaves")]
                if tail.isdigit() and int(tail) >= len(self._shards):
                    stale.append(blob_name)
        if extra_blobs:
            overlap = set(extra_blobs) & (set(puts) | {name})
            if overlap:
                raise ParameterError(
                    f"extra_blobs collide with the scheme's own blob "
                    f"names: {sorted(overlap)}")
            puts.update(extra_blobs)
        if hasattr(store, "put_blobs"):
            # one catalog flip: arenas, sidecars, manifest and stale-blob
            # drops become visible atomically (and under sync=True the
            # whole save costs one fsync pair, not one per blob)
            puts[name] = manifest_raw
            store.put_blobs(puts, delete=stale)
        else:
            for blob_name, data in puts.items():
                store.put_blob(blob_name, data)
            # manifest last, so a reader never sees it pointing at
            # blobs that were not written yet; stale blobs dropped
            # last of all, because deleting them before the flip would
            # open a crash window in which the old manifest still
            # points at them and the store cannot reopen
            store.put_blob(name, manifest_raw)
            for blob_name in stale:
                store.delete_blob(blob_name)

    @classmethod
    def load(cls, store: Any, name: str = "scheme",
             stats: Counters = NULL_COUNTERS, lazy: bool = True,
             prefer_mmap: bool = True,
             shard_stats: bool = False) -> "ShardedCompactLTree":
        """Reopen a tree saved by :meth:`save`.

        With ``lazy`` (default) only the manifest and the per-shard
        sidecars are decoded; each arena is fetched as a byte view
        (mmap fast path when the store offers it) and deserialized on
        first write — see the module docstring.  ``lazy=False``
        materializes everything immediately.
        """
        manifest = json.loads(bytes(store.get_blob(name)).decode("utf-8"))
        if manifest.get("kind") != MANIFEST_KIND:
            raise ParameterError(
                f"blob {name!r} is not a sharded-ltree manifest "
                f"(kind={manifest.get('kind')!r})")
        if manifest.get("format") != MANIFEST_FORMAT_VERSION:
            raise ParameterError(
                f"unsupported sharded manifest format "
                f"{manifest.get('format')!r} "
                f"(supported: {MANIFEST_FORMAT_VERSION})")
        params = LTreeParams(f=manifest["f"], s=manifest["s"],
                             label_base=manifest["label_base"])
        tree = cls.__new__(cls)
        tree.params = params
        tree.stats = stats
        tree.violator_policy = manifest["violator_policy"]
        tree.n_shards = manifest["n_shards"]
        tree._track_shards = bool(shard_stats)
        tree.directory_rebuilds = manifest.get("directory_rebuilds", 0)
        tree._shards = []
        for entry in manifest["shards"]:
            sink = Counters() if shard_stats else stats
            image = store.get_blob(entry["blob"],
                                   prefer_mmap=prefer_mmap)
            # LTREEARR images carry no checksum of their own, and the
            # page store's in-place span rewrite can tear one mid-save;
            # the manifest's CRC makes that a loud load failure instead
            # of a quietly corrupt arena
            expected_crc = entry.get("checksum")
            if expected_crc is not None and \
                    zlib.crc32(image) != expected_crc:
                raise ParameterError(
                    f"shard image {entry['blob']!r} fails its manifest "
                    f"checksum (torn by a crash mid-save?)")
            header = read_array_header(image)
            if (header.f, header.s, header.label_base,
                    header.violator_policy) != \
                    (params.f, params.s, params.base,
                     tree.violator_policy):
                raise ParameterError(
                    f"shard image {entry['blob']!r} disagrees with the "
                    f"manifest parameters")
            raw_leaves = bytes(store.get_blob(entry["leaves"]))
            leaves_crc = entry.get("leaves_checksum")
            if leaves_crc is not None and \
                    zlib.crc32(raw_leaves) != leaves_crc:
                raise ParameterError(
                    f"sidecar {entry['leaves']!r} fails its manifest "
                    f"checksum (torn by a crash mid-save?)")
            live = _unpack_int64(memoryview(raw_leaves), 0,
                                 len(raw_leaves) // 8)
            # lazy label reads index the raw image with these slots, so
            # a torn or stale sidecar must fail loudly here, not return
            # bytes of some other column as a "label" (the same reason
            # from_bytes validates the free-list)
            if len(live) != entry["live"]:
                raise ParameterError(
                    f"sidecar {entry['leaves']!r} holds {len(live)} "
                    f"slots, manifest says {entry['live']}")
            image_view = memoryview(image)
            deleted_offset = header.deleted_offset
            if any(not 0 <= slot < header.n_slots or
                   image_view[deleted_offset + slot]
                   for slot in live):
                raise ParameterError(
                    f"sidecar {entry['leaves']!r} names slots outside "
                    f"the {header.n_slots}-slot arena or tombstoned "
                    f"leaves")
            shard = _Shard.lazy(image, live, entry, sink)
            if not lazy:
                shard.materialize()
            tree._shards.append(shard)
        if not tree._shards:
            raise ParameterError(
                f"manifest {name!r} describes zero shards")
        tree._directory_height = manifest["directory_height"]
        tree._stride = params.base ** tree._directory_height
        return tree

    # ------------------------------------------------------------------
    # validation (tests)
    # ------------------------------------------------------------------
    def validate(self, check_occupancy: bool = False) -> None:
        """Per-shard structural invariants plus the directory's own.

        Materializes every shard (tests only).  Checks each arena with
        :meth:`CompactLTree.validate`, that the stride covers the
        tallest shard, and that global labels strictly increase across
        shard boundaries.
        """
        height = max((shard.height for shard in self._shards), default=1)
        if self.params.base ** max(height, 1) != self._stride:
            raise InvariantViolation(
                f"stride {self._stride} does not match the tallest "
                f"shard (height {height})")
        for shard in self._shards:
            shard.materialize().validate(check_occupancy)
        labels = self.labels()
        for left, right in zip(labels, labels[1:]):
            if left >= right:
                raise InvariantViolation(
                    f"global labels not strictly increasing: "
                    f"{left} >= {right}")

    def __repr__(self) -> str:
        return (f"ShardedCompactLTree(shards={len(self._shards)}, "
                f"stride={self._stride}, n_leaves={self.n_leaves}, "
                f"params={self.params.describe()})")
