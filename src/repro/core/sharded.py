"""Sharded label spaces: per-subtree compact arenas behind a directory.

A :class:`ShardedCompactLTree` splits one logical ordered list across
*contiguous* :class:`repro.core.compact.CompactLTree` arenas.  Every
operation routes to exactly one shard — the one owning the anchor
handle — so writers touching disjoint regions (in the document
workload: disjoint top-level subtrees) never contend on, or relabel
across, each other's arenas.  Splits, §4.1 run inserts, and relabels
are shard-local by construction.

**The shard directory.**  Shards are named by stable integer **ids**,
not positions.  An immutable :class:`_Directory` object maps the id
set to document order: ``ids`` (the order), ``positions`` (id →
position), ``shards`` (id → arena) and the stride, stamped with an
**epoch** that increments on every membership change (bulk load,
:meth:`split_shard`, :meth:`merge_shards`, :meth:`compact`).  The
directory is never mutated in place — every change installs a fresh
object in one reference assignment — so a concurrent reader that grabs
the directory once composes labels from one consistent (order, stride)
cut even while a rebalance swaps the membership under it.

**Label composition.**  The paper's own structure invites this: an
L-Tree label is a root prefix plus a subtree-local suffix, the same
composition that lets optimal ancestry schemes label subtrees
independently (Fraigniaud & Korman 2016; Dahlgaard et al. 2014).  Here
the global label of handle ``(shard_id, slot)`` is::

    position(shard_id) * stride + local_label
    stride = base ** directory_height

where ``directory_height`` is the tallest shard's height.  Local labels
are always below ``base ** height <= stride``, so shard-local label
sequences concatenate into a globally strictly increasing sequence with
**zero** cross-shard relabeling.  When one shard grows past the
directory height — the only way the shard directory can overflow — the
stride is bumped one power of the base.  That is the root-level
rebuild, and because global labels are *composed on read* rather than
stored, it costs O(1) and relabels nothing (``directory_rebuilds``
counts the bumps).

**Online rebalancing.**  :meth:`split_shard` cuts one arena in two and
:meth:`merge_shards` folds two adjacent arenas into one, each rewriting
*only* the affected arenas (fresh bulk loads of their leaf runs,
tombstones preserved) and re-deriving every global label through the
stride machinery — untouched shards keep their bytes, their handles
and their counters.  A :class:`RebalancePolicy` plans such actions from
:meth:`shard_report` occupancy stats (size-ratio and tombstone
thresholds), and :meth:`rebalance` applies them until the directory is
balanced.

**Handle stability.**  Handles are ``(shard_id, local_slot)`` pairs.
``bulk_load`` and :meth:`compact` invalidate them (same contract as the
flat engine), but a split or merge does **not**: each rebalance records
its old ``(id, slot) → (new id, new slot)`` moves in a grow-only
**forwarding table**, and every routing path resolves a handle through
it — chasing chains across multiple epochs — before touching an arena.
An old handle held across any number of splits keeps resolving, the
way tombstones outlive deletes.

**Cost accounting.**  By default every shard reports into the one
``stats`` sink the tree was built with, so aggregate counters mean what
they do on the flat engine.  Pass ``shard_stats=True`` to give each
shard its own :class:`~repro.core.stats.Counters` — the instrument
behind the isolation guarantee: an insert into one shard provably
leaves every other shard's counters untouched
(``tests/core/test_sharded.py``).

**Persistence** (:meth:`save` / :meth:`load`) writes one ``LTREEARR``
byte image per shard — each its own blob span in a
:class:`repro.storage.pages.PageStore` — plus a JSON manifest (with a
CRC32 per image, checked on load) and a small per-shard sidecar of
live leaf slots in document order.  The manifest carries the directory
itself — id order, epoch, forwarding table, next unused id — so a
reopened tree resolves pre-crash handles identically.  Loading
is **shard-lazy** by default: only the manifest and sidecars are
decoded; a shard's arena is deserialized the first time an operation
*writes* it (or needs its structure).  Pure label reads — ``num``,
``label_map``, the document layer's cached label vector — are served
straight off the byte image through the column offsets of
:func:`repro.core.compact.read_array_header`, so a reopen followed by
queries and single-subtree edits touches one arena, not all of them.
"""

from __future__ import annotations

import inspect
import json
import operator
import struct
import sys
import zlib
from array import array
from typing import Any, Iterator, Optional, Sequence

from repro.core.compact import (_FLAG_HAS_PAYLOADS, _HEADER, CompactLTree,
                                _pack_int64, _unpack_int64,
                                read_array_header)
from repro.core.params import LTreeParams
from repro.core.stats import NULL_COUNTERS, Counters
from repro.errors import InvariantViolation, ParameterError

#: shard count the registry's ``ltree-sharded`` scheme uses
DEFAULT_N_SHARDS = 8

#: on-store format version of the sharded manifest blob.  Version 2
#: added the id-based directory: per-entry shard ids, the epoch, the
#: forwarding table and the next unused id.  Version-1 manifests load
#: with ids equal to their ranks (the layouts coincide before the
#: first split/merge).
MANIFEST_FORMAT_VERSION = 2

#: ``kind`` tag of the manifest (a JSON blob, not an LTREEARR image)
MANIFEST_KIND = "sharded-ltree"

_INT64 = struct.Struct("<q")


class _Shard:
    """One arena: a materialized engine, or a still-lazy byte image.

    A lazy shard can answer *label* questions (``num``, tombstone bits,
    live-leaf enumeration) straight from its image; the first mutation
    or structural question materializes it through
    :meth:`CompactLTree.from_bytes`.
    """

    __slots__ = ("tree", "stats", "image", "header", "live", "pending",
                 "meta_height", "meta_n_leaves", "meta_tombstones",
                 "_num_column", "write_version", "_columns_cache")

    def __init__(self, tree: Optional[CompactLTree], stats: Counters):
        self.tree = tree
        self.stats = stats
        self.image: Any = None
        self.header = None
        #: live leaf slots in document order (lazy shards only)
        self.live: Optional[Sequence[int]] = None
        #: payloads reattached while lazy, applied on materialization
        self.pending: dict[int, Any] = {}
        #: decoded label column of a lazy image, memoized on first use
        #: (a lazy shard is immutable, so this can never go stale)
        self._num_column: Optional[array] = None
        #: bumped by the engine on every label-affecting mutation of
        #: this arena (inserts, runs, tombstones) — the dirty-shard
        #: signal incremental columnar consumers key their caches on.
        #: Fresh arenas (bulk load, split/merge products) restart at 1.
        self.write_version = 1
        #: ``(write_version, live_slots, num_column)`` memo backing
        #: :meth:`label_columns`; invalidated by the version bump, so a
        #: repeated bulk extraction of an unchanged shard is two dict
        #: reads instead of an O(n) live-slot walk + column decode
        self._columns_cache: Optional[tuple] = None
        self.meta_height = 0
        self.meta_n_leaves = 0
        self.meta_tombstones = 0

    @classmethod
    def lazy(cls, image: Any, live: Sequence[int], meta: dict,
             stats: Counters) -> "_Shard":
        shard = cls(None, stats)
        shard.image = image
        shard.header = read_array_header(image)
        shard.live = live
        shard.meta_height = meta["height"]
        shard.meta_n_leaves = meta["n_leaves"]
        shard.meta_tombstones = meta["tombstones"]
        return shard

    @property
    def is_lazy(self) -> bool:
        return self.tree is None

    def materialize(self) -> CompactLTree:
        """Deserialize the arena (idempotent); applies pending payloads."""
        if self.tree is None:
            self.tree = CompactLTree.from_bytes(self.image,
                                                stats=self.stats)
            for slot, payload in self.pending.items():
                self.tree.set_payload(slot, payload)
            self.image = None
            self.header = None
            self.live = None
            self.pending = {}
            self._num_column = None
        return self.tree

    # -- label reads that never materialize ---------------------------
    def _check_slot(self, slot: int) -> None:
        """Bound a lazy read: a stale or invalid slot must raise like
        the materialized column access would, not return bytes of a
        neighboring column as a "label"."""
        if not 0 <= slot < self.header.n_slots:
            raise IndexError(
                f"slot {slot} outside the {self.header.n_slots}-slot "
                f"arena")

    def num(self, slot: int) -> int:
        if self.tree is not None:
            return self.tree.num(slot)
        self._check_slot(slot)
        return _INT64.unpack_from(self.image,
                                  self.header.num_offset + 8 * slot)[0]

    def is_deleted(self, slot: int) -> bool:
        if self.tree is not None:
            return self.tree.is_deleted(slot)
        self._check_slot(slot)
        return bool(memoryview(self.image)
                    [self.header.deleted_offset + slot])

    def live_slots(self) -> Iterator[int]:
        """Live leaf slots in document order (no materialization)."""
        if self.tree is not None:
            return self.tree.iter_leaves(include_deleted=False)
        return iter(self.live)

    def num_column(self) -> Sequence[int]:
        """The full slot-indexed local label column, bulk-decoded.

        For a lazy shard this is one ``array('q')`` decode straight off
        the frozen byte image (memoized — the image is immutable); for a
        materialized shard it is the engine's own column, returned
        without copying.  Entry ``column[slot]`` is the *local* label of
        ``slot``; callers compose ``position * stride + column[slot]``.
        """
        if self.tree is not None:
            return self.tree._num
        column = self._num_column
        if column is None:
            header = self.header
            column = array("q")
            column.frombytes(memoryview(self.image)[
                header.num_offset:
                header.num_offset + 8 * header.n_slots])
            if sys.byteorder == "big":
                column.byteswap()
            self._num_column = column
        return column

    def label_columns(self) -> tuple[list[int], Sequence[int]]:
        """``(live_slots, num_column)`` memoized on the write version.

        The bulk-extraction pair every columnar consumer wants; caching
        both under :attr:`write_version` means an unchanged shard never
        repeats the live-slot walk or the column decode.
        """
        cached = self._columns_cache
        if cached is not None and cached[0] == self.write_version:
            return cached[1], cached[2]
        live = list(self.live_slots())
        column = self.num_column()
        self._columns_cache = (self.write_version, live, column)
        return live, column

    def nums_of_live(self) -> list[int]:
        """Labels of the live leaves, bulk-decoded for lazy shards."""
        if self.tree is not None:
            num = self.tree._num
            return [num[slot] for slot in
                    self.tree.iter_leaves(include_deleted=False)]
        column = self.num_column()
        return [column[slot] for slot in self.live]

    def arena_bytes(self) -> int:
        """Byte size of this arena's payload-free ``LTREEARR`` image.

        Exact for lazy shards (the image is on hand); computed from the
        slot counts for materialized ones (six int64 columns, the
        free-list, one tombstone byte per slot) without serializing.
        """
        if self.tree is None:
            return len(self.image)
        n_slots = len(self.tree._num)
        return _HEADER.size + 48 * n_slots + \
            8 * len(self.tree._free) + n_slots

    # -- shape metadata ------------------------------------------------
    @property
    def height(self) -> int:
        return self.meta_height if self.tree is None else self.tree.height

    @property
    def n_leaves(self) -> int:
        return self.meta_n_leaves if self.tree is None \
            else self.tree.n_leaves

    def tombstone_count(self) -> int:
        return self.meta_tombstones if self.tree is None \
            else self.tree.tombstone_count()


class _Directory:
    """One immutable epoch of the shard directory.

    Bundles everything a reader needs to compose global labels — the
    id order, the id → position map, the id → arena map and the stride
    — so grabbing ``tree._dir`` once yields a torn-free view no matter
    what membership changes or stride bumps install afterwards.  Never
    mutated after construction; ``shards`` and ``positions`` may be
    *shared* with successor directories (they are copied on change).
    """

    __slots__ = ("epoch", "ids", "positions", "shards", "height",
                 "stride")

    def __init__(self, epoch: int, ids: Sequence[int],
                 shards: dict[int, _Shard], base: int,
                 height: Optional[int] = None,
                 positions: Optional[dict[int, int]] = None):
        self.epoch = epoch
        self.ids = tuple(ids)
        if positions is None:
            positions = {sid: pos for pos, sid in enumerate(self.ids)}
        self.positions = positions
        self.shards = shards
        if height is None:
            height = max((shard.height for shard in shards.values()),
                         default=1)
        self.height = max(height, 1)
        self.stride = base ** self.height


class RebalancePolicy:
    """Plans split/merge actions from :meth:`~ShardedCompactLTree
    .shard_report` occupancy rows.

    The triggers are the two ways a directory degrades:

    * **size skew** — one arena holding far more live leaves than the
      mean loses the h-term update discount sharding buys (its local
      relabels pay the tall shard's height) and serializes writers that
      could run in parallel.  A shard whose live count exceeds
      ``max_ratio`` × the mean (and ``min_split_leaves``) is split at
      its physical midpoint;
    * **tombstone load** — an arena that is mostly tombstones scans and
      serializes dead slots.  A shard past ``tombstone_ratio`` that is
      also undersized becomes a merge candidate, folding it into an
      adjacent small neighbor so the directory stops charging a whole
      stride of label space to a near-empty arena.

    A third trigger activates only when the caller has live workload
    stats to offer (``plan(report, workload=...)``, a shard id → write
    count mapping such as ``ConcurrentLTree.write_counts()``):

    * **write heat** — a shard absorbing more than ``hot_write_ratio``
      × the mean write count is a lock-contention point *before* it is
      an occupancy problem (every writer routed there serializes on one
      RW lock).  It is split at its midpoint even though its live count
      alone would not trigger, spreading the hot key range over two
      locks.

    ``plan`` returns non-overlapping actions (each shard appears in at
    most one), so an applier can perform them all and re-plan.
    Deterministic: equal reports (and equal workloads) yield equal
    plans — and the applier journals the resulting split/merge records,
    so a WAL replay reproduces a workload-driven rebalance exactly
    without re-running the policy.
    """

    def __init__(self, max_ratio: float = 4.0,
                 min_split_leaves: int = 32,
                 tombstone_ratio: float = 0.5,
                 max_shards: int = 64,
                 min_shards: int = 1,
                 hot_write_ratio: float = 4.0):
        if max_ratio <= 1.0:
            raise ParameterError(
                f"max_ratio must be > 1, got {max_ratio}")
        if min_split_leaves < 2:
            raise ParameterError(
                f"min_split_leaves must be >= 2, got {min_split_leaves}")
        if not 0.0 < tombstone_ratio <= 1.0:
            raise ParameterError(
                f"tombstone_ratio must be in (0, 1], got "
                f"{tombstone_ratio}")
        if hot_write_ratio <= 1.0:
            raise ParameterError(
                f"hot_write_ratio must be > 1, got {hot_write_ratio}")
        self.max_ratio = float(max_ratio)
        self.min_split_leaves = int(min_split_leaves)
        self.tombstone_ratio = float(tombstone_ratio)
        self.max_shards = int(max_shards)
        self.min_shards = max(1, int(min_shards))
        self.hot_write_ratio = float(hot_write_ratio)

    def plan(self, report: Sequence[dict],
             workload: Optional[dict] = None) -> list[tuple]:
        """``[("split", id, at_leaf), ("merge", id_a, id_b), ...]``."""
        if not report:
            return []
        mean_live = sum(row["live"] for row in report) / len(report)
        actions: list[tuple] = []
        claimed: set[int] = set()
        n_shards = len(report)
        for row in report:
            if n_shards + len(actions) >= self.max_shards:
                break
            if row["leaves"] < self.min_split_leaves:
                continue
            if row["live"] > self.max_ratio * max(mean_live, 1.0):
                actions.append(("split", row["id"], row["leaves"] // 2))
                claimed.add(row["id"])

        if workload:
            mean_writes = (sum(workload.get(row["id"], 0)
                               for row in report) / len(report))
            for row in report:
                if n_shards + len(actions) >= self.max_shards:
                    break
                if row["id"] in claimed:
                    continue
                if row["leaves"] < self.min_split_leaves:
                    continue
                if workload.get(row["id"], 0) > \
                        self.hot_write_ratio * max(mean_writes, 1.0):
                    actions.append(("split", row["id"],
                                    row["leaves"] // 2))
                    claimed.add(row["id"])

        def undersized(row: dict) -> bool:
            if row["live"] < mean_live / self.max_ratio:
                return True
            return (row["leaves"] > 0 and
                    row["tombstones"] > self.tombstone_ratio *
                    row["leaves"] and row["live"] < mean_live)

        merges_left = n_shards - self.min_shards
        for left, right in zip(report, report[1:]):
            if merges_left <= 0:
                break
            if left["id"] in claimed or right["id"] in claimed:
                continue
            if undersized(left) and undersized(right):
                actions.append(("merge", left["id"], right["id"]))
                claimed.add(left["id"])
                claimed.add(right["id"])
                merges_left -= 1
        return actions


class ShardedCompactLTree:
    """Ordered labeling over per-shard compact arenas (see module doc).

    Parameters
    ----------
    params:
        The ``(f, s, label_base)`` set every shard arena uses.
    stats:
        Counter sink shared by all shards (aggregate semantics match
        the flat engine).
    violator_policy:
        Passed through to every shard arena.
    n_shards:
        Number of contiguous arenas :meth:`bulk_load` splits into (the
        actual count is capped by the item count; at least one shard
        always exists).
    shard_stats:
        ``True`` gives every shard its *own* ``Counters`` (exposed as
        :attr:`shard_counters`) instead of the shared sink — the probe
        for the write-isolation guarantee.

    Examples
    --------
    >>> from repro.core.params import LTreeParams
    >>> tree = ShardedCompactLTree(LTreeParams(f=4, s=2), n_shards=2)
    >>> leaves = tree.bulk_load("abcdef")
    >>> [tree.num(leaf) for leaf in leaves]    # stride = 5**2 = 25
    [0, 1, 5, 25, 26, 30]
    >>> leaves[3]                      # handles are (shard_id, slot)
    (1, 0)
    """

    #: when True, routed updates do *not* bump the stride inline; the
    #: caller promises to call :meth:`grow_directory` itself (see that
    #: method).  A class attribute so every construction path —
    #: including :meth:`load`'s ``__new__`` — starts with inline growth.
    defer_directory_growth = False

    #: optional ``threading.Lock`` serializing directory *membership*
    #: commits (split/merge) against the owner's own stride bumps; the
    #: concurrent wrapper installs its directory latch here.  ``None``
    #: (the single-threaded default) commits directly.  A class
    #: attribute for the same ``__new__`` reason as above.
    directory_mutex = None

    def __init__(self, params: LTreeParams, stats: Counters = NULL_COUNTERS,
                 violator_policy: str = "highest",
                 n_shards: int = DEFAULT_N_SHARDS,
                 shard_stats: bool = False):
        if n_shards < 1:
            raise ParameterError(
                f"n_shards must be >= 1, got {n_shards}")
        self.params = params
        self.stats = stats
        self.violator_policy = violator_policy
        self.n_shards = n_shards
        self._track_shards = bool(shard_stats)
        #: stride bumps performed because one shard outgrew the
        #: directory height (the only root-level "rebuild"; O(1) each)
        self.directory_rebuilds = 0
        #: online rebalance actions performed
        self.shard_splits = 0
        self.shard_merges = 0
        #: old (id, slot) → new (id, slot) moves across every surviving
        #: epoch.  Grow-only between bulk loads/compactions (readers
        #: holding an old directory resolve through it lock-free);
        #: replaced wholesale when handles are invalidated anyway.
        self._forwarding: dict[tuple[int, int], tuple[int, int]] = {}
        self._next_shard_id = 1
        self._dir = _Directory(0, (0,), {0: self._fresh_shard()},
                               params.base)

    # ------------------------------------------------------------------
    # shard plumbing
    # ------------------------------------------------------------------
    def _fresh_shard(self) -> _Shard:
        sink = Counters() if self._track_shards else self.stats
        return _Shard(CompactLTree(self.params, sink,
                                   violator_policy=self.violator_policy),
                      sink)

    @property
    def _shards(self) -> list[_Shard]:
        """The arenas in document order (compat view of the directory)."""
        d = self._dir
        return [d.shards[sid] for sid in d.ids]

    @property
    def epoch(self) -> int:
        """Directory membership version; bumps on bulk load, split,
        merge, and compact (not on stride growth)."""
        return self._dir.epoch

    @property
    def shard_ids(self) -> tuple[int, ...]:
        """Stable shard ids in document order."""
        return self._dir.ids

    @property
    def shard_counters(self) -> list[Counters]:
        """Per-shard counter sinks in document order (the shared sink
        repeated unless the tree was built with ``shard_stats=True``)."""
        d = self._dir
        return [d.shards[sid].stats for sid in d.ids]

    @property
    def shard_count(self) -> int:
        """Number of arenas currently in the directory."""
        return len(self._dir.ids)

    @property
    def materialized_shards(self) -> list[int]:
        """Ids whose arena is deserialized (all, unless lazily loaded)."""
        d = self._dir
        return [sid for sid in d.ids if not d.shards[sid].is_lazy]

    @property
    def directory_height(self) -> int:
        """Height of the tallest shard — the stride exponent."""
        return self._dir.height

    @property
    def stride(self) -> int:
        """Label-space width reserved per shard: ``base ** dir_height``."""
        return self._dir.stride

    @property
    def label_space(self) -> int:
        """Exclusive upper bound of the global label universe."""
        d = self._dir
        return len(d.ids) * d.stride

    def has_shard(self, shard_id: int) -> bool:
        """Whether ``shard_id`` names a current-epoch shard."""
        return shard_id in self._dir.shards

    def shard_position(self, shard_id: int) -> int:
        """Document-order position of a current shard id."""
        position = self._dir.positions.get(shard_id)
        if position is None:
            raise ValueError(f"no shard with id {shard_id}")
        return position

    def _shard_by_id(self, shard_id: int) -> _Shard:
        shard = self._dir.shards.get(shard_id)
        if shard is None:
            raise ValueError(f"no shard with id {shard_id}")
        return shard

    def _install(self, directory: _Directory) -> None:
        """Swap the directory, serialized against concurrent commits
        when a :attr:`directory_mutex` is installed."""
        mutex = self.directory_mutex
        if mutex is None:
            self._dir = directory
        else:
            with mutex:
                self._dir = directory

    def _refresh_directory(self) -> None:
        """Rebuild the directory with a recomputed stride and a +1
        epoch (bulk load, compact, load)."""
        d = self._dir
        self._dir = _Directory(d.epoch + 1, d.ids, d.shards,
                               self.params.base)

    def _grow_directory(self, shard: _Shard) -> None:
        """Bump the stride when ``shard`` outgrew the directory height."""
        if self.defer_directory_growth:
            return
        d = self._dir
        if shard.height > d.height:
            self._install(_Directory(d.epoch, d.ids, d.shards,
                                     self.params.base,
                                     height=shard.height,
                                     positions=d.positions))
            self.directory_rebuilds += 1

    def needs_directory_growth(self, shard_id: int) -> bool:
        """Whether shard ``shard_id`` has outgrown the directory stride.

        Only ever True under ``defer_directory_growth`` (inline growth
        keeps the invariant continuously); the deferring caller checks
        this after each update and performs :meth:`grow_directory`
        under its own serialization.
        """
        d = self._dir
        shard = d.shards.get(shard_id)
        return shard is not None and shard.height > d.height

    def grow_directory(self, shard_id: int) -> bool:
        """Deferred counterpart of the inline stride bump (O(1)).

        Returns True when the stride actually grew.  The caller must
        ensure no reader composes shard ``shard_id``'s labels between
        the update that grew it and this call — e.g. by holding that
        shard's write lock across both — and must serialize this call
        against other directory writers (the concurrent wrapper holds
        its directory latch, which is also this engine's
        :attr:`directory_mutex`, so commits cannot interleave).
        """
        d = self._dir
        shard = d.shards.get(shard_id)
        if shard is None or shard.height <= d.height:
            return False
        # the caller already holds the directory latch: swap directly
        # (the mutex is not reentrant)
        self._dir = _Directory(d.epoch, d.ids, d.shards,
                               self.params.base, height=shard.height,
                               positions=d.positions)
        self.directory_rebuilds += 1
        return True

    # ------------------------------------------------------------------
    # handle resolution (forwarding across epochs)
    # ------------------------------------------------------------------
    def resolve_handle(self, handle: Sequence[int]) -> tuple[int, int]:
        """The current-epoch ``(shard_id, slot)`` a handle denotes.

        A handle minted before any number of splits/merges resolves by
        chasing the forwarding chain until it lands in a live shard;
        a current handle resolves to itself.  Raises ``ValueError``
        when the chain dead-ends (the handle predates a bulk load or
        compact, which invalidate handles outright).
        """
        d = self._dir
        sid, slot = handle[0], handle[1]
        if sid in d.shards:
            return (sid, slot)
        forwarding = self._forwarding
        while sid not in d.shards:
            bridge = forwarding.get((sid, slot))
            if bridge is None:
                raise ValueError(
                    f"handle {(handle[0], handle[1])!r} names unknown "
                    f"shard {sid}")
            sid, slot = bridge
        return (sid, slot)

    def _locate(self, handle: Sequence[int]
                ) -> tuple[_Directory, int, _Shard, int]:
        """Resolve + fetch: ``(directory, shard_id, shard, slot)``.

        The directory is captured *once* so the caller's position and
        stride reads agree with the shard it touches.
        """
        d = self._dir
        sid, slot = handle[0], handle[1]
        shard = d.shards.get(sid)
        while shard is None:
            bridge = self._forwarding.get((sid, slot))
            if bridge is None:
                raise ValueError(
                    f"handle {(handle[0], handle[1])!r} names unknown "
                    f"shard {sid}")
            sid, slot = bridge
            shard = d.shards.get(sid)
        return d, sid, shard, slot

    # ------------------------------------------------------------------
    # bulk loading
    # ------------------------------------------------------------------
    def bulk_load(self, payloads: Sequence[Any],
                  boundaries: Optional[Sequence[int]] = None
                  ) -> list[tuple[int, int]]:
        """Split ``payloads`` into contiguous chunks, one arena each.

        Existing handles are invalidated (same contract as the flat
        engine's bulk load — the forwarding table is reset, old handles
        stop resolving).  Returns the new handles in order; shard ids
        restart at ``0..k-1`` in document order, so until the first
        split or merge an id equals its position.

        By default the items are split into ``n_shards`` balanced
        chunks.  ``boundaries`` overrides the split with explicit chunk
        *sizes* (each an integer >= 1, summing to ``len(payloads)``):
        chunk ``k`` becomes shard ``k``'s arena.  Invalid boundaries —
        wrong types, empty, non-positive, or not covering the item
        count — raise :class:`~repro.errors.ParameterError` loudly
        instead of building silently misaligned arenas.  This is how
        the document layer aligns shards with top-level document
        children — every subtree's tokens land in one arena, so a
        subtree edit provably writes one shard (see
        ``LabeledDocument``).  The number of boundaries decides the
        shard count, ``n_shards`` is only the default split's target.
        """
        items = list(payloads)
        if boundaries is not None:
            sizes = []
            for size in boundaries:
                # bool is an int subclass, but a True/False "size" is a
                # caller bug; floats and the like would silently
                # truncate into misaligned arenas
                if isinstance(size, bool):
                    raise ParameterError(
                        f"boundary sizes must be integers, got {size!r} "
                        f"(bool)")
                try:
                    sizes.append(operator.index(size))
                except TypeError:
                    raise ParameterError(
                        f"boundary sizes must be integers, got "
                        f"{size!r} ({type(size).__name__})") from None
            if not sizes:
                raise ParameterError("boundaries must name at least one "
                                     "chunk")
            if any(size < 1 for size in sizes):
                raise ParameterError(
                    f"every boundary chunk needs >= 1 item, got {sizes}")
            if sum(sizes) != len(items):
                raise ParameterError(
                    f"boundaries cover {sum(sizes)} items, bulk load has "
                    f"{len(items)}")
        else:
            shard_count = min(self.n_shards, len(items)) or 1
            sizes = []
            start = 0
            for rank in range(shard_count):
                size = (len(items) - start) // (shard_count - rank)
                sizes.append(size)
                start += size
        d = self._dir
        shards = {sid: self._fresh_shard() for sid in range(len(sizes))}
        handles: list[tuple[int, int]] = []
        start = 0
        for sid, size in enumerate(sizes):
            slots = shards[sid].tree.bulk_load(items[start:start + size])
            handles.extend((sid, slot) for slot in slots)
            start += size
        self._forwarding = {}
        self._next_shard_id = len(sizes)
        self._install(_Directory(d.epoch + 1, range(len(sizes)), shards,
                                 self.params.base))
        return handles

    # ------------------------------------------------------------------
    # routed updates (all shard-local)
    # ------------------------------------------------------------------
    def insert_after(self, handle: Sequence[int],
                     payload: Any) -> tuple[int, int]:
        _d, sid, shard, slot = self._locate(handle)
        leaf = shard.materialize().insert_after(slot, payload)
        shard.write_version += 1
        self._grow_directory(shard)
        return (sid, leaf)

    def insert_before(self, handle: Sequence[int],
                      payload: Any) -> tuple[int, int]:
        _d, sid, shard, slot = self._locate(handle)
        leaf = shard.materialize().insert_before(slot, payload)
        shard.write_version += 1
        self._grow_directory(shard)
        return (sid, leaf)

    def append(self, payload: Any) -> tuple[int, int]:
        d = self._dir
        sid = d.ids[-1]
        shard = d.shards[sid]
        leaf = shard.materialize().append(payload)
        shard.write_version += 1
        self._grow_directory(shard)
        return (sid, leaf)

    def prepend(self, payload: Any) -> tuple[int, int]:
        d = self._dir
        sid = d.ids[0]
        shard = d.shards[sid]
        leaf = shard.materialize().prepend(payload)
        shard.write_version += 1
        self._grow_directory(shard)
        return (sid, leaf)

    def insert_run_after(self, handle: Sequence[int],
                         payloads: Sequence[Any]) -> list[tuple[int, int]]:
        """§4.1 batch insert — the whole run lands in the anchor's shard."""
        _d, sid, shard, slot = self._locate(handle)
        leaves = shard.materialize().insert_run_after(slot, payloads)
        shard.write_version += 1
        self._grow_directory(shard)
        return [(sid, leaf) for leaf in leaves]

    def insert_run_before(self, handle: Sequence[int],
                          payloads: Sequence[Any]) -> list[tuple[int, int]]:
        _d, sid, shard, slot = self._locate(handle)
        leaves = shard.materialize().insert_run_before(slot, payloads)
        shard.write_version += 1
        self._grow_directory(shard)
        return [(sid, leaf) for leaf in leaves]

    def mark_deleted(self, handle: Sequence[int]) -> None:
        """Tombstone a leaf (paper §2.3) — no relabeling anywhere."""
        _d, _sid, shard, slot = self._locate(handle)
        shard.materialize().mark_deleted(slot)
        shard.write_version += 1

    def set_payload(self, handle: Sequence[int], payload: Any) -> None:
        """Reattach a payload; buffered (not materializing) on lazy shards."""
        _d, _sid, shard, slot = self._locate(handle)
        if shard.is_lazy:
            shard.pending[slot] = payload
        else:
            shard.tree.set_payload(slot, payload)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def num(self, handle: Sequence[int]) -> int:
        """Global label: shard prefix ⊕ shard-local label."""
        d, sid, shard, slot = self._locate(handle)
        return d.positions[sid] * d.stride + shard.num(slot)

    def payload(self, handle: Sequence[int]) -> Any:
        _d, _sid, shard, slot = self._locate(handle)
        if shard.is_lazy and slot in shard.pending:
            return shard.pending[slot]
        return shard.materialize().payload(slot)

    def is_leaf(self, handle: Sequence[int]) -> bool:
        _d, _sid, shard, slot = self._locate(handle)
        return shard.materialize().is_leaf(slot)

    def is_deleted(self, handle: Sequence[int]) -> bool:
        _d, _sid, shard, slot = self._locate(handle)
        return shard.is_deleted(slot)

    def iter_leaves(self, include_deleted: bool = True
                    ) -> Iterator[tuple[int, int]]:
        """All leaves in document order, shard by shard.

        With ``include_deleted=False`` (the wrapper's ``handles()``
        path) lazy shards serve their sidecar enumeration and stay
        unmaterialized; including tombstones needs the structure.
        """
        d = self._dir
        for sid in d.ids:
            shard = d.shards[sid]
            if include_deleted:
                slots: Iterator[int] = \
                    shard.materialize().iter_leaves(True)
            else:
                slots = shard.live_slots()
            for slot in slots:
                yield (sid, slot)

    def labels(self, include_deleted: bool = True) -> list[int]:
        """The global label sequence (strictly increasing)."""
        d = self._dir
        stride = d.stride
        out: list[int] = []
        for position, sid in enumerate(d.ids):
            shard = d.shards[sid]
            prefix = position * stride
            if include_deleted:
                tree = shard.materialize()
                out.extend(prefix + tree.num(slot)
                           for slot in tree.iter_leaves(True))
            else:
                out.extend(prefix + value
                           for value in shard.nums_of_live())
        return out

    def payloads(self, include_deleted: bool = True) -> list[Any]:
        return [self.payload(handle)
                for handle in self.iter_leaves(include_deleted)]

    def label_columns(self, shard_id: int
                      ) -> tuple[list[int], Sequence[int]]:
        """``(live_slots, local_label_column)`` of one shard, in bulk.

        The columnar query engine's input hook
        (:mod:`repro.query.columnar`): the slot-indexed local label
        column comes off the shard's flat storage in one decode — a
        lazy shard stays lazy — and the global label of ``slot`` is
        ``shard_prefix(shard_id) + column[slot]``.  One call per shard
        replaces one :meth:`num` round trip per node.  Both halves are
        memoized on the shard's :meth:`shard_version`, so re-extracting
        an unchanged arena costs two dict reads.
        """
        return self._shard_by_id(shard_id).label_columns()

    def shard_version(self, shard_id: int) -> int:
        """Write version of one arena (bumps on every label-affecting
        mutation; fresh split/merge/bulk-load products restart at 1)."""
        return self._shard_by_id(shard_id).write_version

    def shard_versions(self) -> dict[int, int]:
        """``shard id -> write version`` for the whole directory — the
        engine-level dirty-shard report incremental columnar consumers
        diff between extractions (the concurrent wrapper's snapshot
        epoch serves the same role on the lock-free path)."""
        d = self._dir
        return {sid: d.shards[sid].write_version for sid in d.ids}

    def shard_prefix(self, shard_id: int) -> int:
        """Global-label prefix of one shard: ``position * stride``."""
        d = self._dir
        position = d.positions.get(shard_id)
        if position is None:
            raise ValueError(f"no shard with id {shard_id}")
        return position * d.stride

    def label_map(self) -> dict[tuple[int, int], int]:
        """Live handle → global label, composed across every shard.

        One bulk column decode per shard — lazy shards stay lazy — so
        the document layer's cached label vector costs the same flat
        extraction it does on the unsharded engine.
        """
        d = self._dir
        stride = d.stride
        mapping: dict[tuple[int, int], int] = {}
        for position, sid in enumerate(d.ids):
            shard = d.shards[sid]
            prefix = position * stride
            mapping.update(
                ((sid, slot), prefix + value)
                for slot, value in zip(shard.live_slots(),
                                       shard.nums_of_live()))
        return mapping

    def find_leaf(self, num: int) -> Optional[tuple[int, int]]:
        """The leaf holding global label ``num``: the shard position is
        ``num // stride``, the rest an O(height) in-shard descent."""
        if num < 0:
            return None
        d = self._dir
        position, local = divmod(num, d.stride)
        if position >= len(d.ids):
            return None
        sid = d.ids[position]
        slot = d.shards[sid].materialize().find_leaf(local)
        return None if slot is None else (sid, slot)

    @property
    def n_leaves(self) -> int:
        """Leaves across all shards, tombstones included."""
        d = self._dir
        return sum(d.shards[sid].n_leaves for sid in d.ids)

    def tombstone_count(self) -> int:
        d = self._dir
        return sum(d.shards[sid].tombstone_count() for sid in d.ids)

    def shard_report(self) -> list[dict]:
        """Per-shard occupancy stats in document order.

        One row per shard: ``id``, ``position``, ``height``, ``leaves``
        (tombstones included), ``live``, ``tombstones``,
        ``arena_bytes`` (payload-free image size), ``materialized``,
        ``version`` (the dirty-shard write counter),
        and — when the tree was built with ``shard_stats=True`` — that
        shard's full ``counters`` dict (relabels, count updates, …).
        Never materializes a lazy shard.  This is the input
        :class:`RebalancePolicy` plans from.
        """
        d = self._dir
        rows = []
        for position, sid in enumerate(d.ids):
            shard = d.shards[sid]
            leaves = shard.n_leaves
            tombstones = shard.tombstone_count()
            rows.append({
                "id": sid,
                "position": position,
                "height": shard.height,
                "leaves": leaves,
                "live": leaves - tombstones,
                "tombstones": tombstones,
                "arena_bytes": shard.arena_bytes(),
                "materialized": not shard.is_lazy,
                "version": shard.write_version,
                "counters": shard.stats.as_dict()
                if self._track_shards else None,
            })
        return rows

    # ------------------------------------------------------------------
    # online rebalancing (split / merge / policy)
    # ------------------------------------------------------------------
    def _claim_ids(self, explicit: Optional[Sequence[int]],
                   count: int, shards: dict[int, _Shard]) -> list[int]:
        """Allocate ``count`` fresh shard ids (or adopt explicit ones —
        the WAL replay path, which must mint the ids the original run
        minted).  Call under :attr:`directory_mutex` when concurrent."""
        if explicit is None:
            ids = list(range(self._next_shard_id,
                             self._next_shard_id + count))
        else:
            ids = [int(sid) for sid in explicit]
            if len(ids) != count or len(set(ids)) != count:
                raise ParameterError(
                    f"need {count} distinct new shard ids, got "
                    f"{explicit!r}")
            clashes = [sid for sid in ids if sid in shards]
            if clashes:
                raise ParameterError(
                    f"new shard ids {clashes} are already in the "
                    f"directory")
        self._next_shard_id = max(self._next_shard_id, max(ids) + 1)
        return ids

    def _clone_leaf_run(self, tree: CompactLTree, slots: Sequence[int]
                        ) -> tuple[_Shard, dict[int, int]]:
        """A fresh arena holding ``slots``'s leaves (tombstones and
        payloads preserved); returns it plus the old→new slot map."""
        shard = self._fresh_shard()
        new_slots = shard.tree.bulk_load(
            [tree.payload(slot) for slot in slots])
        slot_map: dict[int, int] = {}
        for old_slot, new_slot in zip(slots, new_slots):
            if tree.is_deleted(old_slot):
                shard.tree.mark_deleted(new_slot)
            slot_map[old_slot] = new_slot
        return shard, slot_map

    def split_shard(self, shard_id: int, at_leaf: int,
                    new_ids: Optional[Sequence[int]] = None,
                    on_commit: Optional[Any] = None
                    ) -> tuple[int, int]:
        """Cut shard ``shard_id`` into two arenas at leaf ``at_leaf``.

        ``at_leaf`` indexes the shard's leaf sequence in document order
        *including tombstones* (``1 <= at_leaf < leaves``): the first
        ``at_leaf`` leaves become the left arena, the rest the right.
        Both new arenas are fresh bulk loads of their runs — short
        again, so the stride can shrink back and updates regain the
        h-term discount — while every other shard keeps its arena,
        bytes and counters untouched.  Handles into the old shard keep
        resolving through the forwarding table.  Returns the two new
        shard ids (``new_ids`` fixes them explicitly — the WAL replay
        path).

        Concurrency contract: the caller owns writes to ``shard_id``
        (the concurrent wrapper holds its write lock); the directory
        swap itself is serialized via :attr:`directory_mutex`, so other
        shards' writers and even a concurrent rebalance of *different*
        shards proceed untouched.  ``on_commit(new_ids)``, when given,
        runs inside the commit — after the ids are claimed, *before*
        the new directory becomes visible — which is where the
        concurrent wrapper registers the new shards' locks and journals
        the WAL record, so no op on a new shard can ever be journaled
        ahead of the split that created it.  If it raises, the split is
        abandoned: the directory is untouched (the claimed ids are
        simply consumed).
        """
        shard = self._shard_by_id(shard_id)
        tree = shard.materialize()
        slots = list(tree.iter_leaves(include_deleted=True))
        if not 1 <= at_leaf < len(slots):
            raise ParameterError(
                f"split point {at_leaf} outside 1..{len(slots) - 1} "
                f"(shard {shard_id} holds {len(slots)} leaves)")
        builds = [self._clone_leaf_run(tree, slots[:at_leaf]),
                  self._clone_leaf_run(tree, slots[at_leaf:])]
        granted: list[int] = []

        def commit() -> None:
            current = self._dir
            position = current.positions.get(shard_id)
            if position is None:
                raise InvariantViolation(
                    f"shard {shard_id} vanished mid-split (caller must "
                    f"hold its write lock)")
            ids = self._claim_ids(new_ids, 2, current.shards)
            granted.extend(ids)
            if on_commit is not None:
                on_commit(tuple(ids))
            for (_shard, slot_map), sid in zip(builds, ids):
                for old_slot, new_slot in slot_map.items():
                    self._forwarding[(shard_id, old_slot)] = \
                        (sid, new_slot)
            order = current.ids[:position] + tuple(ids) + \
                current.ids[position + 1:]
            shards = dict(current.shards)
            del shards[shard_id]
            for (new_shard, _), sid in zip(builds, ids):
                shards[sid] = new_shard
            self.shard_splits += 1
            self._dir = _Directory(current.epoch + 1, order, shards,
                                   self.params.base)

        mutex = self.directory_mutex
        if mutex is None:
            commit()
        else:
            with mutex:
                commit()
        return (granted[0], granted[1])

    def merge_shards(self, id_a: int, id_b: int,
                     new_id: Optional[int] = None,
                     on_commit: Optional[Any] = None) -> int:
        """Fold two *adjacent* shards into one fresh arena.

        ``id_a`` and ``id_b`` must occupy neighboring document-order
        positions (either order); their leaf runs — tombstones included
        — concatenate into one new arena and both old ids forward to
        it, so handles into either keep resolving.  Returns the new
        shard id (``new_id`` fixes it — the WAL replay path).  Same
        concurrency contract — and the same pre-visibility
        ``on_commit(new_id)`` hook — as :meth:`split_shard`, with both
        shards' write locks owned by the caller.
        """
        d = self._dir
        for sid in (id_a, id_b):
            if sid not in d.shards:
                raise ValueError(f"no shard with id {sid}")
        if d.positions[id_a] > d.positions[id_b]:
            id_a, id_b = id_b, id_a
        if d.positions[id_b] != d.positions[id_a] + 1:
            raise ParameterError(
                f"shards {id_a} and {id_b} are not adjacent (positions "
                f"{d.positions[id_a]} and {d.positions[id_b]})")
        tree_a = d.shards[id_a].materialize()
        tree_b = d.shards[id_b].materialize()
        slots_a = list(tree_a.iter_leaves(include_deleted=True))
        slots_b = list(tree_b.iter_leaves(include_deleted=True))
        merged = self._fresh_shard()
        new_slots = merged.tree.bulk_load(
            [tree_a.payload(slot) for slot in slots_a] +
            [tree_b.payload(slot) for slot in slots_b])
        maps: dict[int, dict[int, int]] = {id_a: {}, id_b: {}}
        for index, new_slot in enumerate(new_slots):
            if index < len(slots_a):
                source, old_slot = id_a, slots_a[index]
                deleted = tree_a.is_deleted(old_slot)
            else:
                source, old_slot = id_b, slots_b[index - len(slots_a)]
                deleted = tree_b.is_deleted(old_slot)
            if deleted:
                merged.tree.mark_deleted(new_slot)
            maps[source][old_slot] = new_slot
        granted: list[int] = []

        def commit() -> None:
            current = self._dir
            pos_a = current.positions.get(id_a)
            pos_b = current.positions.get(id_b)
            if pos_a is None or pos_b is None or pos_b != pos_a + 1:
                raise InvariantViolation(
                    f"shards {id_a}/{id_b} moved mid-merge (caller "
                    f"must hold both write locks)")
            sid = self._claim_ids(
                None if new_id is None else [new_id], 1,
                current.shards)[0]
            granted.append(sid)
            if on_commit is not None:
                on_commit(sid)
            for source, slot_map in maps.items():
                for old_slot, new_slot in slot_map.items():
                    self._forwarding[(source, old_slot)] = (sid, new_slot)
            order = current.ids[:pos_a] + (sid,) + \
                current.ids[pos_b + 1:]
            shards = dict(current.shards)
            del shards[id_a]
            del shards[id_b]
            shards[sid] = merged
            self.shard_merges += 1
            self._dir = _Directory(current.epoch + 1, order, shards,
                                   self.params.base)

        mutex = self.directory_mutex
        if mutex is None:
            commit()
        else:
            with mutex:
                commit()
        return granted[0]

    def rebalance(self, policy: Optional[RebalancePolicy] = None,
                  max_rounds: int = 4) -> list[dict]:
        """Apply a :class:`RebalancePolicy` until its plan is empty.

        Plans from :meth:`shard_report`, applies every action, re-plans
        — at most ``max_rounds`` times (a freshly split giant can still
        be oversized).  Returns the actions performed, each as a dict
        recording the ids involved (the shape the concurrent service
        journals).  Single-threaded convenience; under concurrency use
        :meth:`repro.concurrent.engine.ConcurrentLTree.rebalance`,
        which takes the involved shards' locks per action.
        """
        policy = policy or RebalancePolicy()
        performed: list[dict] = []
        for _ in range(max_rounds):
            actions = policy.plan(self.shard_report())
            if not actions:
                break
            for action in actions:
                if action[0] == "split":
                    new_ids = self.split_shard(action[1], action[2])
                    performed.append({"action": "split",
                                      "shard": action[1],
                                      "at": action[2],
                                      "new": list(new_ids)})
                else:
                    new_id = self.merge_shards(action[1], action[2])
                    performed.append({"action": "merge",
                                      "shards": [action[1], action[2]],
                                      "new": new_id})
        return performed

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def compact(self, params: Optional[LTreeParams] = None
                ) -> dict[tuple[int, int], tuple[int, int]]:
        """Vacuum tombstones shard by shard; old→new handle mapping.

        Shards are rebuilt independently (ids never change), then the
        directory stride is recomputed — it can shrink, which is the
        one relabel-like event compaction implies, and it is still
        O(1) because global labels are composed on read.  Like the flat
        engine's compact, this invalidates outstanding handles (the
        returned mapping is the bridge); the forwarding table is reset
        with them.
        """
        if params is not None:
            self.params = params
        d = self._dir
        mapping: dict[tuple[int, int], tuple[int, int]] = {}
        for sid in d.ids:
            local = d.shards[sid].materialize().compact(params)
            mapping.update(((sid, old), (sid, new))
                           for old, new in local.items())
        self._forwarding = {}
        self._refresh_directory()
        return mapping

    def shard_image(self, shard_id: int) -> tuple[Any, list[int], dict]:
        """``(label image, live leaf slots, shape meta)`` of one shard.

        The image is the same payload-free ``LTREEARR`` byte image the
        lazy-reopen path serves label reads from; a still-lazy shard
        hands back its existing image with **zero** copies or
        deserialization.  This is the pinning hook snapshot readers use
        (:meth:`repro.concurrent.engine.ConcurrentLTree.snapshot`): the
        returned triple is immutable with respect to later writes, so a
        reader can answer label/order/containment queries off it with
        no locks against live writers.
        """
        shard = self._shard_by_id(shard_id)
        meta = {"height": shard.height, "n_leaves": shard.n_leaves,
                "tombstones": shard.tombstone_count()}
        if shard.is_lazy:
            image = shard.image
            if not isinstance(image, bytes):
                # a memoryview into the store's mmap aliases the file:
                # a later save/checkpoint rewriting the span in place
                # would mutate (or tear) the "immutable" pin under a
                # zero-lock reader.  The pin must own its bytes.
                image = bytes(image)
            return image, list(shard.live), meta
        return (shard.tree.to_bytes(include_payloads=False),
                list(shard.tree.iter_leaves(include_deleted=False)),
                meta)

    # ------------------------------------------------------------------
    # persistence (one LTREEARR blob span per shard + manifest)
    # ------------------------------------------------------------------
    def save(self, store: Any, name: str = "scheme",
             include_payloads: bool = True,
             extra_blobs: Optional[dict[str, bytes]] = None,
             reclaim: bool = True) -> None:
        """Persist every arena as its own blob span plus a manifest.

        Blob layout under ``name``: ``{name}.s{id}`` holds shard
        ``id``'s ``LTREEARR`` image, ``{name}.s{id}.leaves`` its
        live-leaf sidecar, and ``{name}`` the JSON manifest — which
        also carries the directory (id order, epoch, forwarding table,
        next unused id), so a reopen resolves old-epoch handles exactly
        as this tree would.  On a store with batched puts
        (:meth:`PageStore.put_blobs`) the whole save — arenas,
        sidecars, manifest, stale-shard cleanup — lands under one
        atomic catalog flip; with ``reclaim`` (the default, honored
        when the store supports it) the flip also reclaims superseded
        spans and never overwrites a page the *previous* catalog
        references, so a crash at any byte of the save — including
        mid-rebalance — reopens bit-identically on the old epoch.  On a
        plain ``put_blob`` store the manifest is written last, so a
        reader never sees it pointing at *missing* blobs; there the
        in-place span rewrite window remains, which is why every
        manifest entry carries a CRC32 of its image and sidecar and
        :meth:`load` fails loudly on a mismatch instead of
        deserializing torn bytes.

        A still-lazy shard is copied image-for-image without
        deserializing — an open → edit-one-subtree → save cycle reads
        and parses exactly one arena — but only when the copy would be
        faithful: a lazy shard is materialized first when its image's
        payload flag disagrees with ``include_payloads``, or when
        payloads were reattached via :meth:`set_payload` while lazy and
        ``include_payloads`` asks for them (buffered payloads are
        irrelevant when payloads are not persisted, so the document
        layer's ``include_payloads=False`` saves stay fully lazy).

        ``extra_blobs`` ride along inside the *same* atomic catalog
        flip on a batched store (a ``ConcurrentDocument`` checkpoint
        stores its WAL watermark this way, so "engine state saved" and
        "checkpoint sequence recorded" can never be observed apart); on
        a plain ``put_blob`` store they are written just before the
        manifest.
        """
        d = self._dir
        entries = []
        puts: dict[str, bytes] = {}
        for sid in d.ids:
            shard = d.shards[sid]
            arena_name = f"{name}.s{sid}"
            leaves_name = f"{name}.s{sid}.leaves"
            if shard.is_lazy:
                has_payloads = bool(shard.header.flags &
                                    _FLAG_HAS_PAYLOADS)
                if has_payloads != include_payloads or \
                        (include_payloads and shard.pending):
                    shard.materialize()
            if shard.is_lazy:
                raw = bytes(shard.image)
                live = list(shard.live)
            else:
                raw = shard.tree.to_bytes(
                    include_payloads=include_payloads)
                live = list(shard.tree.iter_leaves(
                    include_deleted=False))
            raw_leaves = _pack_int64(live)
            puts[arena_name] = raw
            puts[leaves_name] = raw_leaves
            entries.append({
                "id": sid,
                "blob": arena_name,
                "leaves": leaves_name,
                "height": shard.height,
                "n_leaves": shard.n_leaves,
                "tombstones": shard.tombstone_count(),
                "live": len(live),
                "checksum": zlib.crc32(raw),
                "leaves_checksum": zlib.crc32(raw_leaves),
            })
        manifest = {
            "format": MANIFEST_FORMAT_VERSION,
            "kind": MANIFEST_KIND,
            "f": self.params.f,
            "s": self.params.s,
            "label_base": self.params.base,
            "violator_policy": self.violator_policy,
            "n_shards": self.n_shards,
            "epoch": d.epoch,
            "next_shard_id": self._next_shard_id,
            "directory_height": d.height,
            "directory_rebuilds": self.directory_rebuilds,
            "shard_splits": self.shard_splits,
            "shard_merges": self.shard_merges,
            "forwarding": [[old_id, old_slot, new_id, new_slot]
                           for (old_id, old_slot), (new_id, new_slot)
                           in self._forwarding.items()],
            "shards": entries,
        }
        manifest_raw = json.dumps(manifest).encode("utf-8")
        # blobs of shard ids this tree no longer has (a re-bulk_load
        # can shrink the shard count; a split/merge retires ids) must
        # be dropped, or their spans leak past every vacuum.  The
        # catalog is scanned rather than probed id-by-id: a cleanup
        # interrupted by a crash can leave *gaps* in the stale id
        # sequence, and an arena can survive without its sidecar (or
        # vice versa)
        stale = []
        live_ids = set(d.ids)
        if hasattr(store, "blobs") and hasattr(store, "delete_blob"):
            prefix = f"{name}.s"
            for blob_name in list(store.blobs()):
                if not blob_name.startswith(prefix):
                    continue
                tail = blob_name[len(prefix):]
                if tail.endswith(".leaves"):
                    tail = tail[:-len(".leaves")]
                if tail.isdigit() and int(tail) not in live_ids:
                    stale.append(blob_name)
        if extra_blobs:
            overlap = set(extra_blobs) & (set(puts) | {name})
            if overlap:
                raise ParameterError(
                    f"extra_blobs collide with the scheme's own blob "
                    f"names: {sorted(overlap)}")
            puts.update(extra_blobs)
        failpoint("sharded:save:pre-put", blob=name)
        if hasattr(store, "put_blobs"):
            # one catalog flip: arenas, sidecars, manifest and stale-blob
            # drops become visible atomically (and under sync=True the
            # whole save costs one fsync pair, not one per blob)
            puts[name] = manifest_raw
            if reclaim and "reclaim" in inspect.signature(
                    store.put_blobs).parameters:
                store.put_blobs(puts, delete=stale, reclaim=True)
            else:
                store.put_blobs(puts, delete=stale)
        else:
            for blob_name, data in puts.items():
                store.put_blob(blob_name, data)
            # manifest last, so a reader never sees it pointing at
            # blobs that were not written yet; stale blobs dropped
            # last of all, because deleting them before the flip would
            # open a crash window in which the old manifest still
            # points at them and the store cannot reopen
            store.put_blob(name, manifest_raw)
            for blob_name in stale:
                store.delete_blob(blob_name)

    @classmethod
    def load(cls, store: Any, name: str = "scheme",
             stats: Counters = NULL_COUNTERS, lazy: bool = True,
             prefer_mmap: bool = True,
             shard_stats: bool = False) -> "ShardedCompactLTree":
        """Reopen a tree saved by :meth:`save`.

        With ``lazy`` (default) only the manifest and the per-shard
        sidecars are decoded; each arena is fetched as a byte view
        (mmap fast path when the store offers it) and deserialized on
        first write — see the module docstring.  ``lazy=False``
        materializes everything immediately.  Format-1 manifests (the
        pre-directory layout) load with ids equal to their ranks.
        """
        manifest = json.loads(bytes(store.get_blob(name)).decode("utf-8"))
        if manifest.get("kind") != MANIFEST_KIND:
            raise ParameterError(
                f"blob {name!r} is not a sharded-ltree manifest "
                f"(kind={manifest.get('kind')!r})")
        if manifest.get("format") not in (1, MANIFEST_FORMAT_VERSION):
            raise ParameterError(
                f"unsupported sharded manifest format "
                f"{manifest.get('format')!r} "
                f"(supported: 1, {MANIFEST_FORMAT_VERSION})")
        params = LTreeParams(f=manifest["f"], s=manifest["s"],
                             label_base=manifest["label_base"])
        tree = cls.__new__(cls)
        tree.params = params
        tree.stats = stats
        tree.violator_policy = manifest["violator_policy"]
        tree.n_shards = manifest["n_shards"]
        tree._track_shards = bool(shard_stats)
        tree.directory_rebuilds = manifest.get("directory_rebuilds", 0)
        tree.shard_splits = manifest.get("shard_splits", 0)
        tree.shard_merges = manifest.get("shard_merges", 0)
        ids: list[int] = []
        shards: dict[int, _Shard] = {}
        for rank, entry in enumerate(manifest["shards"]):
            sid = entry.get("id", rank)
            sink = Counters() if shard_stats else stats
            image = store.get_blob(entry["blob"],
                                   prefer_mmap=prefer_mmap)
            # LTREEARR images carry no checksum of their own, and the
            # page store's in-place span rewrite can tear one mid-save;
            # the manifest's CRC makes that a loud load failure instead
            # of a quietly corrupt arena
            expected_crc = entry.get("checksum")
            if expected_crc is not None and \
                    zlib.crc32(image) != expected_crc:
                raise ParameterError(
                    f"shard image {entry['blob']!r} fails its manifest "
                    f"checksum (torn by a crash mid-save?)")
            header = read_array_header(image)
            if (header.f, header.s, header.label_base,
                    header.violator_policy) != \
                    (params.f, params.s, params.base,
                     tree.violator_policy):
                raise ParameterError(
                    f"shard image {entry['blob']!r} disagrees with the "
                    f"manifest parameters")
            raw_leaves = bytes(store.get_blob(entry["leaves"]))
            leaves_crc = entry.get("leaves_checksum")
            if leaves_crc is not None and \
                    zlib.crc32(raw_leaves) != leaves_crc:
                raise ParameterError(
                    f"sidecar {entry['leaves']!r} fails its manifest "
                    f"checksum (torn by a crash mid-save?)")
            live = _unpack_int64(memoryview(raw_leaves), 0,
                                 len(raw_leaves) // 8)
            # lazy label reads index the raw image with these slots, so
            # a torn or stale sidecar must fail loudly here, not return
            # bytes of some other column as a "label" (the same reason
            # from_bytes validates the free-list)
            if len(live) != entry["live"]:
                raise ParameterError(
                    f"sidecar {entry['leaves']!r} holds {len(live)} "
                    f"slots, manifest says {entry['live']}")
            image_view = memoryview(image)
            deleted_offset = header.deleted_offset
            if any(not 0 <= slot < header.n_slots or
                   image_view[deleted_offset + slot]
                   for slot in live):
                raise ParameterError(
                    f"sidecar {entry['leaves']!r} names slots outside "
                    f"the {header.n_slots}-slot arena or tombstoned "
                    f"leaves")
            shard = _Shard.lazy(image, live, entry, sink)
            if not lazy:
                shard.materialize()
            ids.append(sid)
            shards[sid] = shard
        if not shards:
            raise ParameterError(
                f"manifest {name!r} describes zero shards")
        if len(shards) != len(ids):
            raise ParameterError(
                f"manifest {name!r} repeats shard ids")
        tree._forwarding = {
            (entry[0], entry[1]): (entry[2], entry[3])
            for entry in manifest.get("forwarding", ())}
        tree._next_shard_id = manifest.get("next_shard_id",
                                           max(ids) + 1)
        tree._dir = _Directory(manifest.get("epoch", 0), ids, shards,
                               params.base,
                               height=manifest["directory_height"])
        return tree

    # ------------------------------------------------------------------
    # validation (tests)
    # ------------------------------------------------------------------
    def validate(self, check_occupancy: bool = False) -> None:
        """Per-shard structural invariants plus the directory's own.

        Materializes every shard (tests only).  Checks each arena with
        :meth:`CompactLTree.validate`, that the stride covers the
        tallest shard, that global labels strictly increase across
        shard boundaries, that the directory's position map matches its
        id order, and that every forwarding chain terminates in a live
        shard at a valid slot.
        """
        d = self._dir
        height = max((d.shards[sid].height for sid in d.ids), default=1)
        if self.params.base ** max(height, 1) != d.stride:
            raise InvariantViolation(
                f"stride {d.stride} does not match the tallest "
                f"shard (height {height})")
        for position, sid in enumerate(d.ids):
            if d.positions.get(sid) != position:
                raise InvariantViolation(
                    f"directory position map disagrees with id order "
                    f"at {sid}")
            d.shards[sid].materialize().validate(check_occupancy)
        if len(set(d.ids)) != len(d.ids):
            raise InvariantViolation("directory repeats shard ids")
        if d.ids and self._next_shard_id <= max(d.ids):
            raise InvariantViolation(
                f"next_shard_id {self._next_shard_id} collides with "
                f"live ids")
        labels = self.labels()
        for left, right in zip(labels, labels[1:]):
            if left >= right:
                raise InvariantViolation(
                    f"global labels not strictly increasing: "
                    f"{left} >= {right}")
        for origin, bridge in self._forwarding.items():
            sid, slot = bridge
            seen = 0
            while sid not in d.shards:
                nxt = self._forwarding.get((sid, slot))
                if nxt is None:
                    raise InvariantViolation(
                        f"forwarding chain from {origin} dead-ends at "
                        f"({sid}, {slot})")
                sid, slot = nxt
                seen += 1
                if seen > len(self._forwarding):
                    raise InvariantViolation(
                        f"forwarding chain from {origin} cycles")
            tree = d.shards[sid].tree
            n_slots = d.shards[sid].header.n_slots \
                if tree is None else len(tree._num)
            if not 0 <= slot < n_slots:
                raise InvariantViolation(
                    f"forwarding chain from {origin} lands outside "
                    f"shard {sid}'s {n_slots}-slot arena")

    def __repr__(self) -> str:
        d = self._dir
        return (f"ShardedCompactLTree(shards={len(d.ids)}, "
                f"epoch={d.epoch}, stride={d.stride}, "
                f"n_leaves={self.n_leaves}, "
                f"params={self.params.describe()})")


# Imported at the bottom: repro.storage's package __init__ reaches back into
# this module (via labeling -> order -> sharded_list), so the import must run
# after every name that chain needs is defined.
from repro.storage.faults import FAILPOINTS, failpoint  # noqa: E402

FAILPOINTS.declare("sharded:save:pre-put",
                   "arenas/manifest serialized, store put not yet issued")
