"""Parameter tuning (paper Section 3.2).

The paper poses three optimization problems over the tree parameters
``(f, s)`` for an expected document size ``n0``:

1. **Minimize the update cost** — unconstrained minimum of
   ``cost(f, s, n0)``;
2. **Minimize the update cost for a given number of bits** — minimize
   ``cost`` subject to ``bits(f, s, n0) <= beta`` (the paper forms a
   Lagrangian; we solve the inequality-constrained program with SLSQP and
   fall back to the boundary exactly as §3.2 prescribes: take the interior
   optimum if feasible, else the equality-constrained boundary optimum);
3. **Minimize the overall cost of queries and updates** — a workload mix
   where query cost is 1 while labels fit a machine word and grows
   proportionally beyond (``cost.query_comparison_cost``).

The continuous optima are then refined over the integer lattice
(``s >= 2``, ``s | f``, ``f/s >= 2``) because an L-Tree only accepts
integer parameters; :func:`integer_neighborhood` performs that search.

The continuous solvers need numpy and scipy.  Both imports are gated so
the rest of the library (and the no-numpy CI leg) works without them:
:func:`integer_neighborhood` and :func:`cost_grid` are pure Python and
always available, while the ``minimize_*`` entry points raise a
:class:`~repro.errors.ParameterError` naming the missing stack
(``HAS_SCIPY_STACK`` reports availability).
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from typing import Callable, Iterable

try:  # gated: only the continuous optimizers need the scientific stack
    import numpy as np
    from scipy import optimize
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]
    optimize = None  # type: ignore[assignment]

from repro.core import cost as cost_model
from repro.core.params import LTreeParams
from repro.errors import ParameterError

#: True when the continuous ``minimize_*`` solvers can run.
HAS_SCIPY_STACK = optimize is not None


def _require_scipy_stack() -> None:
    if optimize is None:
        raise ParameterError(
            "the continuous tuning optimizers need numpy and scipy, "
            "which are not importable in this environment; the pure "
            "integer search (integer_neighborhood, cost_grid) remains "
            "available")

#: Continuous-domain lower bounds: s > 1 and b = f/s > 1 with margins that
#: keep the logarithms well-conditioned.
_S_MIN = 2.0
_B_MIN = 2.0


@dataclasses.dataclass(frozen=True)
class TuningResult:
    """Outcome of a tuning problem.

    ``continuous`` is the real-valued optimizer solution ``(f, s)``;
    ``params`` is the best feasible integer parameter set near it;
    ``predicted_cost`` / ``predicted_bits`` evaluate the paper's formulas at
    the integer solution.
    """

    continuous: tuple[float, float]
    params: LTreeParams
    predicted_cost: float
    predicted_bits: float
    objective: float

    def describe(self) -> str:
        f_cont, s_cont = self.continuous
        return (f"continuous (f={f_cont:.2f}, s={s_cont:.2f}) -> integer "
                f"{self.params.describe()}: cost={self.predicted_cost:.2f}, "
                f"bits={self.predicted_bits:.1f}")


def _as_variables(f: float, s: float) -> np.ndarray:
    return np.array([f, s], dtype=float)


def _clip(x: np.ndarray) -> tuple[float, float]:
    s = max(float(x[1]), _S_MIN)
    f = max(float(x[0]), s * _B_MIN)
    return f, s


def integer_neighborhood(f: float, s: float, radius: int = 4
                         ) -> Iterable[LTreeParams]:
    """Valid integer parameter sets near a continuous point.

    Enumerates ``s`` around ``round(s)`` and arity ``b`` around
    ``round(f/s)``, yielding each valid ``LTreeParams(f=b*s, s=s)``.
    """
    s_center = max(2, round(s))
    b_center = max(2, round(f / s))
    seen: set[tuple[int, int]] = set()
    for s_int in range(max(2, s_center - radius), s_center + radius + 1):
        for b_int in range(max(2, b_center - radius),
                           b_center + radius + 1):
            f_int = s_int * b_int
            if (f_int, s_int) in seen:
                continue
            seen.add((f_int, s_int))
            yield LTreeParams(f=f_int, s=s_int)


def _refine(continuous: tuple[float, float],
            objective: Callable[[LTreeParams], float],
            feasible: Callable[[LTreeParams], bool],
            n: int) -> TuningResult:
    """Pick the best feasible integer lattice point near the optimum."""
    best: LTreeParams | None = None
    best_value = math.inf
    for params in integer_neighborhood(*continuous):
        if not feasible(params):
            continue
        value = objective(params)
        if value < best_value:
            best = params
            best_value = value
    if best is None:
        raise ParameterError(
            "no feasible integer parameters near the continuous optimum "
            f"{continuous}; relax the constraint")
    return TuningResult(
        continuous=continuous,
        params=best,
        predicted_cost=cost_model.amortized_insert_cost(
            best.f, best.s, n),
        predicted_bits=cost_model.label_bits(best.f, best.s, n),
        objective=best_value,
    )


def minimize_update_cost(n: int, start: tuple[float, float] = (8.0, 2.0)
                         ) -> TuningResult:
    """§3.2 problem 1: unconstrained minimum of the amortized insert cost.

    Solves ``min cost(f, s, n)`` via Nelder–Mead (the objective is smooth
    but its Hessian is ill-conditioned near the ``f/s -> 1`` boundary), then
    refines over integers.
    """
    _require_scipy_stack()
    if n < 2:
        raise ParameterError(f"n must be >= 2, got {n}")

    def objective(x: np.ndarray) -> float:
        f, s = _clip(x)
        return cost_model.amortized_insert_cost(f, s, n)

    result = optimize.minimize(objective, _as_variables(*start),
                               method="Nelder-Mead",
                               options={"xatol": 1e-6, "fatol": 1e-9,
                                        "maxiter": 4000})
    continuous = _clip(result.x)
    return _refine(
        continuous,
        objective=lambda p: cost_model.amortized_insert_cost(p.f, p.s, n),
        feasible=lambda p: True,
        n=n,
    )


def minimize_cost_given_bits(n: int, max_bits: float,
                             start: tuple[float, float] = (8.0, 2.0)
                             ) -> TuningResult:
    """§3.2 problem 2: minimize cost subject to ``bits <= max_bits``.

    Follows the paper's recipe: first minimize unconstrained; if the
    interior optimum satisfies the bit budget it wins, otherwise solve on
    the boundary ``bits = max_bits`` (the Lagrange-multiplier condition),
    here via SLSQP with an inequality constraint.
    """
    _require_scipy_stack()
    if max_bits <= 1:
        raise ParameterError(f"max_bits must exceed 1, got {max_bits}")
    unconstrained = minimize_update_cost(n, start)
    if cost_model.label_bits(*unconstrained.continuous, n) <= max_bits:
        feasible = _refine(
            unconstrained.continuous,
            objective=lambda p: cost_model.amortized_insert_cost(
                p.f, p.s, n),
            feasible=lambda p: cost_model.label_bits(p.f, p.s, n)
            <= max_bits,
            n=n,
        )
        return feasible

    def objective(x: np.ndarray) -> float:
        f, s = _clip(x)
        return cost_model.amortized_insert_cost(f, s, n)

    def bits_slack(x: np.ndarray) -> float:
        f, s = _clip(x)
        return max_bits - cost_model.label_bits(f, s, n)

    result = optimize.minimize(
        objective, _as_variables(*start), method="SLSQP",
        constraints=[{"type": "ineq", "fun": bits_slack}],
        bounds=[(2.0 * _B_MIN, None), (_S_MIN, None)],
        options={"maxiter": 500, "ftol": 1e-10})
    continuous = _clip(result.x)
    return _refine(
        continuous,
        objective=lambda p: cost_model.amortized_insert_cost(p.f, p.s, n),
        feasible=lambda p: cost_model.label_bits(p.f, p.s, n) <= max_bits,
        n=n,
    )


def minimize_overall_cost(n: int, update_fraction: float,
                          comparisons_per_query: float = 1.0,
                          word_bits: int = 64,
                          start: tuple[float, float] = (8.0, 2.0)
                          ) -> TuningResult:
    """§3.2 problem 3: minimize the mixed query/update workload cost."""
    _require_scipy_stack()

    def objective(x: np.ndarray) -> float:
        f, s = _clip(x)
        return cost_model.overall_cost(f, s, n, update_fraction,
                                       comparisons_per_query, word_bits)

    result = optimize.minimize(objective, _as_variables(*start),
                               method="Nelder-Mead",
                               options={"xatol": 1e-6, "fatol": 1e-9,
                                        "maxiter": 4000})
    continuous = _clip(result.x)
    return _refine(
        continuous,
        objective=lambda p: cost_model.overall_cost(
            p.f, p.s, n, update_fraction, comparisons_per_query, word_bits),
        feasible=lambda p: True,
        n=n,
    )


def cost_grid(n: int, f_values: Iterable[int], s_values: Iterable[int]
              ) -> list[tuple[LTreeParams, float, float]]:
    """Evaluate (cost, bits) over an integer (f, s) grid.

    Invalid combinations (``s`` does not divide ``f`` etc.) are skipped.
    Used by EXPERIMENTS.md E3 to compare the predicted optimum against the
    measured one.
    """
    rows = []
    for f, s in itertools.product(f_values, s_values):
        try:
            params = LTreeParams(f=f, s=s)
        except ParameterError:
            continue
        rows.append((
            params,
            cost_model.amortized_insert_cost(f, s, n),
            cost_model.label_bits(f, s, n),
        ))
    return rows


def lagrange_stationarity_residual(f: float, s: float, n: int,
                                   max_bits: float) -> float:
    """Residual of the §3.2 Lagrange conditions at a boundary point.

    At a constrained optimum on ``bits = max_bits`` the gradients of cost
    and bits must be anti-parallel: ``∇cost = -λ ∇bits`` with ``λ >= 0``.
    Returns the norm of the component of ``∇cost`` orthogonal to ``∇bits``
    (0 at a true stationary point) — used by tests to validate the SLSQP
    solution against the paper's Lagrange formulation.
    """
    _require_scipy_stack()
    eps = 1e-5

    def grad(fun: Callable[[float, float], float]) -> np.ndarray:
        return np.array([
            (fun(f + eps, s) - fun(f - eps, s)) / (2 * eps),
            (fun(f, s + eps) - fun(f, s - eps)) / (2 * eps),
        ])

    g_cost = grad(lambda a, b: cost_model.amortized_insert_cost(a, b, n))
    g_bits = grad(lambda a, b: cost_model.label_bits(a, b, n))
    norm = np.linalg.norm(g_bits)
    if norm == 0.0:
        return float(np.linalg.norm(g_cost))
    unit = g_bits / norm
    parallel = float(np.dot(g_cost, unit)) * unit
    return float(np.linalg.norm(g_cost - parallel))
