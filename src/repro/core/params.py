"""L-Tree parameters and the derived structural quantities.

The shape of an L-Tree is governed by two integers ``f`` and ``s``
(paper §2.1):

* ``b = f / s`` is the *arity* of bulk-loaded and split-produced subtrees
  (complete ``b``-ary trees);
* an internal node at height ``h`` splits once its leaf count reaches
  ``l_max(h) = s * b**h``;
* a split replaces one node with ``s`` complete ``b``-ary subtrees.

Labels live in base ``label_base``: the ``i``-th child of a node numbered
``num`` at height ``h_child`` is numbered ``num + i * label_base**h_child``.
The paper's text uses ``label_base = f + 1`` while its own worked figure
uses ``f - 1`` (see DESIGN.md §1.2); both are supported, ``f + 1`` being the
default.  Any base ``>= max(f - 1, b + 1)`` is safe: at rest every node has
at most ``f - 1`` children (a height-1 node splits the moment its leaf count
reaches ``l_max = f``, and for higher nodes ``c <= (s*b^h - 1)/b^(h-1) < f``).
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ParameterError


@dataclasses.dataclass(frozen=True)
class LTreeParams:
    """Validated (f, s) parameter pair plus the label base.

    Parameters
    ----------
    f:
        Capacity parameter.  A height-1 node splits when it holds ``f``
        leaves; maximal at-rest fanout is ``f - 1``.
    s:
        Split factor: a violating node is replaced by ``s`` complete
        ``f/s``-ary subtrees.  Must satisfy ``s >= 2`` and ``s | f`` and
        ``f/s >= 2``.
    label_base:
        Radix of the label arithmetic.  ``None`` (default) means the paper's
        ``f + 1``.

    Examples
    --------
    >>> p = LTreeParams(f=4, s=2)
    >>> p.arity, p.base
    (2, 5)
    >>> p.l_max(1), p.l_max(2)
    (4, 8)
    >>> LTreeParams(f=4, s=2, label_base=3).base   # figure-2 compatible
    3
    """

    f: int
    s: int
    label_base: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.f, int) or not isinstance(self.s, int):
            raise ParameterError("f and s must be integers")
        if self.s < 2:
            raise ParameterError(f"s must be >= 2, got s={self.s}")
        if self.f % self.s != 0:
            raise ParameterError(
                f"s must divide f so split subtrees are complete "
                f"(f={self.f}, s={self.s})")
        if self.f // self.s < 2:
            raise ParameterError(
                f"arity f/s must be >= 2, got {self.f}/{self.s}")
        base = self.label_base
        if base is None:
            object.__setattr__(self, "label_base", self.f + 1)
        else:
            minimum = max(self.f - 1, self.f // self.s + 1)
            if base < minimum:
                raise ParameterError(
                    f"label_base={base} is below the safe minimum {minimum} "
                    f"for f={self.f}, s={self.s}")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """``b = f/s``: arity of complete bulk/split subtrees."""
        return self.f // self.s

    @property
    def base(self) -> int:
        """Label radix (``f + 1`` unless overridden)."""
        assert self.label_base is not None
        return self.label_base

    def l_max(self, height: int) -> int:
        """Leaf-count split threshold ``s * b**height`` (paper §2.3)."""
        if height < 0:
            raise ParameterError(f"height must be >= 0, got {height}")
        return self.s * self.arity ** height

    def l_min(self, height: int) -> int:
        """Minimum leaves of a split-produced node: ``b**height``."""
        if height < 0:
            raise ParameterError(f"height must be >= 0, got {height}")
        return self.arity ** height

    def child_step(self, child_height: int) -> int:
        """Label distance between adjacent child slots at ``child_height``."""
        return self.base ** child_height

    def height_for(self, n_leaves: int) -> int:
        """Smallest ``h`` with ``b**h >= n_leaves`` (bulk-load height, §2.2).

        The returned height is at least 1 so the tree always has an internal
        root, even when empty.
        """
        if n_leaves <= self.arity:
            return 1
        height = math.ceil(math.log(n_leaves) / math.log(self.arity))
        # Guard against floating-point log jitter around exact powers.
        while self.arity ** height < n_leaves:
            height += 1
        while height > 1 and self.arity ** (height - 1) >= n_leaves:
            height -= 1
        return height

    def label_space(self, height: int) -> int:
        """Upper bound on labels in a tree of ``height``: ``base**height``."""
        return self.base ** height

    def max_label_bits(self, n_leaves: int) -> int:
        """Paper §3.1 bits bound: ``ceil(log2(base) * ceil(log_b n))``."""
        if n_leaves <= 1:
            return max(1, math.ceil(math.log2(self.base)))
        height = self.height_for(n_leaves)
        return math.ceil(math.log2(self.label_space(height)))

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (f"LTreeParams(f={self.f}, s={self.s}, b={self.arity}, "
                f"base={self.base})")


#: Parameters of the paper's worked example, Figure 2: f=4, s=2, drawn in
#: base 3 (see DESIGN.md §1.2 on the figure/text base discrepancy).
FIGURE2_PARAMS = LTreeParams(f=4, s=2, label_base=3)

#: A sensible general-purpose default: splits every 16 leaves at height 1,
#: quaternary subtrees, paper-default base 17.
DEFAULT_PARAMS = LTreeParams(f=16, s=4)


def spread_digits(index: int, arity: int, base: int, height: int) -> int:
    """Label offset of leaf ``index`` in a complete ``arity``-ary subtree.

    Writing ``index`` in base ``arity`` as digits ``d_{height-1} ... d_0``,
    the leaf's offset from the subtree root's number is
    ``sum(d_i * base**i)`` — each digit is the child slot taken at that
    level (paper §4.2, the "virtual L-Tree" observation).

    >>> spread_digits(5, arity=2, base=3, height=3)   # 5 = 0b101 -> 9+0+1
    10
    """
    if index < 0:
        raise ParameterError(f"index must be >= 0, got {index}")
    if index >= arity ** height:
        raise ParameterError(
            f"index {index} does not fit a complete {arity}-ary tree "
            f"of height {height}")
    offset = 0
    power = 1
    for _ in range(height):
        offset += (index % arity) * power
        index //= arity
        power *= base
    return offset


def gather_digits(offset: int, arity: int, base: int, height: int) -> int:
    """Inverse of :func:`spread_digits`: leaf index from its label offset.

    Raises :class:`ParameterError` when ``offset`` is not a valid leaf
    offset of a complete ``arity``-ary subtree (some digit >= arity).
    """
    index = 0
    power = 1
    for _ in range(height):
        digit = offset % base
        offset //= base
        if digit >= arity:
            raise ParameterError(
                f"digit {digit} exceeds arity {arity}; offset is not from "
                f"a complete subtree")
        index += digit * power
        power *= arity
    if offset != 0:
        raise ParameterError("offset has more digits than the given height")
    return index
