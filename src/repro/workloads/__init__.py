"""Deterministic workload generators: update streams over abstract list
positions, document corpora and edit streams, and query batteries."""

from repro.workloads.documents import (apply_document_edits, edit_positions,
                                       sized_corpus)
from repro.workloads.queries import (random_element_pairs,
                                     related_element_pairs, xpath_battery)
from repro.workloads.updates import (DELETE, INSERT_AFTER, INSERT_BEFORE,
                                     INSERT_RUN, Operation, WorkloadResult,
                                     append_inserts, apply_workload,
                                     hotspot_inserts, mixed_workload,
                                     prepend_inserts, run_inserts,
                                     sliding_window, uniform_inserts,
                                     zipf_inserts)

__all__ = [
    "Operation",
    "WorkloadResult",
    "apply_workload",
    "uniform_inserts",
    "hotspot_inserts",
    "append_inserts",
    "prepend_inserts",
    "zipf_inserts",
    "run_inserts",
    "mixed_workload",
    "sliding_window",
    "INSERT_AFTER",
    "INSERT_BEFORE",
    "INSERT_RUN",
    "DELETE",
    "sized_corpus",
    "apply_document_edits",
    "edit_positions",
    "random_element_pairs",
    "related_element_pairs",
    "xpath_battery",
]
