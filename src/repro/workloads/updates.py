"""Update workload generators for the ordered-labeling experiments.

A workload is a deterministic stream of abstract operations over list
*positions* (not handles), so the same stream can drive every scheme in
the registry and the results stay comparable.  The runner
(:func:`apply_workload`) resolves positions to live handles.

Workload shapes (motivated by §1's "random updates will cause some areas
... to become much more dense than others"):

* :func:`uniform_inserts` — positions uniform over the current list;
* :func:`hotspot_inserts` — every insert lands in one gap (document
  editing at a cursor; the adversary for gap schemes);
* :func:`append_inserts` / :func:`prepend_inserts` — monotone growth
  (log-structured documents);
* :func:`zipf_inserts` — skewed positions with tunable exponent;
* :func:`mixed_workload` — inserts, deletes and subtree runs combined.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Iterable, Iterator, Sequence

from repro.core.stats import Counters
from repro.order.base import OrderedLabeling

INSERT_AFTER = "insert_after"
INSERT_BEFORE = "insert_before"
INSERT_RUN = "insert_run"
DELETE = "delete"


@dataclasses.dataclass(frozen=True)
class Operation:
    """One abstract update.

    ``position`` indexes the current list (0-based); inserts interpret it
    as the anchor item, deletes as the victim.  ``run_length`` > 1 turns an
    insert into a batch (paper §4.1).
    """

    kind: str
    position: int
    payload: Any = None
    run_length: int = 1


def uniform_inserts(n_ops: int, seed: int = 0,
                    initial_size: int = 2) -> Iterator[Operation]:
    """Inserts at uniformly random positions."""
    rng = random.Random(seed)
    size = initial_size
    for count in range(n_ops):
        kind = INSERT_AFTER if rng.random() < 0.5 else INSERT_BEFORE
        yield Operation(kind, rng.randrange(size), payload=count)
        size += 1


def hotspot_inserts(n_ops: int, seed: int = 0, initial_size: int = 2,
                    hotspot_fraction: float = 0.5) -> Iterator[Operation]:
    """All inserts chase one moving gap at a fixed relative position."""
    rng = random.Random(seed)
    size = initial_size
    for count in range(n_ops):
        position = min(size - 1, int(size * hotspot_fraction))
        # Alternate before/after so the hotspot is a gap, not an append.
        kind = INSERT_AFTER if rng.random() < 0.5 else INSERT_BEFORE
        yield Operation(kind, position, payload=count)
        size += 1


def append_inserts(n_ops: int) -> Iterator[Operation]:
    """Monotone growth at the tail."""
    size = 1
    for count in range(n_ops):
        yield Operation(INSERT_AFTER, size - 1, payload=count)
        size += 1


def prepend_inserts(n_ops: int) -> Iterator[Operation]:
    """Monotone growth at the head."""
    for count in range(n_ops):
        yield Operation(INSERT_BEFORE, 0, payload=count)


def zipf_inserts(n_ops: int, seed: int = 0, exponent: float = 1.2,
                 initial_size: int = 2) -> Iterator[Operation]:
    """Zipf-skewed positions: low positions attract most inserts."""
    if exponent <= 1.0:
        raise ValueError(f"exponent must exceed 1, got {exponent}")
    rng = random.Random(seed)
    size = initial_size
    for count in range(n_ops):
        # Inverse-CDF sample from a truncated zeta distribution.
        rank = _zipf_sample(rng, size, exponent)
        kind = INSERT_AFTER if rng.random() < 0.5 else INSERT_BEFORE
        yield Operation(kind, rank, payload=count)
        size += 1


def _zipf_sample(rng: random.Random, size: int, exponent: float) -> int:
    """Approximate Zipf sample in [0, size) via rejection."""
    while True:
        value = int(rng.paretovariate(exponent - 1.0)) - 1
        if 0 <= value < size:
            return value


def run_inserts(n_ops: int, run_length: int, seed: int = 0,
                initial_size: int = 2) -> Iterator[Operation]:
    """Batch (subtree) inserts of fixed ``run_length`` (paper §4.1)."""
    rng = random.Random(seed)
    size = initial_size
    for count in range(n_ops):
        yield Operation(INSERT_RUN, rng.randrange(size), payload=count,
                        run_length=run_length)
        size += run_length


def mixed_workload(n_ops: int, seed: int = 0, delete_fraction: float = 0.2,
                   run_fraction: float = 0.1, max_run: int = 16,
                   initial_size: int = 2) -> Iterator[Operation]:
    """Inserts, deletes and batch runs interleaved (experiment E10).

    ``initial_size`` must match the runner's ``initial_payloads`` length
    (both default to 2).
    """
    if delete_fraction + run_fraction > 1.0:
        raise ValueError("fractions must sum to at most 1")
    rng = random.Random(seed)
    size = initial_size
    for count in range(n_ops):
        roll = rng.random()
        if roll < delete_fraction and size > 2:
            yield Operation(DELETE, rng.randrange(size))
            size -= 1
        elif roll < delete_fraction + run_fraction:
            length = rng.randint(2, max_run)
            yield Operation(INSERT_RUN, rng.randrange(size),
                            payload=count, run_length=length)
            size += length
        else:
            kind = INSERT_AFTER if rng.random() < 0.5 else INSERT_BEFORE
            yield Operation(kind, rng.randrange(size), payload=count)
            size += 1


def sliding_window(n_ops: int, window: int = 128,
                   initial_size: int = 2) -> Iterator[Operation]:
    """Append at the tail, delete from the head: a log/stream document.

    Size grows to ``window`` and then stays there; every appended item
    eventually gets deleted.  Exercises the tombstone-accumulation
    behaviour the compaction extension addresses (experiment A2).
    """
    if window < 2:
        raise ValueError(f"window must be >= 2, got {window}")
    size = initial_size
    for count in range(n_ops):
        if size >= window:
            yield Operation(DELETE, 0)
            size -= 1
        yield Operation(INSERT_AFTER, size - 1, payload=count)
        size += 1


@dataclasses.dataclass
class WorkloadResult:
    """Outcome of driving one scheme through one workload."""

    scheme_name: str
    final_size: int
    stats: Counters
    label_bits: int

    @property
    def relabels_per_insert(self) -> float:
        if self.stats.inserts == 0:
            return 0.0
        return self.stats.relabels / self.stats.inserts

    @property
    def amortized_cost(self) -> float:
        return self.stats.amortized_cost()


def apply_workload(scheme: OrderedLabeling,
                   operations: Iterable[Operation],
                   initial_payloads: Sequence[Any] = (0, 1),
                   reset_stats_after_load: bool = True) -> WorkloadResult:
    """Drive ``scheme`` through an operation stream.

    Maintains the position -> handle mapping, so ``operations`` may come
    from any generator above.  Bulk-load cost is excluded by default
    (the paper charges bulk loading separately, §2.2).
    """
    handles = list(scheme.bulk_load(list(initial_payloads)))
    if reset_stats_after_load:
        scheme.stats.reset()
    for operation in operations:
        position = operation.position
        if position >= len(handles):
            raise IndexError(
                f"workload position {position} out of range "
                f"{len(handles)}")
        if operation.kind == INSERT_AFTER:
            handle = scheme.insert_after(handles[position],
                                         operation.payload)
            handles.insert(position + 1, handle)
        elif operation.kind == INSERT_BEFORE:
            handle = scheme.insert_before(handles[position],
                                          operation.payload)
            handles.insert(position, handle)
        elif operation.kind == INSERT_RUN:
            payloads = [(operation.payload, index)
                        for index in range(operation.run_length)]
            new_handles = scheme.insert_run_after(handles[position],
                                                  payloads)
            handles[position + 1:position + 1] = new_handles
        elif operation.kind == DELETE:
            scheme.delete(handles[position])
            handles.pop(position)
        else:
            raise ValueError(f"unknown operation kind {operation.kind!r}")
    return WorkloadResult(
        scheme_name=scheme.name,
        final_size=len(handles),
        stats=scheme.stats.snapshot(),
        label_bits=scheme.label_bits(),
    )
