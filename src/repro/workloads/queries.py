"""Query workloads: random containment probes and XPath batteries.

Used by the query-side experiments (E9) and the overall-cost tuning
experiment (E5): deterministic sets of ancestor/descendant probe pairs and
path expressions whose tag mix follows the document's actual tags.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.query.xpath import XPathQuery, parse_xpath
from repro.xml.model import XMLDocument, XMLElement


def random_element_pairs(document: XMLDocument, n_pairs: int,
                         seed: int = 0
                         ) -> Iterator[tuple[XMLElement, XMLElement]]:
    """Random ordered element pairs for containment probing."""
    rng = random.Random(seed)
    elements = list(document.iter_elements())
    if len(elements) < 2:
        raise ValueError("document too small for pair sampling")
    for _ in range(n_pairs):
        first = rng.choice(elements)
        second = rng.choice(elements)
        yield first, second


def related_element_pairs(document: XMLDocument, n_pairs: int,
                          seed: int = 0
                          ) -> Iterator[tuple[XMLElement, XMLElement]]:
    """Pairs biased toward true ancestor/descendant relations.

    Half the pairs are (ancestor, descendant); half are random — so both
    outcomes of the containment test are exercised.
    """
    rng = random.Random(seed)
    elements = list(document.iter_elements())
    nested = [element for element in elements if element.parent is not None]
    for index in range(n_pairs):
        if index % 2 == 0 and nested:
            descendant = rng.choice(nested)
            ancestors = list(descendant.ancestors())
            yield rng.choice(ancestors), descendant
        else:
            yield rng.choice(elements), rng.choice(elements)


def xpath_battery(document: XMLDocument, n_queries: int,
                  seed: int = 0, max_steps: int = 3
                  ) -> list[XPathQuery]:
    """XPath queries over tags that actually occur in the document.

    Each query starts at the root tag or a descendant axis and chains
    random child/descendant steps over observed parent->child tag edges,
    so most queries are non-empty.
    """
    rng = random.Random(seed)
    edges: dict[str, list[str]] = {}
    for element in document.iter_elements():
        for child in element.child_elements():
            edges.setdefault(element.tag, []).append(child.tag)
    tags = sorted(edges)
    if not tags:
        raise ValueError("document has no nested elements")
    queries: list[XPathQuery] = []
    for _ in range(n_queries):
        tag = rng.choice(tags)
        pieces = [f"//{tag}"]
        current = tag
        for _ in range(rng.randint(0, max_steps - 1)):
            children = edges.get(current)
            if not children:
                break
            nxt = rng.choice(children)
            axis = "/" if rng.random() < 0.6 else "//"
            pieces.append(f"{axis}{nxt}")
            current = nxt
        queries.append(parse_xpath("".join(pieces)))
    return queries
