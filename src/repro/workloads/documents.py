"""Document-level workloads: sized corpora and random DOM edit streams.

These drive the XML-layer experiments (E9, E10): documents of controlled
size/shape, plus deterministic streams of subtree insertions and deletions
against a :class:`repro.labeling.scheme.LabeledDocument`.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Iterator

from repro.labeling.scheme import LabeledDocument
from repro.xml.generator import _sentence, xmark_like
from repro.xml.model import XMLDocument, XMLElement, XMLTextNode


def sized_corpus(sizes: tuple[int, ...] = (10, 50, 200, 500),
                 seed: int = 0) -> dict[int, XMLDocument]:
    """XMark-like documents keyed by item count (element count scales
    roughly 8x the item count)."""
    return {
        size: xmark_like(n_items=size, n_people=size // 2,
                         n_auctions=size // 3 + 1, seed=seed + size)
        for size in sizes
    }


@dataclasses.dataclass(frozen=True)
class DocumentEdit:
    """One DOM edit: insert a generated subtree or delete an element."""

    kind: str  # "insert" | "delete"
    parent_tag: str | None = None
    subtree_size: int = 1


def _make_subtree(rng: random.Random, size: int, number: int) -> XMLElement:
    """A fresh annotation subtree with ``size`` elements."""
    root = XMLElement("annotation", [("id", f"edit{number}")])
    current = root
    for index in range(size - 1):
        child = XMLElement(rng.choice(("note", "remark", "detail")))
        if rng.random() < 0.5:
            child.append_child(XMLTextNode(_sentence(rng, 2, 6)))
        current.append_child(child)
        if rng.random() < 0.5:
            current = child
    return root


def apply_document_edits(labeled: LabeledDocument, n_edits: int,
                         seed: int = 0, delete_fraction: float = 0.15,
                         max_subtree: int = 8) -> int:
    """Run ``n_edits`` random subtree insertions/deletions.

    Insertion targets are random existing elements (locality-free);
    deletions pick random non-root elements.  Returns the number of
    elements in the final document.
    """
    rng = random.Random(seed)
    document = labeled.document
    for number in range(n_edits):
        elements = [element for element in document.iter_elements()]
        if rng.random() < delete_fraction and len(elements) > 2:
            victims = [element for element in elements
                       if element.parent is not None]
            labeled.delete_subtree(rng.choice(victims))
            continue
        parent = rng.choice(elements)
        subtree = _make_subtree(rng, rng.randint(1, max_subtree), number)
        index = rng.randint(0, len(parent.children))
        labeled.insert_subtree(parent, index, subtree)
    return document.count_elements()


def edit_positions(document: XMLDocument, n_edits: int,
                   seed: int = 0) -> Iterator[tuple[XMLElement, int]]:
    """A reusable stream of (parent, child-index) insertion points."""
    rng = random.Random(seed)
    elements = list(document.iter_elements())
    for _ in range(n_edits):
        parent = rng.choice(elements)
        yield parent, rng.randint(0, len(parent.children))
