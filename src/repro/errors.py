"""Exception hierarchy for the L-Tree reproduction library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Errors are grouped by subsystem: parameterization,
structural invariants, XML processing, storage and query processing.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ParameterError(ReproError, ValueError):
    """An L-Tree parameter set (f, s, label base, ...) is invalid."""


class InvariantViolation(ReproError, AssertionError):
    """A structural invariant of a data structure was violated.

    Raised only by explicit ``validate()`` calls (used heavily by tests);
    production code paths never raise it.
    """


class LabelOverflow(ReproError, OverflowError):
    """A labeling scheme ran out of label space.

    Fixed-universe schemes (e.g. the gap scheme with a bounded universe)
    raise this when no renumbering can create room for a new item.
    """


class XMLSyntaxError(ReproError, ValueError):
    """The XML tokenizer/parser rejected its input."""

    def __init__(self, message: str, position: int | None = None,
                 line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}, column {column}"
        elif position is not None:
            location = f" at offset {position}"
        super().__init__(f"{message}{location}")
        self.position = position
        self.line = line
        self.column = column


class XPathSyntaxError(ReproError, ValueError):
    """An XPath expression could not be parsed by the subset grammar."""


class StorageError(ReproError):
    """A storage-layer structure (B-tree, table) was misused."""


class KeyNotFound(StorageError, KeyError):
    """A key lookup in a storage structure found nothing."""


class DuplicateKey(StorageError, ValueError):
    """A unique-key structure was asked to insert an existing key."""


class QueryError(ReproError):
    """A query could not be planned or evaluated."""
