"""Exception hierarchy for the L-Tree reproduction library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Errors are grouped by subsystem: parameterization,
structural invariants, XML processing, storage and query processing.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ParameterError(ReproError, ValueError):
    """An L-Tree parameter set (f, s, label base, ...) is invalid."""


class InvariantViolation(ReproError, AssertionError):
    """A structural invariant of a data structure was violated.

    Raised only by explicit ``validate()`` calls (used heavily by tests);
    production code paths never raise it.
    """


class LabelOverflow(ReproError, OverflowError):
    """A labeling scheme ran out of label space.

    Fixed-universe schemes (e.g. the gap scheme with a bounded universe)
    raise this when no renumbering can create room for a new item.
    """


class XMLSyntaxError(ReproError, ValueError):
    """The XML tokenizer/parser rejected its input."""

    def __init__(self, message: str, position: int | None = None,
                 line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}, column {column}"
        elif position is not None:
            location = f" at offset {position}"
        super().__init__(f"{message}{location}")
        self.position = position
        self.line = line
        self.column = column


class XPathSyntaxError(ReproError, ValueError):
    """An XPath expression could not be parsed by the subset grammar."""


class StorageError(ReproError):
    """A storage-layer structure (B-tree, table) was misused."""


class CorruptionError(StorageError):
    """On-disk bytes fail their integrity checks (CRC, magic, bounds).

    Raised when a store, WAL or blob is provably damaged — torn by a
    crash, bit-rotted, or truncated — as opposed to merely misused.
    Carries enough structure for :class:`repro.storage.scrub
    .StoreScrubber` to report and quarantine precisely.
    """

    def __init__(self, message: str, *, blob: str | None = None,
                 offset: int | None = None,
                 expected_crc: int | None = None,
                 actual_crc: int | None = None):
        detail = ""
        if blob is not None:
            detail += f" [blob {blob!r}"
            if offset is not None:
                detail += f" at offset {offset}"
            if expected_crc is not None:
                detail += (f", crc expected {expected_crc:#010x} "
                           f"actual {actual_crc:#010x}"
                           if actual_crc is not None
                           else f", crc expected {expected_crc:#010x}")
            detail += "]"
        super().__init__(f"{message}{detail}")
        self.blob = blob
        self.offset = offset
        self.expected_crc = expected_crc
        self.actual_crc = actual_crc


class RecoveryError(StorageError):
    """Crash recovery cannot proceed safely.

    The on-disk pieces are individually intact but mutually
    inconsistent (a WAL whose base sequence leaves a gap after the
    checkpoint watermark, a manifest naming a missing arena), or a
    repair was asked for damage :meth:`repro.storage.scrub
    .StoreScrubber.repair` cannot undo.  Proceeding would silently
    lose or double-apply committed operations, so recovery refuses
    loudly instead.
    """


class KeyNotFound(StorageError, KeyError):
    """A key lookup in a storage structure found nothing."""


class DuplicateKey(StorageError, ValueError):
    """A unique-key structure was asked to insert an existing key."""


class QueryError(ReproError):
    """A query could not be planned or evaluated."""
