"""Region algebra over (begin, end) labels (paper §1 and Figure 1).

*"for any two nodes m and n, m is an ancestor of n if and only if the
interval [begin(m), end(m)] includes the interval [begin(n), end(n)]"* —
these predicates are that observation, plus the sibling relations the
XPath axes need.  They operate on labels alone (no tree access), which is
the whole point of the labeling scheme.
"""

from __future__ import annotations

import dataclasses
from typing import Any


@dataclasses.dataclass(frozen=True, order=True)
class Region:
    """A labeled region: the (begin, end) pair of an element.

    Orders by ``begin`` — i.e. by document order of the start tags.
    Labels may be any mutually comparable values (ints for the L-Tree,
    fractions for the prefix scheme).
    """

    begin: Any
    end: Any

    def __post_init__(self) -> None:
        if not self.begin < self.end:
            raise ValueError(
                f"region begin {self.begin!r} must precede end "
                f"{self.end!r}")

    def contains(self, other: "Region") -> bool:
        """True when this region's element is an ancestor of ``other``'s.

        Strict: a region does not contain itself.
        """
        return self.begin < other.begin and other.end < self.end

    def contained_in(self, other: "Region") -> bool:
        """Inverse of :meth:`contains`."""
        return other.contains(self)

    def precedes(self, other: "Region") -> bool:
        """Entirely before ``other`` (XPath ``preceding`` axis)."""
        return self.end < other.begin

    def follows(self, other: "Region") -> bool:
        """Entirely after ``other`` (XPath ``following`` axis)."""
        return other.end < self.begin

    def overlaps(self, other: "Region") -> bool:
        """Partial overlap — impossible for regions of one well-formed
        document; exposed so tests can assert exactly that."""
        if self.begin < other.begin:
            return other.begin < self.end < other.end
        return self.begin < other.end < self.end and \
            other.begin < self.begin

    def width(self) -> Any:
        """``end - begin``: slack available inside the region."""
        return self.end - self.begin


def is_ancestor(ancestor: Region, descendant: Region) -> bool:
    """Functional alias of :meth:`Region.contains`."""
    return ancestor.contains(descendant)

def document_order(first: Region, second: Region) -> int:
    """-1/0/+1 by start-tag order (the order Prop. 1 preserves)."""
    if first.begin < second.begin:
        return -1
    if first.begin > second.begin:
        return 1
    return 0


def is_parent(parent: Region, child: Region, parent_level: int,
              child_level: int) -> bool:
    """Parent test: containment plus adjacent levels.

    Region labels alone cannot distinguish parents from further ancestors;
    systems of the paper's era store the node's *level* alongside the
    region (Zhang et al.), which is what the interval table does.
    """
    return parent.contains(child) and child_level == parent_level + 1
