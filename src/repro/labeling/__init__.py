"""Region labeling of XML documents (paper §1–§2): (begin, end) label
pairs over any order scheme, with containment predicates answering the
ancestor/descendant axes from labels alone."""

from repro.labeling.containment import (Region, document_order, is_ancestor,
                                        is_parent)
from repro.labeling.dewey import DeweyDocument
from repro.labeling.scheme import LabeledDocument

__all__ = [
    "LabeledDocument",
    "DeweyDocument",
    "Region",
    "is_ancestor",
    "is_parent",
    "document_order",
]
