"""Dewey order: the path-based alternative to region labels.

The paper's related work (§5) contrasts region labeling with other
XML labeling families.  Dewey order — element label = the tuple of
sibling ordinals on its root path, as in ORDPATH's ancestry — is the
canonical *path-based* scheme of the same era, so experiment E13 compares
it head-to-head with the L-Tree's region labels:

* ancestor test: label prefix test (vs interval containment);
* document order: lexicographic tuple order;
* updates: inserting a subtree at child position ``i`` renumbers every
  following sibling **and its whole subtree** (each descendant's label
  embeds the ancestor's ordinal) — the well-known Dewey weakness;
* label width: one ordinal per level, so bits grow with depth × fanout
  rather than the L-Tree's log n.

Deletion leaves ordinal gaps, which Dewey tolerates for free (order and
prefixes survive), matching the paper's mark-only deletions.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.stats import NULL_COUNTERS, Counters
from repro.xml.model import XMLDocument, XMLElement, XMLNode


class _DeweyLabel:
    """Label attachment for ``node.extra``."""

    __slots__ = ("path",)

    def __init__(self, path: tuple[int, ...]):
        self.path = path


class DeweyDocument:
    """An XML document labeled with Dewey paths.

    Mirrors the update/query surface of
    :class:`repro.labeling.scheme.LabeledDocument` closely enough for the
    comparison experiments; labels are tuples, not (begin, end) pairs.
    """

    def __init__(self, document: XMLDocument,
                 stats: Counters = NULL_COUNTERS):
        self.document = document
        self.stats = stats
        self._label_subtree(document.root, ())

    def _label_subtree(self, node: XMLNode, path: tuple[int, ...]) -> None:
        node.extra = _DeweyLabel(path)
        self.stats.relabels += 1
        if isinstance(node, XMLElement):
            for ordinal, child in enumerate(node.children):
                self._label_subtree(child, path + (ordinal,))

    # ------------------------------------------------------------------
    # label access and predicates
    # ------------------------------------------------------------------
    def label(self, node: XMLNode) -> tuple[int, ...]:
        """The node's Dewey path."""
        attached = node.extra
        if not isinstance(attached, _DeweyLabel):
            raise ValueError(f"{node!r} is not labeled by this document")
        return attached.path

    def label_bits(self) -> int:
        """Widest label: one length-prefixed ordinal per level."""
        widest = 0
        for node in self.document.iter_nodes():
            path = self.label(node)
            bits = sum(max(1, ordinal.bit_length()) + 1
                       for ordinal in path)
            widest = max(widest, bits)
        return widest

    def is_ancestor(self, ancestor: XMLNode, node: XMLNode) -> bool:
        """Strict prefix test on Dewey paths (labels only)."""
        self.stats.comparisons += 1
        a_path = self.label(ancestor)
        n_path = self.label(node)
        return len(a_path) < len(n_path) and \
            n_path[:len(a_path)] == a_path

    def precedes(self, first: XMLNode, second: XMLNode) -> bool:
        """Document order = lexicographic path order."""
        self.stats.comparisons += 1
        return self.label(first) < self.label(second)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert_subtree(self, parent: XMLElement, index: int,
                       subtree: XMLNode) -> XMLNode:
        """Insert and label; renumbers following siblings' subtrees."""
        if not 0 <= index <= len(parent.children):
            raise IndexError(
                f"index {index} out of range 0..{len(parent.children)}")
        parent.insert_child(index, subtree)
        base = self.label(parent)
        # Every child from the insertion point on changes its ordinal,
        # and the ordinal is embedded in every descendant's label.
        for ordinal in range(index, len(parent.children)):
            self._label_subtree(parent.children[ordinal],
                                base + (ordinal,))
        self.stats.inserts += sum(
            1 for _ in _count_nodes(subtree))
        return subtree

    def append_subtree(self, parent: XMLElement,
                       subtree: XMLNode) -> XMLNode:
        """Insert as the last child (the cheap case for Dewey)."""
        return self.insert_subtree(parent, len(parent.children), subtree)

    def delete_subtree(self, node: XMLNode) -> None:
        """Detach; no renumbering (ordinal gaps are harmless)."""
        if node.parent is None:
            raise ValueError("cannot delete the document root")
        parent = node.parent
        parent.remove_child(node)
        for member in _iter_nodes(node):
            member.extra = None
        self.stats.deletes += 1

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Labels must spell each node's actual root path.

        Ordinal gaps from deletions are allowed; ordering and prefixing
        must match the structure exactly.
        """
        for element in self.document.iter_elements():
            base = self.label(element)
            previous: Optional[tuple[int, ...]] = None
            for child in element.children:
                path = self.label(child)
                if path[:len(base)] != base or len(path) != len(base) + 1:
                    raise AssertionError(
                        f"label {path} is not a child path of {base}")
                if previous is not None and not previous < path:
                    raise AssertionError(
                        f"sibling labels out of order: {previous} then "
                        f"{path}")
                previous = path


def _iter_nodes(node: XMLNode) -> Iterator[XMLNode]:
    yield node
    if isinstance(node, XMLElement):
        for child in node.children:
            yield from _iter_nodes(child)


def _count_nodes(node: XMLNode) -> Iterator[XMLNode]:
    return _iter_nodes(node)
