"""Region labeling of XML documents over any order scheme.

This is the glue the paper describes in §2.1: every begin tag, end tag and
text section of the document becomes one item of an ordered list; an
element's label is the **pair** of its two tag labels; ancestor/descendant
queries become interval containment over those pairs (Figure 1).

:class:`LabeledDocument` owns an :class:`repro.xml.model.XMLDocument` and
an :class:`repro.order.base.OrderedLabeling` (the **compact** array-backed
L-Tree by default) and keeps the two consistent across subtree insertions
and deletions:

* insertions label the new tokens through the scheme — using its native
  *batch* insertion, so an L-Tree pays the §4.1 shared cost;
* deletions only unlabel (the L-Tree marks; no relabeling — §2.3);
* every predicate (:meth:`is_ancestor`, :meth:`precedes`, ...) consults
  labels only, never the tree structure.

**Engine default (since PR 3).**  The default scheme is
``ltree-compact`` (:data:`repro.order.registry.DEFAULT_SCHEME`): the
struct-of-arrays engine proven label- and counter-identical to the
node-object reference by ``tests/core/test_compact_differential.py``.
Its bulk paths are vectorized through :mod:`repro.core.vectorized` —
numpy when importable, pure-Python batch passes otherwise; force a path
with ``REPRO_VECTOR_BACKEND=numpy|array|scalar`` or
``repro.core.vectorized.set_backend()``.  To opt back into the
node-object engine pass ``scheme=make_scheme("ltree")`` or an explicit
:class:`~repro.order.ltree_list.LTreeListLabeling`.

**Cached label vector.**  Query workloads read labels far more often
than they edit.  The document keeps one bulk-extracted handle→label
mapping (built straight from the engine's flat label column on the
compact engine, see ``OrderedLabeling.label_map``) and serves every
predicate from it; any edit invalidates the cache, and the next read
rebuilds it in a single pass.  Per-node fetches that bypass the cache
are counted in ``Counters.label_lookups`` — the number the cache drives
to zero (``benchmarks/bench_query_containment.py`` tracks it).  Pass
``cache_labels=False`` to measure the uncached behaviour.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterator, Optional

from repro.core.params import LTreeParams
from repro.core.persistence import restore, snapshot
from repro.core.stats import NULL_COUNTERS, Counters
from repro.errors import ParameterError
from repro.labeling.containment import Region
from repro.order.base import OrderedLabeling
from repro.order.compact_list import (CompactEngineLabeling,
                                      CompactListLabeling,
                                      sync_override)
from repro.order.ltree_list import LTreeListLabeling
from repro.order.registry import default_scheme
from repro.order.sharded_list import ShardedListLabeling
from repro.xml.model import (XMLCommentNode, XMLDocument, XMLElement,
                             XMLInstructionNode, XMLNode, XMLTextNode)
from repro.xml.parser import parse
from repro.xml.serializer import serialize

#: token-kind markers used in scheme payloads
BEGIN = "begin"
END = "end"
POINT = "point"  # text / comment / PI: a single list position

#: on-store format version of a saved LabeledDocument (see ``save``)
DOCUMENT_FORMAT_VERSION = 1

#: blob names a saved document occupies inside a page store
META_BLOB = "meta"
XML_BLOB = "document.xml"
SCHEME_BLOB = "scheme"


class _Handles:
    """Scheme handles attached to a node via ``node.extra``."""

    __slots__ = ("begin", "end")

    def __init__(self, begin: Any, end: Any = None):
        self.begin = begin
        self.end = end


def _emit_tokens(node: XMLNode) -> Iterator[tuple[str, XMLNode]]:
    """(kind, node) pairs of a subtree in document-list order."""
    if isinstance(node, XMLElement):
        yield (BEGIN, node)
        for child in node.children:
            yield from _emit_tokens(child)
        yield (END, node)
    else:
        yield (POINT, node)


def _subtree_token_count(node: XMLNode) -> int:
    """Tokens a subtree contributes to the document list."""
    if isinstance(node, XMLElement):
        return 2 + sum(_subtree_token_count(child)
                       for child in node.children)
    return 1


def shard_boundaries(root: XMLElement, n_shards: int) -> Optional[list[int]]:
    """Token-chunk sizes aligning shard arenas with top-level children.

    Groups the root's children into at most ``n_shards`` *contiguous*
    runs of roughly equal token weight and returns one chunk size per
    run (the root's begin tag rides with the first run, its end tag
    with the last), shaped for the sharded engine's ``boundaries=``.
    Every top-level subtree then lives wholly inside one arena, so an
    edit under one top-level child provably writes one shard — the
    alignment that makes multi-writer editing contention-free on real
    documents.  Returns ``None`` when there is nothing to partition
    (no children, or one shard asked for).
    """
    children = root.children
    if n_shards < 2 or not children:
        return None
    weights = [_subtree_token_count(child) for child in children]
    sizes: list[int] = []
    remaining = sum(weights)
    groups_left = min(n_shards, len(children))
    current = 0
    for index, weight in enumerate(weights):
        current += weight
        remaining -= weight
        children_left = len(children) - index - 1
        # close the run once it carries its fair share of what is left,
        # as long as every later run can still get >= 1 child
        if groups_left > 1 and children_left >= groups_left - 1 and \
                current * groups_left >= current + remaining:
            sizes.append(current)
            current = 0
            groups_left -= 1
    if current:
        sizes.append(current)
    sizes[0] += 1       # the root's begin tag
    sizes[-1] += 1      # the root's end tag
    return sizes


class LabeledDocument:
    """An XML document with maintained order-preserving labels.

    Parameters
    ----------
    document:
        The document to label.  A node may belong to at most one
        ``LabeledDocument`` at a time (handles live on ``node.extra``).
    scheme:
        Any order-labeling scheme; defaults to the compact L-Tree with
        ``params`` (:func:`repro.order.registry.default_scheme`).
    params:
        L-Tree parameters for the default scheme.
    stats:
        Counter sink (shared with the default scheme).
    cache_labels:
        Keep a bulk-extracted handle→label vector and serve predicates
        from it (default).  ``False`` forces one scheme lookup per label
        read — the per-node cost ``Counters.label_lookups`` counts.

    Examples
    --------
    >>> from repro.xml import parse
    >>> doc = parse("<book><chapter><title/></chapter><title/></book>")
    >>> labeled = LabeledDocument(doc)
    >>> chapter = next(doc.find_all("chapter"))
    >>> all(labeled.is_ancestor(doc.root, t) for t in doc.find_all("title"))
    True
    >>> labeled.is_ancestor(chapter, doc.root)
    False
    """

    def __init__(self, document: XMLDocument,
                 scheme: Optional[OrderedLabeling] = None,
                 params: Optional[LTreeParams] = None,
                 stats: Counters = NULL_COUNTERS,
                 cache_labels: bool = True):
        if scheme is None:
            scheme = default_scheme(params, stats)
        elif params is not None:
            raise ValueError("pass either a scheme or params, not both")
        self.document = document
        self.scheme = scheme
        self.stats = stats
        self._cache_labels = cache_labels
        self._label_cache: Optional[dict[Any, Any]] = None
        #: page store this document owns (set by ``open`` from a path)
        self.store: Optional[Any] = None
        self._owns_store = False
        self._bulk_label()

    def _bulk_label(self) -> None:
        pairs = list(_emit_tokens(self.document.root))
        if getattr(self.scheme, "supports_partitioned_bulk", False):
            # shard-aligned bulk load: one contiguous run of top-level
            # children per arena, so a subtree edit writes one shard
            boundaries = shard_boundaries(self.document.root,
                                          self.scheme.tree.n_shards)
            handles = self.scheme.bulk_load(pairs, boundaries=boundaries)
        else:
            handles = self.scheme.bulk_load(pairs)
        self._attach(pairs, handles)
        self._label_cache = None

    @staticmethod
    def _attach(pairs: list[tuple[str, XMLNode]],
                handles: list[Any]) -> None:
        for (kind, node), handle in zip(pairs, handles):
            if kind == BEGIN:
                node.extra = _Handles(handle)
            elif kind == END:
                assert isinstance(node.extra, _Handles)
                node.extra.end = handle
            else:
                node.extra = _Handles(handle)

    # ------------------------------------------------------------------
    # label access
    # ------------------------------------------------------------------
    def _handles(self, node: XMLNode) -> _Handles:
        handles = node.extra
        if not isinstance(handles, _Handles):
            raise ValueError(f"{node!r} is not labeled by this document")
        return handles

    def _label_of(self, handle: Any) -> Any:
        """Label of one scheme handle, served from the cached vector.

        Cache misses (stale handles are impossible here; only a disabled
        cache) fall back to a counted per-node scheme lookup — the
        operation ``Counters.label_lookups`` tallies and the cache
        exists to avoid.
        """
        if self._cache_labels:
            cache = self._label_cache
            if cache is None:
                cache = self._label_cache = self.scheme.label_map()
            try:
                return cache[handle]
            except KeyError:
                pass  # e.g. a deleted handle: let the scheme raise
        self.stats.label_lookups += 1
        return self.scheme.label(handle)

    def warm_labels(self) -> None:
        """Build the cached label vector now (no-op when disabled).

        Bulk consumers — :class:`repro.storage.interval_table
        .IntervalTableStore` shredding every element region, a
        structural-join input scan — call this once so the whole read
        phase runs against one flat extraction.
        """
        if self._cache_labels and self._label_cache is None:
            self._label_cache = self.scheme.label_map()

    def _invalidate_labels(self) -> None:
        self._label_cache = None

    def begin_label(self, node: XMLNode) -> Any:
        """Label of the node's begin tag (or of its single position)."""
        return self._label_of(self._handles(node).begin)

    def end_label(self, node: XMLNode) -> Any:
        """Label of an element's end tag; point nodes reuse their label."""
        handles = self._handles(node)
        if handles.end is None:
            return self._label_of(handles.begin)
        return self._label_of(handles.end)

    def region(self, element: XMLElement) -> Region:
        """(begin, end) region of an element (paper Figure 1)."""
        handles = self._handles(element)
        if handles.end is None:
            raise ValueError(f"{element!r} has no end tag (not an element)")
        return Region(self._label_of(handles.begin),
                      self._label_of(handles.end))

    def labels_in_order(self) -> list[Any]:
        """All current token labels in document order."""
        return self.scheme.labels()

    def element_handles(self) -> Iterator[tuple[XMLElement, Any, Any, int]]:
        """``(element, begin_handle, end_handle, level)`` in document order.

        One structural DOM pass with **zero** label reads — the walk
        columnar consumers (:mod:`repro.query.columnar`) pair with a
        bulk label extraction (``label_map``, a pinned
        :class:`~repro.concurrent.engine.LabelSnapshot`'s
        ``label_columns``) so shredding a document into query columns
        never issues a per-node scheme lookup.
        """
        stack: list[tuple[XMLElement, int]] = [(self.document.root, 0)]
        while stack:
            element, level = stack.pop()
            handles = self._handles(element)
            yield element, handles.begin, handles.end, level
            for child in reversed(list(element.child_elements())):
                stack.append((child, level + 1))

    # ------------------------------------------------------------------
    # label-only predicates (the queries labels exist for)
    # ------------------------------------------------------------------
    def is_ancestor(self, ancestor: XMLElement, node: XMLNode) -> bool:
        """Interval containment: strict ancestor test, labels only."""
        self.stats.comparisons += 2
        begin = self.begin_label(node)
        return self.begin_label(ancestor) < begin and \
            self.end_label(node) < self.end_label(ancestor)

    def precedes(self, first: XMLNode, second: XMLNode) -> bool:
        """Document order of two nodes by their (begin) labels."""
        self.stats.comparisons += 1
        return self.begin_label(first) < self.begin_label(second)

    def is_following(self, first: XMLNode, second: XMLNode) -> bool:
        """XPath ``following``: starts after ``second`` entirely ends."""
        self.stats.comparisons += 1
        return self.begin_label(first) > self.end_label(second)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert_subtree(self, parent: XMLElement, index: int,
                       subtree: XMLNode) -> XMLNode:
        """Insert ``subtree`` as ``parent.children[index]`` and label it.

        Labels arrive through one batch insertion (paper §4.1) anchored at
        the token immediately preceding the insertion point: the parent's
        begin tag for position 0, else the preceding sibling's last token.
        """
        if not 0 <= index <= len(parent.children):
            raise IndexError(
                f"index {index} out of range 0..{len(parent.children)}")
        anchor = self._anchor_before(parent, index)
        parent.insert_child(index, subtree)
        pairs = list(_emit_tokens(subtree))
        handles = self.scheme.insert_run_after(
            anchor, pairs)
        self._attach(pairs, handles)
        self._invalidate_labels()
        return subtree

    def append_subtree(self, parent: XMLElement,
                       subtree: XMLNode) -> XMLNode:
        """Insert ``subtree`` as the last child of ``parent``."""
        return self.insert_subtree(parent, len(parent.children), subtree)

    def insert_text(self, parent: XMLElement, index: int,
                    content: str) -> XMLTextNode:
        """Insert a text node at ``parent.children[index]``."""
        node = XMLTextNode(content)
        self.insert_subtree(parent, index, node)
        return node

    def _anchor_before(self, parent: XMLElement, index: int) -> Any:
        if index == 0:
            return self._handles(parent).begin
        previous = parent.children[index - 1]
        handles = self._handles(previous)
        return handles.end if handles.end is not None else handles.begin

    def move_subtree(self, node: XMLNode, new_parent: XMLElement,
                     index: int) -> XMLNode:
        """Relocate ``node`` under ``new_parent`` at child ``index``.

        Implemented as unlabel + detach + relabeled reinsert, so the
        subtree's DOM nodes survive but receive fresh labels (an order
        labeling cannot move a region in place).  ``index`` addresses
        ``new_parent.children`` *after* the detach — relevant when moving
        within the same parent.  Moving a node under its own descendant
        (or itself) is rejected.
        """
        if node is new_parent or (isinstance(node, XMLElement) and
                                  node.is_ancestor_of(new_parent)):
            raise ValueError("cannot move a node beneath itself")
        self.delete_subtree(node)
        return self.insert_subtree(new_parent, index, node)

    def delete_subtree(self, node: XMLNode) -> None:
        """Detach ``node`` from the document and unlabel its tokens.

        Mark-only on the L-Tree — zero relabelings (paper §2.3).
        """
        if node.parent is None:
            raise ValueError("cannot delete the document root")
        for kind, member in _emit_tokens(node):
            handles = self._handles(member)
            if kind == BEGIN:
                self.scheme.delete(handles.begin)
            elif kind == END:
                if handles.end is not None:
                    self.scheme.delete(handles.end)
            else:
                self.scheme.delete(handles.begin)
        for _, member in _emit_tokens(node):
            member.extra = None
        node.parent.remove_child(node)
        self._invalidate_labels()

    def compact(self) -> int:
        """Vacuum tombstoned label slots (L-Tree scheme only).

        Rebuilds the underlying L-Tree without deleted slots and rewires
        every node's handles, so the document stays fully queryable with
        fresh (narrower) labels.  Returns the number of reclaimed slots.
        """
        if not isinstance(self.scheme,
                          (LTreeListLabeling, CompactEngineLabeling)):
            raise TypeError(
                "compact() requires an L-Tree-backed scheme, got "
                f"{self.scheme.name!r}")
        reclaimed = self.scheme.tree.tombstone_count()
        mapping = self.scheme.tree.compact()
        for kind, node in _emit_tokens(self.document.root):
            handles = self._handles(node)
            if kind == END:
                assert handles.end is not None
                handles.end = mapping[handles.end]
            else:
                handles.begin = mapping[handles.begin]
        self._invalidate_labels()
        return reclaimed

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, store: Any = None,
             sync: Optional[bool] = None) -> None:
        """Persist document text and labels to a page store.

        ``store`` is a :class:`repro.storage.pages.PageStore` (or any
        blob store), a file *path* (a store is opened — and closed —
        around the save), or ``None`` to reuse the store this document
        was opened from (:meth:`open` with a path).  ``sync=True``
        applies the fsync-barrier durability discipline to every
        catalog flip of this save — threaded down to ``PageStore``
        whichever way the store was obtained — so the saved document
        survives power loss, not only process crashes; the default
        keeps the store's own setting.

        Three blobs land in the store: the serialized XML, the scheme
        state, and a small JSON ``meta`` record.  The scheme goes
        as the struct-of-arrays byte image for ``ltree-compact``
        (tombstones and free-list preserved exactly), as one such image
        *per shard* plus a manifest for ``ltree-sharded`` (reopened
        shard-lazily), or as the §4.2 label-only snapshot for ``ltree``;
        either way payloads are *not* serialized — :meth:`open`
        re-derives them from the document text, whose token sequence
        matches the live labels one-to-one.
        Raises :class:`ParameterError` (before writing anything) when
        that one-to-one match would not survive the XML round trip.
        """
        target = store if store is not None else self.store
        if target is None:
            raise ValueError(
                "no store to save to: pass a store or a path (only "
                "documents opened from a path remember their store)")
        if isinstance(target, (str, os.PathLike)):
            from repro.storage.pages import PageStore
            with PageStore(os.fspath(target), sync=bool(sync)) as opened:
                self._save_to(opened)
            return
        with sync_override(target, sync):
            self._save_to(target)

    def _save_to(self, store: Any) -> None:
        scheme = self.scheme
        text = serialize(self.document)
        # fail *now* if the token stream cannot survive the XML round
        # trip (adjacent text nodes merge, empty text nodes vanish) —
        # otherwise save would succeed and open() would fail forever
        live_kinds = [kind for kind, _ in
                      _emit_tokens(self.document.root)]
        reparsed_kinds = [kind for kind, _ in
                          _emit_tokens(parse(text).root)]
        if live_kinds != reparsed_kinds:
            raise ParameterError(
                f"document token stream does not survive an XML round "
                f"trip ({len(live_kinds)} tokens serialize to "
                f"{len(reparsed_kinds)}): adjacent or empty text nodes "
                f"cannot be re-labeled on open(); merge them first")
        if isinstance(scheme, ShardedListLabeling):
            # one LTREEARR blob span per shard plus a manifest; shards
            # still lazy from an earlier open() are copied
            # image-for-image without deserializing
            encoding = "sharded-bytes"
            scheme.save(store, SCHEME_BLOB, include_payloads=False)
        elif isinstance(scheme, CompactListLabeling):
            encoding = "compact-bytes"
            scheme.save(store, SCHEME_BLOB, include_payloads=False)
        elif isinstance(scheme, LTreeListLabeling):
            encoding = "label-snapshot"
            data = snapshot(scheme.tree, include_payloads=False)
            store.put_blob(SCHEME_BLOB,
                           json.dumps(data).encode("utf-8"))
        else:
            raise TypeError(
                f"save() supports the L-Tree schemes, got "
                f"{scheme.name!r}")
        store.put_blob(XML_BLOB, text.encode("utf-8"))
        store.put_blob(META_BLOB, json.dumps({
            "format": DOCUMENT_FORMAT_VERSION,
            "scheme": scheme.name,
            "encoding": encoding,
        }).encode("utf-8"))

    @classmethod
    def open(cls, store: Any, stats: Counters = NULL_COUNTERS,
             sync: Optional[bool] = None,
             concurrent: bool = False) -> "LabeledDocument":
        """Reopen a document saved by :meth:`save` — without relabeling.

        The XML text is re-parsed and its token stream zipped against the
        restored scheme's live handles (same order by construction), so
        every node gets back the *exact* label it held at save time;
        nothing is re-bulk-loaded and future edits behave as if the
        process had never stopped.

        ``store`` may be a file *path*: the document then owns the
        opened :class:`~repro.storage.pages.PageStore` (kept on
        :attr:`store`, so a bare ``save()`` re-saves in place and
        :meth:`close` releases it), created with the ``sync``
        discipline asked for.

        ``concurrent=True`` (documents saved with the ``ltree-sharded``
        scheme only) wraps the restored engine in
        :class:`repro.concurrent.engine.ConcurrentLTree`: *engine-level*
        access through ``scheme.tree`` becomes thread-safe — per-shard
        updates from writers under different top-level subtrees run in
        parallel, and ``scheme.tree.snapshot()`` serves zero-lock label
        snapshots.  The DOM, this wrapper object and the scheme
        adapter's own bookkeeping (``len(scheme)``, its
        deleted-handle pre-checks) stay single-threaded — multi-thread
        the engine, not the document; for WAL-backed durability use
        :class:`repro.concurrent.service.ConcurrentDocument`.
        """
        owns_store = isinstance(store, (str, os.PathLike))
        if owns_store:
            from repro.storage.pages import PageStore
            store = PageStore(os.fspath(store), sync=bool(sync))
        try:
            meta = json.loads(bytes(store.get_blob(META_BLOB)).decode("utf-8"))
            if meta.get("format") != DOCUMENT_FORMAT_VERSION:
                raise ParameterError(
                    f"unsupported document format {meta.get('format')!r} "
                    f"(supported: {DOCUMENT_FORMAT_VERSION})")
            document = parse(bytes(store.get_blob(XML_BLOB)).decode("utf-8"))
            encoding = meta.get("encoding")
            if encoding == "compact-bytes":
                scheme: OrderedLabeling = CompactListLabeling.load(
                    store, SCHEME_BLOB, stats=stats)
                reattach = scheme.tree.set_payload
            elif encoding == "sharded-bytes":
                # shard-lazy: only the manifest and the per-shard live-leaf
                # sidecars are decoded here; an arena is deserialized the
                # first time an edit touches it (payload reattachment below
                # is buffered on still-lazy shards)
                scheme = ShardedListLabeling.load(store, SCHEME_BLOB,
                                                  stats=stats)
                reattach = scheme.tree.set_payload
            elif encoding == "label-snapshot":
                data = json.loads(
                    bytes(store.get_blob(SCHEME_BLOB)).decode("utf-8"))
                scheme = LTreeListLabeling._wrap(restore(data, stats=stats),
                                                 stats)

                def reattach(handle: Any, payload: Any) -> None:
                    handle.payload = payload
            else:
                raise ParameterError(
                    f"unknown scheme encoding {encoding!r} in saved document")
            if concurrent and encoding != "sharded-bytes":
                raise ParameterError(
                    f"concurrent=True needs a document saved with the "
                    f"ltree-sharded scheme, this one used {encoding!r}")
            labeled = cls.__new__(cls)
            labeled.document = document
            labeled.scheme = scheme
            labeled.stats = stats
            labeled._cache_labels = True
            labeled._label_cache = None
            labeled.store = store if owns_store else None
            labeled._owns_store = owns_store
            pairs = list(_emit_tokens(document.root))
            handles = list(scheme.handles())
            if len(pairs) != len(handles):
                raise ParameterError(
                    f"document has {len(pairs)} tokens but the restored "
                    f"scheme holds {len(handles)} live labels")
            labeled._attach(pairs, handles)
            for pair, handle in zip(pairs, handles):
                reattach(handle, pair)
            if concurrent:
                from repro.concurrent.engine import ConcurrentLTree
                scheme.tree = ConcurrentLTree(scheme.tree)
            return labeled
        except BaseException:
            # a half-validated open must not leak the store it
            # created from the path (fd + mmap would outlive the
            # exception); a caller-owned store stays the caller's
            if owns_store:
                store.close()
            raise

    def close(self) -> None:
        """Release the page store this document opened from a path.

        A no-op for documents built in memory or opened from a caller's
        store (the caller owns that one).
        """
        if self._owns_store and self.store is not None:
            self.store.close()
        self.store = None
        self._owns_store = False

    # ------------------------------------------------------------------
    # validation (tests)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check order preservation and containment consistency.

        * token labels strictly increase in document order (Prop. 1);
        * for every element, begin < end;
        * label containment agrees with structural ancestorship for every
          parent/child edge.
        """
        self.scheme.validate()
        previous: Any = None
        for kind, node in _emit_tokens(self.document.root):
            handles = self._handles(node)
            handle = handles.end if kind == END else handles.begin
            label = self.scheme.label(handle)
            if previous is not None and not previous < label:
                raise AssertionError(
                    f"labels out of document order: {previous!r} then "
                    f"{label!r} at {node!r}")
            previous = label
        for element in self.document.iter_elements():
            region = self.region(element)
            for child in element.children:
                if isinstance(child, XMLElement):
                    if not region.contains(self.region(child)):
                        raise AssertionError(
                            f"containment broken: {element.tag} !> "
                            f"{child.tag}")
