"""Ordered XML document model.

A thin, fully ordered DOM: elements, text, comments and processing
instructions, each knowing its parent.  Document order — the order the
paper's labels must preserve — is the depth-first, begin-tag order of
:meth:`XMLDocument.iter_nodes`.

The model round-trips with the tokenizer: :func:`build_document` consumes
the token stream of :mod:`repro.xml.parser` and
:meth:`XMLDocument.tokens` reproduces it (modulo the XML declaration).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from repro.errors import XMLSyntaxError
from repro.xml import tokens as T


class XMLNode:
    """Base class of document nodes; knows its parent."""

    __slots__ = ("parent", "extra")

    def __init__(self) -> None:
        self.parent: Optional["XMLElement"] = None
        #: scratch slot for library layers (e.g. labels); not serialized
        self.extra: Any = None

    @property
    def is_element(self) -> bool:
        return isinstance(self, XMLElement)

    def ancestors(self) -> Iterator["XMLElement"]:
        """Parent, grandparent, ... up to the root element."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def depth(self) -> int:
        """Number of ancestor elements (root element has depth 0)."""
        return sum(1 for _ in self.ancestors())

    def root(self) -> "XMLNode":
        """Topmost node reachable through parent links."""
        node: XMLNode = self
        while node.parent is not None:
            node = node.parent
        return node


class XMLElement(XMLNode):
    """An element: tag, attributes and an ordered child list."""

    __slots__ = ("tag", "attributes", "children")

    def __init__(self, tag: str,
                 attributes: Iterable[tuple[str, str]] = ()):
        super().__init__()
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes)
        self.children: list[XMLNode] = []

    # -- tree editing ---------------------------------------------------
    def append_child(self, node: XMLNode) -> XMLNode:
        """Attach ``node`` as the last child."""
        node.parent = self
        self.children.append(node)
        return node

    def insert_child(self, index: int, node: XMLNode) -> XMLNode:
        """Attach ``node`` at child position ``index``."""
        node.parent = self
        self.children.insert(index, node)
        return node

    def remove_child(self, node: XMLNode) -> None:
        """Detach a direct child."""
        self.children.remove(node)
        node.parent = None

    def child_index(self, node: XMLNode) -> int:
        """Position of a direct child."""
        return self.children.index(node)

    # -- navigation ------------------------------------------------------
    def child_elements(self) -> Iterator["XMLElement"]:
        """Direct element children, in order."""
        for child in self.children:
            if isinstance(child, XMLElement):
                yield child

    def iter_elements(self) -> Iterator["XMLElement"]:
        """This element and every descendant element in document order."""
        stack: list[XMLElement] = [self]
        while stack:
            element = stack.pop()
            yield element
            stack.extend(reversed(list(element.child_elements())))

    def iter_nodes(self) -> Iterator[XMLNode]:
        """This node and every descendant node in document order."""
        stack: list[XMLNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, XMLElement):
                stack.extend(reversed(node.children))

    def find_all(self, tag: str) -> Iterator["XMLElement"]:
        """Descendant-or-self elements with the given tag."""
        for element in self.iter_elements():
            if element.tag == tag:
                yield element

    def text_content(self) -> str:
        """Concatenated text of all descendant text nodes."""
        pieces = [node.content for node in self.iter_nodes()
                  if isinstance(node, XMLTextNode)]
        return "".join(pieces)

    def is_ancestor_of(self, other: XMLNode) -> bool:
        """Structural ancestor test by parent-chain walk (ground truth
        for the label-based containment tests)."""
        return any(ancestor is self for ancestor in other.ancestors())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<XMLElement {self.tag!r} children={len(self.children)}>"


class XMLTextNode(XMLNode):
    """Character data."""

    __slots__ = ("content",)

    def __init__(self, content: str):
        super().__init__()
        self.content = content


class XMLCommentNode(XMLNode):
    """``<!-- ... -->``."""

    __slots__ = ("content",)

    def __init__(self, content: str):
        super().__init__()
        self.content = content


class XMLInstructionNode(XMLNode):
    """Processing instruction."""

    __slots__ = ("target", "content")

    def __init__(self, target: str, content: str):
        super().__init__()
        self.target = target
        self.content = content


class XMLDocument:
    """A parsed document: one root element plus prolog/epilog misc nodes."""

    def __init__(self, root: XMLElement,
                 prolog: Iterable[XMLNode] = (),
                 epilog: Iterable[XMLNode] = ()):
        self.root = root
        self.prolog = list(prolog)
        self.epilog = list(epilog)

    # -- traversal ---------------------------------------------------------
    def iter_elements(self) -> Iterator[XMLElement]:
        """Every element in document order."""
        return self.root.iter_elements()

    def iter_nodes(self) -> Iterator[XMLNode]:
        """Every node (elements, text, comments, PIs) in document order."""
        return self.root.iter_nodes()

    def find_all(self, tag: str) -> Iterator[XMLElement]:
        """Every element with the given tag, in document order."""
        return self.root.find_all(tag)

    def count_elements(self) -> int:
        return sum(1 for _ in self.iter_elements())

    def count_nodes(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    # -- token stream ------------------------------------------------------
    def tokens(self) -> Iterator[T.Token]:
        """The paper's begin/end/text token list for the whole document."""
        for node in self.prolog:
            yield from _node_tokens(node)
        yield from _node_tokens(self.root)
        for node in self.epilog:
            yield from _node_tokens(node)


def _node_tokens(node: XMLNode) -> Iterator[T.Token]:
    if isinstance(node, XMLElement):
        yield T.StartTag(node.tag, tuple(node.attributes.items()))
        for child in node.children:
            yield from _node_tokens(child)
        yield T.EndTag(node.tag)
    elif isinstance(node, XMLTextNode):
        yield T.Text(node.content)
    elif isinstance(node, XMLCommentNode):
        yield T.Comment(node.content)
    elif isinstance(node, XMLInstructionNode):
        yield T.Instruction(node.target, node.content)
    else:  # pragma: no cover - model is closed
        raise TypeError(f"unknown node type {type(node)!r}")


def _place_misc(node: XMLNode, stack: list[XMLElement],
                root: Optional[XMLElement], prolog: list[XMLNode],
                epilog: list[XMLNode]) -> None:
    """Attach a comment/PI inside the open element or to prolog/epilog."""
    if stack:
        stack[-1].append_child(node)
    elif root is None:
        prolog.append(node)
    else:
        epilog.append(node)


def build_document(token_stream: Iterable[T.Token]) -> XMLDocument:
    """Assemble a document from a token stream (parser back-end).

    Raises :class:`XMLSyntaxError` on mismatched or missing tags, multiple
    roots, or content outside the root other than comments/PIs/whitespace.
    """
    prolog: list[XMLNode] = []
    epilog: list[XMLNode] = []
    root: Optional[XMLElement] = None
    stack: list[XMLElement] = []

    for token in token_stream:
        if isinstance(token, T.StartTag):
            element = XMLElement(token.name, token.attributes)
            if stack:
                stack[-1].append_child(element)
            elif root is None:
                root = element
            else:
                raise XMLSyntaxError(
                    f"second root element <{token.name}>")
            stack.append(element)
        elif isinstance(token, T.EndTag):
            if not stack:
                raise XMLSyntaxError(f"unexpected </{token.name}>")
            open_element = stack.pop()
            if open_element.tag != token.name:
                raise XMLSyntaxError(
                    f"mismatched </{token.name}>, expected "
                    f"</{open_element.tag}>")
        elif isinstance(token, T.Text):
            node = XMLTextNode(token.content)
            if stack:
                stack[-1].append_child(node)
            elif token.content.strip():
                raise XMLSyntaxError("text outside the root element")
            # whitespace-only text outside the root is dropped
        elif isinstance(token, T.Comment):
            _place_misc(XMLCommentNode(token.content), stack, root,
                        prolog, epilog)
        elif isinstance(token, T.Instruction):
            _place_misc(XMLInstructionNode(token.target, token.content),
                        stack, root, prolog, epilog)
        else:  # pragma: no cover - token model is closed
            raise TypeError(f"unknown token {token!r}")

    if stack:
        raise XMLSyntaxError(f"unclosed element <{stack[-1].tag}>")
    if root is None:
        raise XMLSyntaxError("document has no root element")
    return XMLDocument(root, prolog, epilog)
