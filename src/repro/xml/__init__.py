"""XML substrate: tokenizer, parser, ordered DOM, serializer, generators.

Built from scratch (no stdlib-XML reuse in the library itself) because the
token list — begin tags, end tags, text sections — is the exact object the
L-Tree labels (paper §2)."""

from repro.xml.generator import (book_document, deep_document,
                                 random_document, wide_document, xmark_like)
from repro.xml.model import (XMLCommentNode, XMLDocument, XMLElement,
                             XMLInstructionNode, XMLNode, XMLTextNode,
                             build_document)
from repro.xml.parser import parse, tokenize
from repro.xml.serializer import pretty, serialize
from repro.xml.tokens import Comment, EndTag, Instruction, StartTag, Text

__all__ = [
    "parse",
    "tokenize",
    "serialize",
    "pretty",
    "build_document",
    "XMLDocument",
    "XMLElement",
    "XMLTextNode",
    "XMLCommentNode",
    "XMLInstructionNode",
    "XMLNode",
    "StartTag",
    "EndTag",
    "Text",
    "Comment",
    "Instruction",
    "book_document",
    "xmark_like",
    "random_document",
    "deep_document",
    "wide_document",
]
