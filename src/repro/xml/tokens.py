"""XML token model.

The paper views a document as *"a linear ordered list of begin tags, end
tags, and text sections"* (§2) — the list the L-Tree labels.  These token
classes are that list's elements; the tokenizer
(:mod:`repro.xml.parser`) produces them and the labeling layer
(:mod:`repro.labeling`) consumes them.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Token:
    """Base class of all document-list tokens."""

    __slots__ = ()


@dataclasses.dataclass(frozen=True)
class StartTag(Token):
    """``<name attr="value" ...>`` (self-closing tags also emit EndTag)."""

    name: str
    attributes: tuple[tuple[str, str], ...] = ()

    def attribute(self, key: str, default: str | None = None
                  ) -> str | None:
        """Value of attribute ``key`` (first occurrence) or ``default``."""
        for name, value in self.attributes:
            if name == key:
                return value
        return default


@dataclasses.dataclass(frozen=True)
class EndTag(Token):
    """``</name>``."""

    name: str


@dataclasses.dataclass(frozen=True)
class Text(Token):
    """Character data (entity-decoded; CDATA sections arrive here too)."""

    content: str


@dataclasses.dataclass(frozen=True)
class Comment(Token):
    """``<!-- ... -->``."""

    content: str


@dataclasses.dataclass(frozen=True)
class Instruction(Token):
    """Processing instruction ``<?target content?>``."""

    target: str
    content: str
