"""XML serializer: the inverse of :mod:`repro.xml.parser`.

Escapes the five predefined entities, quotes attributes with double
quotes, optionally pretty-prints, and round-trips with the parser
(property-tested in ``tests/xml/test_roundtrip.py``).
"""

from __future__ import annotations

from typing import Union

from repro.xml.model import (XMLCommentNode, XMLDocument, XMLElement,
                             XMLInstructionNode, XMLNode, XMLTextNode)

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def escape_text(raw: str) -> str:
    """Escape character data for element content."""
    for char, entity in _TEXT_ESCAPES.items():
        raw = raw.replace(char, entity)
    return raw


def escape_attribute(raw: str) -> str:
    """Escape an attribute value for a double-quoted literal."""
    for char, entity in _ATTR_ESCAPES.items():
        raw = raw.replace(char, entity)
    return raw


def serialize(item: Union[XMLDocument, XMLNode],
              declaration: bool = False) -> str:
    """Render a document or node subtree as XML text."""
    pieces: list[str] = []
    if declaration:
        pieces.append('<?xml version="1.0" encoding="UTF-8"?>')
    if isinstance(item, XMLDocument):
        for node in item.prolog:
            _render(node, pieces)
        _render(item.root, pieces)
        for node in item.epilog:
            _render(node, pieces)
    else:
        _render(item, pieces)
    return "".join(pieces)


def _render(node: XMLNode, pieces: list[str]) -> None:
    if isinstance(node, XMLElement):
        attributes = "".join(
            f' {key}="{escape_attribute(value)}"'
            for key, value in node.attributes.items())
        if node.children:
            pieces.append(f"<{node.tag}{attributes}>")
            for child in node.children:
                _render(child, pieces)
            pieces.append(f"</{node.tag}>")
        else:
            pieces.append(f"<{node.tag}{attributes}/>")
    elif isinstance(node, XMLTextNode):
        pieces.append(escape_text(node.content))
    elif isinstance(node, XMLCommentNode):
        pieces.append(f"<!--{node.content}-->")
    elif isinstance(node, XMLInstructionNode):
        body = f"{node.target} {node.content}" if node.content \
            else node.target
        pieces.append(f"<?{body}?>")
    else:  # pragma: no cover - model is closed
        raise TypeError(f"unknown node type {type(node)!r}")


def pretty(item: Union[XMLDocument, XMLNode], indent: str = "  ") -> str:
    """Indented rendering for human consumption.

    Not guaranteed to round-trip (whitespace is added inside elements
    that contain no text); use :func:`serialize` for lossless output.
    """
    pieces: list[str] = []
    root = item.root if isinstance(item, XMLDocument) else item
    _render_pretty(root, pieces, indent, 0)
    return "\n".join(pieces)


def _render_pretty(node: XMLNode, pieces: list[str], indent: str,
                   level: int) -> None:
    pad = indent * level
    if isinstance(node, XMLElement):
        attributes = "".join(
            f' {key}="{escape_attribute(value)}"'
            for key, value in node.attributes.items())
        has_element_children = any(
            isinstance(child, XMLElement) for child in node.children)
        if not node.children:
            pieces.append(f"{pad}<{node.tag}{attributes}/>")
        elif has_element_children:
            pieces.append(f"{pad}<{node.tag}{attributes}>")
            for child in node.children:
                _render_pretty(child, pieces, indent, level + 1)
            pieces.append(f"{pad}</{node.tag}>")
        else:
            inline = "".join(
                escape_text(child.content)
                for child in node.children
                if isinstance(child, XMLTextNode))
            pieces.append(
                f"{pad}<{node.tag}{attributes}>{inline}</{node.tag}>")
    elif isinstance(node, XMLTextNode):
        stripped = node.content.strip()
        if stripped:
            pieces.append(f"{pad}{escape_text(stripped)}")
    elif isinstance(node, XMLCommentNode):
        pieces.append(f"{pad}<!--{node.content}-->")
    elif isinstance(node, XMLInstructionNode):
        body = f"{node.target} {node.content}" if node.content \
            else node.target
        pieces.append(f"{pad}<?{body}?>")
