"""Synthetic XML document generators.

The paper names no benchmark corpus, so the experiments run on
deterministic synthetic documents (DESIGN.md, substitutions):

* :func:`book_document` — the book/chapter/title shape of the paper's
  Figure 1 and introduction;
* :func:`xmark_like` — an auction document modeled on the XMark benchmark
  schema (sites, regions, items, people, open auctions), the standard XML
  corpus of the paper's era;
* :func:`random_document` — shape-controlled random trees (depth, fanout,
  text density) for property tests;
* :func:`deep_document` / :func:`wide_document` — degenerate shapes that
  stress the depth and fanout axes of the query experiments.

Every generator takes a seed (or an explicit ``random.Random``) and is
fully deterministic.
"""

from __future__ import annotations

import random
import string
from typing import Sequence

from repro.xml.model import XMLDocument, XMLElement, XMLTextNode

_WORDS = (
    "ordered labeling scheme dynamic update query structural relabel "
    "document element interval containment ancestor descendant amortized "
    "logarithmic balanced subtree insertion density slack region auction "
    "bidder seller gold silver category annotation shipping payment"
).split()


def _rng(seed: int | random.Random) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def _sentence(rng: random.Random, min_words: int = 2,
              max_words: int = 8) -> str:
    count = rng.randint(min_words, max_words)
    return " ".join(rng.choice(_WORDS) for _ in range(count))


def _identifier(rng: random.Random, prefix: str) -> str:
    suffix = "".join(rng.choice(string.ascii_lowercase) for _ in range(4))
    return f"{prefix}{suffix}{rng.randint(0, 9999)}"


# ---------------------------------------------------------------------------
# Figure 1 shape
# ---------------------------------------------------------------------------
def book_document(chapters: int = 3, sections_per_chapter: int = 4,
                  seed: int | random.Random = 0) -> XMLDocument:
    """A book like the paper's Figure 1: book/chapter/title (+sections).

    ``book_document(1, 0)`` is exactly Figure 1's tree: a book with one
    chapter holding a title, plus a book-level title.
    """
    rng = _rng(seed)
    book = XMLElement("book")
    for number in range(chapters):
        chapter = XMLElement("chapter", [("number", str(number + 1))])
        title = XMLElement("title")
        title.append_child(XMLTextNode(_sentence(rng, 1, 4)))
        chapter.append_child(title)
        for _ in range(sections_per_chapter):
            section = XMLElement("section")
            heading = XMLElement("title")
            heading.append_child(XMLTextNode(_sentence(rng, 1, 3)))
            section.append_child(heading)
            para = XMLElement("para")
            para.append_child(XMLTextNode(_sentence(rng, 4, 10)))
            section.append_child(para)
            chapter.append_child(section)
        book.append_child(chapter)
    book_title = XMLElement("title")
    book_title.append_child(XMLTextNode(_sentence(rng, 1, 4)))
    book.append_child(book_title)
    return XMLDocument(book)


# ---------------------------------------------------------------------------
# XMark-like auction data
# ---------------------------------------------------------------------------
_REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")


def _item(rng: random.Random, number: int) -> XMLElement:
    item = XMLElement("item", [("id", f"item{number}")])
    name = XMLElement("name")
    name.append_child(XMLTextNode(_sentence(rng, 1, 3)))
    item.append_child(name)
    location = XMLElement("location")
    location.append_child(XMLTextNode(rng.choice(_REGIONS)))
    item.append_child(location)
    quantity = XMLElement("quantity")
    quantity.append_child(XMLTextNode(str(rng.randint(1, 10))))
    item.append_child(quantity)
    description = XMLElement("description")
    parlist = XMLElement("parlist")
    for _ in range(rng.randint(1, 3)):
        listitem = XMLElement("listitem")
        listitem.append_child(XMLTextNode(_sentence(rng, 3, 9)))
        parlist.append_child(listitem)
    description.append_child(parlist)
    item.append_child(description)
    if rng.random() < 0.5:
        payment = XMLElement("payment")
        payment.append_child(XMLTextNode(
            rng.choice(("Cash", "Creditcard", "Money order"))))
        item.append_child(payment)
    return item


def _person(rng: random.Random, number: int) -> XMLElement:
    person = XMLElement("person", [("id", f"person{number}")])
    name = XMLElement("name")
    name.append_child(XMLTextNode(_identifier(rng, "user-")))
    person.append_child(name)
    email = XMLElement("emailaddress")
    email.append_child(XMLTextNode(
        f"mailto:{_identifier(rng, '')}@example.org"))
    person.append_child(email)
    if rng.random() < 0.4:
        address = XMLElement("address")
        for part in ("street", "city", "country"):
            field = XMLElement(part)
            field.append_child(XMLTextNode(_sentence(rng, 1, 2)))
            address.append_child(field)
        person.append_child(address)
    return person


def _open_auction(rng: random.Random, number: int,
                  n_items: int, n_people: int) -> XMLElement:
    auction = XMLElement("open_auction", [("id", f"auction{number}")])
    itemref = XMLElement(
        "itemref", [("item", f"item{rng.randrange(max(1, n_items))}")])
    auction.append_child(itemref)
    for _ in range(rng.randint(0, 4)):
        bidder = XMLElement("bidder")
        personref = XMLElement(
            "personref",
            [("person", f"person{rng.randrange(max(1, n_people))}")])
        bidder.append_child(personref)
        increase = XMLElement("increase")
        increase.append_child(XMLTextNode(f"{rng.randint(1, 50)}.00"))
        bidder.append_child(increase)
        auction.append_child(bidder)
    current = XMLElement("current")
    current.append_child(XMLTextNode(f"{rng.randint(10, 500)}.00"))
    auction.append_child(current)
    return auction


def xmark_like(n_items: int = 50, n_people: int = 25,
               n_auctions: int = 20,
               seed: int | random.Random = 0) -> XMLDocument:
    """An XMark-flavored auction site document.

    Shape: ``site/regions/<region>/item...``, ``site/people/person...``,
    ``site/open_auctions/open_auction...`` — the tag mix the XML query
    literature of the paper's period benchmarks against.
    """
    rng = _rng(seed)
    site = XMLElement("site")
    regions = XMLElement("regions")
    region_elements = {name: XMLElement(name) for name in _REGIONS}
    for number in range(n_items):
        region = rng.choice(_REGIONS)
        region_elements[region].append_child(_item(rng, number))
    for name in _REGIONS:
        regions.append_child(region_elements[name])
    site.append_child(regions)
    people = XMLElement("people")
    for number in range(n_people):
        people.append_child(_person(rng, number))
    site.append_child(people)
    auctions = XMLElement("open_auctions")
    for number in range(n_auctions):
        auctions.append_child(
            _open_auction(rng, number, n_items, n_people))
    site.append_child(auctions)
    return XMLDocument(site)


# ---------------------------------------------------------------------------
# shape-controlled random trees
# ---------------------------------------------------------------------------
def random_document(n_elements: int = 100, max_depth: int = 8,
                    max_fanout: int = 6, text_probability: float = 0.4,
                    tags: Sequence[str] = ("a", "b", "c", "d", "e"),
                    seed: int | random.Random = 0) -> XMLDocument:
    """A random ordered tree with ``n_elements`` elements.

    Elements are added one at a time under a random existing element whose
    depth allows it, biased toward recently created elements so the tree
    is neither a path nor a star.
    """
    if n_elements < 1:
        raise ValueError("n_elements must be >= 1")
    rng = _rng(seed)
    root = XMLElement(rng.choice(tags))
    open_slots: list[XMLElement] = [root]
    created = 1
    while created < n_elements:
        # Bias toward the most recent elements (locality of real edits).
        index = min(len(open_slots) - 1,
                    int(rng.betavariate(2.0, 1.0) * len(open_slots)))
        parent = open_slots[index]
        element = XMLElement(rng.choice(tags))
        if rng.random() < text_probability:
            element.append_child(XMLTextNode(_sentence(rng, 1, 5)))
        parent.append_child(element)
        created += 1
        if element.depth() < max_depth:
            open_slots.append(element)
        saturated = (parent.depth() + 1 >= max_depth or
                     sum(1 for _ in parent.child_elements()) >= max_fanout)
        if saturated and len(open_slots) > 1 and parent in open_slots:
            open_slots.remove(parent)
    return XMLDocument(root)


def deep_document(depth: int, tag: str = "level") -> XMLDocument:
    """A single path of ``depth`` nested elements (query depth stress)."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    root = XMLElement(f"{tag}0")
    current = root
    for level in range(1, depth):
        child = XMLElement(f"{tag}{level}")
        current.append_child(child)
        current = child
    current.append_child(XMLTextNode("bottom"))
    return XMLDocument(root)


def wide_document(n_children: int, tag: str = "row") -> XMLDocument:
    """One root with ``n_children`` flat children (fanout stress)."""
    if n_children < 0:
        raise ValueError("n_children must be >= 0")
    root = XMLElement("table")
    for number in range(n_children):
        child = XMLElement(tag, [("n", str(number))])
        child.append_child(XMLTextNode(str(number)))
        root.append_child(child)
    return XMLDocument(root)
