"""From-scratch XML tokenizer and document parser.

Implements the subset of XML 1.0 the experiments need, with no third-party
or stdlib-XML dependencies (the parser *is* one of the paper's assumed
substrates):

* elements with attributes (single- or double-quoted), self-closing tags;
* character data with the five predefined entities plus decimal and
  hexadecimal character references;
* CDATA sections, comments, processing instructions;
* an XML declaration and a (non-validating, skipped) DOCTYPE.

The tokenizer is a single left-to-right scan producing
:mod:`repro.xml.tokens` values; :func:`parse` feeds them to the tree
builder in :mod:`repro.xml.model`.  Errors carry line/column positions.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import XMLSyntaxError
from repro.xml.tokens import Comment, EndTag, Instruction, StartTag, Text

_PREDEFINED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

_NAME_START_EXTRAS = "_:"
_NAME_EXTRAS = "_:.-"


def _is_name_start(char: str) -> bool:
    return char.isalpha() or char in _NAME_START_EXTRAS


def _is_name_char(char: str) -> bool:
    return char.isalnum() or char in _NAME_EXTRAS


class _Scanner:
    """Cursor over the input with line/column tracking."""

    def __init__(self, text: str):
        self.text = text
        self.position = 0

    def eof(self) -> bool:
        return self.position >= len(self.text)

    def peek(self) -> str:
        if self.eof():
            return ""
        return self.text[self.position]

    def advance(self, count: int = 1) -> None:
        self.position += count

    def starts_with(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.position)

    def find(self, needle: str) -> int:
        return self.text.find(needle, self.position)

    def location(self) -> tuple[int, int]:
        """(line, column), both 1-based, of the current position."""
        consumed = self.text[:self.position]
        line = consumed.count("\n") + 1
        column = self.position - consumed.rfind("\n")
        return line, column

    def error(self, message: str) -> XMLSyntaxError:
        line, column = self.location()
        return XMLSyntaxError(message, position=self.position,
                              line=line, column=column)

    def skip_whitespace(self) -> None:
        while not self.eof() and self.peek() in " \t\r\n":
            self.advance()

    def read_name(self) -> str:
        start = self.position
        if self.eof() or not _is_name_start(self.peek()):
            raise self.error("expected a name")
        self.advance()
        while not self.eof() and _is_name_char(self.peek()):
            self.advance()
        return self.text[start:self.position]


def decode_entities(raw: str, scanner: _Scanner | None = None) -> str:
    """Expand ``&name;``, ``&#dd;`` and ``&#xhh;`` references in ``raw``."""
    if "&" not in raw:
        return raw
    pieces: list[str] = []
    index = 0
    while index < len(raw):
        amp = raw.find("&", index)
        if amp < 0:
            pieces.append(raw[index:])
            break
        pieces.append(raw[index:amp])
        semi = raw.find(";", amp + 1)
        if semi < 0:
            message = "unterminated entity reference"
            raise scanner.error(message) if scanner else XMLSyntaxError(
                message)
        entity = raw[amp + 1:semi]
        pieces.append(_decode_entity(entity, scanner))
        index = semi + 1
    return "".join(pieces)


def _decode_entity(entity: str, scanner: _Scanner | None) -> str:
    if entity in _PREDEFINED_ENTITIES:
        return _PREDEFINED_ENTITIES[entity]
    if entity.startswith("#x") or entity.startswith("#X"):
        try:
            return chr(int(entity[2:], 16))
        except ValueError:
            pass
    elif entity.startswith("#"):
        try:
            return chr(int(entity[1:]))
        except ValueError:
            pass
    message = f"unknown entity &{entity};"
    raise scanner.error(message) if scanner else XMLSyntaxError(message)


def tokenize(text: str) -> Iterator[StartTag | EndTag | Text | Comment |
                                    Instruction]:
    """Scan ``text`` into the paper's begin/end/text token list.

    Self-closing elements emit a ``StartTag`` immediately followed by the
    matching ``EndTag`` — the element still occupies two label slots, as
    the L-Tree labeling requires.
    """
    scanner = _Scanner(text)
    while not scanner.eof():
        if scanner.peek() != "<":
            yield from _scan_text(scanner)
            continue
        if scanner.starts_with("<!--"):
            yield _scan_comment(scanner)
        elif scanner.starts_with("<![CDATA["):
            yield _scan_cdata(scanner)
        elif scanner.starts_with("<!DOCTYPE"):
            _skip_doctype(scanner)
        elif scanner.starts_with("<?"):
            token = _scan_instruction(scanner)
            if token is not None:
                yield token
        elif scanner.starts_with("</"):
            yield _scan_end_tag(scanner)
        else:
            yield from _scan_start_tag(scanner)


def _scan_text(scanner: _Scanner) -> Iterator[Text]:
    start = scanner.position
    next_tag = scanner.find("<")
    if next_tag < 0:
        next_tag = len(scanner.text)
    raw = scanner.text[start:next_tag]
    scanner.advance(next_tag - start)
    content = decode_entities(raw, scanner)
    if content:
        yield Text(content)


def _scan_comment(scanner: _Scanner) -> Comment:
    scanner.advance(len("<!--"))
    end = scanner.find("-->")
    if end < 0:
        raise scanner.error("unterminated comment")
    content = scanner.text[scanner.position:end]
    scanner.position = end + len("-->")
    return Comment(content)


def _scan_cdata(scanner: _Scanner) -> Text:
    scanner.advance(len("<![CDATA["))
    end = scanner.find("]]>")
    if end < 0:
        raise scanner.error("unterminated CDATA section")
    content = scanner.text[scanner.position:end]
    scanner.position = end + len("]]>")
    return Text(content)


def _skip_doctype(scanner: _Scanner) -> None:
    """Skip a DOCTYPE, balancing an optional internal subset."""
    scanner.advance(len("<!DOCTYPE"))
    depth = 0
    while not scanner.eof():
        char = scanner.peek()
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        elif char == ">" and depth == 0:
            scanner.advance()
            return
        scanner.advance()
    raise scanner.error("unterminated DOCTYPE")


def _scan_instruction(scanner: _Scanner) -> Instruction | None:
    scanner.advance(len("<?"))
    target = scanner.read_name()
    end = scanner.find("?>")
    if end < 0:
        raise scanner.error("unterminated processing instruction")
    content = scanner.text[scanner.position:end].strip()
    scanner.position = end + len("?>")
    if target.lower() == "xml":
        return None  # XML declaration: consumed, not part of the document
    return Instruction(target, content)


def _scan_end_tag(scanner: _Scanner) -> EndTag:
    scanner.advance(len("</"))
    name = scanner.read_name()
    scanner.skip_whitespace()
    if scanner.peek() != ">":
        raise scanner.error(f"malformed end tag </{name}")
    scanner.advance()
    return EndTag(name)


def _scan_start_tag(scanner: _Scanner) -> Iterator[StartTag | EndTag]:
    scanner.advance(1)  # consume "<"
    name = scanner.read_name()
    attributes: list[tuple[str, str]] = []
    seen: set[str] = set()
    while True:
        scanner.skip_whitespace()
        if scanner.eof():
            raise scanner.error(f"unterminated start tag <{name}")
        char = scanner.peek()
        if char == ">":
            scanner.advance()
            yield StartTag(name, tuple(attributes))
            return
        if scanner.starts_with("/>"):
            scanner.advance(2)
            yield StartTag(name, tuple(attributes))
            yield EndTag(name)
            return
        key = scanner.read_name()
        if key in seen:
            raise scanner.error(f"duplicate attribute {key!r}")
        seen.add(key)
        scanner.skip_whitespace()
        if scanner.peek() != "=":
            raise scanner.error(f"attribute {key!r} lacks '='")
        scanner.advance()
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in "'\"":
            raise scanner.error(f"attribute {key!r} value is not quoted")
        scanner.advance()
        closing = scanner.find(quote)
        if closing < 0:
            raise scanner.error(f"unterminated value for {key!r}")
        raw = scanner.text[scanner.position:closing]
        scanner.position = closing + 1
        attributes.append((key, decode_entities(raw, scanner)))


def parse(text: str):
    """Parse ``text`` into an :class:`repro.xml.model.XMLDocument`."""
    from repro.xml.model import build_document
    return build_document(tokenize(text))
