"""Experiment harness: measurement functions, report rendering and the
per-figure/claim experiment registry with its CLI
(``python -m repro.analysis``)."""

from repro.analysis.amortized import (growth_exponent, measure_batch_cost,
                                      measure_label_bits,
                                      measure_ltree_amortized,
                                      measure_parameter_grid,
                                      measure_scheme_comparison,
                                      measure_virtual_vs_materialized)
from repro.analysis.experiments import EXPERIMENTS, run
from repro.analysis.report import ExperimentReport, format_table

__all__ = [
    "EXPERIMENTS",
    "run",
    "ExperimentReport",
    "format_table",
    "measure_ltree_amortized",
    "measure_label_bits",
    "measure_batch_cost",
    "measure_scheme_comparison",
    "measure_parameter_grid",
    "measure_virtual_vs_materialized",
    "growth_exponent",
]
