"""Measurement harness: run workloads, collect the paper's cost metrics.

All functions here return plain data (lists of tuples) consumed by the
experiment registry and the pytest-benchmark suites.  Randomness is
seeded; results are deterministic.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

from repro.core import cost as cost_model
from repro.core.ltree import LTree
from repro.core.params import LTreeParams
from repro.core.stats import Counters
from repro.order.registry import make_scheme
from repro.workloads import updates as W


def measure_ltree_amortized(
        params: LTreeParams, sizes: Sequence[int],
        workload: Callable[[int], Iterable[W.Operation]] =
        W.uniform_inserts) -> list[tuple[int, float, float]]:
    """(n, measured amortized cost, paper bound) for growing sizes.

    The measured cost is ``(count_updates + relabels) / inserts`` — the
    paper's §3.1 accounting — after inserting up to each target size.
    """
    rows = []
    for size in sizes:
        stats = Counters()
        scheme = _ltree_scheme(params, stats)
        W.apply_workload(scheme, workload(size - 2))
        bound = cost_model.amortized_insert_cost(params.f, params.s, size)
        rows.append((size, stats.amortized_cost(), bound))
    return rows


def measure_label_bits(params: LTreeParams, sizes: Sequence[int],
                       workload: Callable[[int], Iterable[W.Operation]] =
                       W.uniform_inserts) -> list[tuple[int, int, int]]:
    """(n, measured max-label bits, paper bits bound) per size."""
    rows = []
    for size in sizes:
        stats = Counters()
        scheme = _ltree_scheme(params, stats)
        W.apply_workload(scheme, workload(size - 2))
        measured = scheme.label_bits()
        bound = params.max_label_bits(size)
        rows.append((size, measured, bound))
    return rows


def measure_batch_cost(params: LTreeParams, total_inserts: int,
                       run_lengths: Sequence[int], seed: int = 0
                       ) -> list[tuple[int, float, float]]:
    """(k, measured amortized cost, §4.1 bound) for batch sizes ``k``.

    Every run inserts the same total number of leaves so the final tree
    sizes match; only the batch granularity changes.
    """
    rows = []
    for run_length in run_lengths:
        n_runs = max(1, total_inserts // run_length)
        stats = Counters()
        scheme = _ltree_scheme(params, stats)
        W.apply_workload(
            scheme, W.run_inserts(n_runs, run_length, seed=seed))
        n_final = n_runs * run_length + 2
        bound = cost_model.batch_insert_cost(params.f, params.s, n_final,
                                             run_length)
        rows.append((run_length, stats.amortized_cost(), bound))
    return rows


def measure_scheme_comparison(
        scheme_names: Sequence[str], n_ops: int,
        workloads: dict[str, Callable[[int], Iterable[W.Operation]]]
        ) -> list[tuple[str, str, float, int]]:
    """(workload, scheme, relabels/insert, label bits) cross product."""
    rows = []
    for workload_name, workload in workloads.items():
        for name in scheme_names:
            stats = Counters()
            scheme = make_scheme(name, stats)
            result = W.apply_workload(scheme, workload(n_ops))
            rows.append((workload_name, name,
                         result.relabels_per_insert, result.label_bits))
    return rows


def measure_parameter_grid(sizes_n: int, f_values: Sequence[int],
                           s_values: Sequence[int], seed: int = 0
                           ) -> list[tuple[int, int, float, float]]:
    """(f, s, measured cost, predicted cost) over the integer grid.

    Drives each valid parameter pair through the same uniform workload —
    experiment E3's measured side.
    """
    rows = []
    for f in f_values:
        for s in s_values:
            if s < 2 or f % s != 0 or f // s < 2:
                continue
            params = LTreeParams(f=f, s=s)
            stats = Counters()
            scheme = _ltree_scheme(params, stats)
            W.apply_workload(scheme,
                             W.uniform_inserts(sizes_n - 2, seed=seed))
            predicted = cost_model.amortized_insert_cost(f, s, sizes_n)
            rows.append((f, s, stats.amortized_cost(), predicted))
    return rows


def growth_exponent(rows: Sequence[tuple[int, float, float]]) -> float:
    """Least-squares slope of measured cost against log2(n).

    ~constant slope confirms the O(log n) shape: cost ≈ a·log2(n) + b.
    Returns the slope ``a``.
    """
    xs = [math.log2(row[0]) for row in rows]
    ys = [row[1] for row in rows]
    n = len(rows)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    covariance = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    variance = sum((x - mean_x) ** 2 for x in xs)
    if variance == 0.0:
        return 0.0
    return covariance / variance


def _ltree_scheme(params: LTreeParams, stats: Counters):
    from repro.order.ltree_list import LTreeListLabeling
    return LTreeListLabeling(params, stats=stats)


def measure_virtual_vs_materialized(params: LTreeParams, n_ops: int,
                                    seed: int = 0
                                    ) -> dict[str, dict[str, float]]:
    """Identical op sequence on both variants; cost/storage comparison.

    Both variants receive the same (document-order position, side)
    insertion sequence, so their final label sequences are identical
    (verified by tests); what differs is the work each does.  Handle
    bookkeeping is kept outside the measured structures so the counters
    reflect maintenance cost only.
    """
    import random

    from repro.core.virtual import VirtualLTree

    results: dict[str, dict[str, float]] = {}
    for variant in ("materialized", "virtual"):
        stats = Counters()
        rng = random.Random(seed)
        if variant == "materialized":
            tree = LTree(params, stats)
            leaves = list(tree.bulk_load(range(4)))
            for count in range(n_ops):
                index = rng.randrange(len(leaves))
                if rng.random() < 0.5:
                    leaf = tree.insert_after(leaves[index], count)
                    leaves.insert(index + 1, leaf)
                else:
                    leaf = tree.insert_before(leaves[index], count)
                    leaves.insert(index, leaf)
            structure_nodes = sum(1 for _ in _iter_nodes(tree))
            labels = tree.labels()
        else:
            vtree = VirtualLTree(params, stats)
            vlabels = vtree.bulk_load(range(4))
            for count in range(n_ops):
                index = rng.randrange(len(vlabels))
                if rng.random() < 0.5:
                    vtree.insert_after(vlabels[index], count)
                else:
                    vtree.insert_before(vlabels[index], count)
                # Refresh document-order labels; cancel the scan's access
                # noise so counters reflect maintenance work only.
                accesses_before = stats.node_accesses
                vlabels = vtree.labels()
                stats.node_accesses = accesses_before
            structure_nodes = 0  # no materialized L-Tree nodes at all
            labels = vtree.labels()
        results[variant] = {
            "relabels": float(stats.relabels),
            "splits": float(stats.splits),
            "node_accesses": float(stats.node_accesses),
            "structure_nodes": float(structure_nodes),
            "max_label": float(labels[-1]),
        }
    return results


def _iter_nodes(tree: LTree):
    stack = [tree.root]
    while stack:
        node = stack.pop()
        yield node
        if node.children is not None:
            stack.extend(node.children)
