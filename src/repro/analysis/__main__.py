"""``python -m repro.analysis [ids...] [--markdown PATH]``"""

import sys

from repro.analysis.experiments import main

if __name__ == "__main__":
    sys.exit(main())
