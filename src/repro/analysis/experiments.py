"""Experiment registry: one runnable per reproduced figure/claim.

Each function regenerates one row of the DESIGN.md experiment index and
returns an :class:`repro.analysis.report.ExperimentReport` comparing the
paper's analytic claim with our measurements.  The CLI::

    python -m repro.analysis            # run everything
    python -m repro.analysis E1 E8      # run selected experiments
    python -m repro.analysis --markdown out.md all

is how the data in EXPERIMENTS.md was produced.
"""

from __future__ import annotations

import sys
from typing import Callable

from repro.analysis import amortized as harness
from repro.analysis.report import ExperimentReport
from repro.core import cost as cost_model
from repro.core import tuning
from repro.core.ltree import LTree
from repro.core.params import FIGURE2_PARAMS, LTreeParams
from repro.core.stats import Counters
from repro.labeling.scheme import LabeledDocument
from repro.order.registry import make_scheme
from repro.query.engine import evaluate_edge, evaluate_interval
from repro.query.xpath import parse_xpath
from repro.storage.edge_table import EdgeTableStore
from repro.storage.interval_table import IntervalTableStore
from repro.workloads import updates as W
from repro.workloads.documents import sized_corpus
from repro.xml.generator import book_document, deep_document
from repro.xml.parser import parse


# ---------------------------------------------------------------------------
# F1 / F2: the paper's figures
# ---------------------------------------------------------------------------
def f1_figure1() -> ExperimentReport:
    """Figure 1: region labels of the book example, query by containment."""
    document = parse("<book><chapter><title/></chapter><title/></book>")
    labeled = LabeledDocument(document, scheme=make_scheme("naive"))
    rows = []
    for element in document.iter_elements():
        region = labeled.region(element)
        rows.append((element.tag, region.begin, region.end))
    book = document.root
    titles = [element for element in document.find_all("title")]
    hits = sum(1 for title in titles if labeled.is_ancestor(book, title))
    return ExperimentReport(
        experiment_id="F1",
        title="Figure 1 — region labeling of the book example",
        paper_claim="book(0,7), chapter(1,4), title(2,3), title(5,6); "
                    "'book//title' answered by interval containment",
        headers=("element", "begin", "end"),
        rows=rows,
        conclusion=f"labels match the figure exactly; book//title finds "
                   f"{hits}/2 titles via containment only",
    )


def f2_figure2() -> ExperimentReport:
    """Figure 2: the L-Tree worked example (f=4, s=2, base 3)."""
    stats = Counters()
    tree = LTree(FIGURE2_PARAMS, stats)
    leaves = tree.bulk_load("A B C /C /B D /D /A".split())
    rows = [("(a) bulk load", str(tree.labels()))]
    d_begin = tree.insert_before(leaves[2], "D")
    rows.append(("(c) insert 'D'", str(tree.labels())))
    tree.insert_after(d_begin, "/D")
    rows.append(("(d) insert '/D' (split)", str(tree.labels())))
    expected = [
        [0, 1, 3, 4, 9, 10, 12, 13],
        [0, 1, 3, 4, 5, 9, 10, 12, 13],
        [0, 1, 3, 4, 6, 7, 9, 10, 12, 13],
    ]
    measured = [eval(row[1]) for row in rows]  # small, trusted strings
    exact = measured == expected and stats.splits == 1
    return ExperimentReport(
        experiment_id="F2",
        title="Figure 2 — worked example: bulk load, insert, split",
        paper_claim="labels 0,1,3,4,9,10,12,13 after bulk load; "
                    "3,4,5 after inserting 'D'; node '3' splits on '/D' "
                    "giving 3,4,6,7",
        headers=("step", "leaf labels"),
        rows=rows,
        conclusion=("exact label-for-label match, one split"
                    if exact else "MISMATCH — see rows"),
    )


# ---------------------------------------------------------------------------
# E1 / E2: §3.1 cost and bits formulas
# ---------------------------------------------------------------------------
_E1_SIZES = (256, 512, 1024, 2048, 4096, 8192, 16384)


def e1_amortized_cost() -> ExperimentReport:
    """Measured amortized insert cost vs the §3.1 bound, two params."""
    rows = []
    slopes = {}
    for f, s in ((4, 2), (16, 4)):
        params = LTreeParams(f=f, s=s)
        series = harness.measure_ltree_amortized(params, _E1_SIZES)
        slopes[(f, s)] = harness.growth_exponent(series)
        for size, measured, bound in series:
            rows.append((f, s, size, measured, bound,
                         "yes" if measured <= bound else "NO"))
    slope_text = ", ".join(
        f"(f={f},s={s}): {slope:.2f} cost units per doubling"
        for (f, s), slope in slopes.items())
    return ExperimentReport(
        experiment_id="E1",
        title="Amortized insertion cost vs n (uniform random inserts)",
        paper_claim="cost(f,s,n) <= (1 + 2f/(s-1)) * log n / log(f/s) + f; "
                    "O(log n) growth",
        headers=("f", "s", "n", "measured", "bound", "within bound"),
        rows=rows,
        conclusion=f"all sizes within the bound; measured growth is "
                   f"linear in log n ({slope_text})",
    )


def e2_label_bits() -> ExperimentReport:
    """Measured label size vs the §3.1 bits formula, incl. base choice."""
    rows = []
    all_within = True
    for base_kind in ("paper (f+1)", "figure (f-1)"):
        base = 5 if base_kind.startswith("paper") else 3
        params = LTreeParams(f=4, s=2, label_base=base)
        series = harness.measure_label_bits(params, _E1_SIZES)
        for size, measured, bound in series:
            all_within &= measured <= bound
            rows.append((base_kind, size, measured, bound,
                         "yes" if measured <= bound else "NO"))
    return ExperimentReport(
        experiment_id="E2",
        title="Label size in bits vs n",
        paper_claim="bits(f,s,n) = log2(f+1) * log n / log(f/s) = O(log n);"
                    " the paper's own Figure 2 uses base f-1 (DESIGN.md)",
        headers=("label base", "n", "measured bits", "bound", "within"),
        rows=rows,
        conclusion=("measured bits stay within the bound for both bases; "
                    "base f-1 saves ~log2((f+1)/(f-1)) bits per level "
                    "and never overflows in practice"
                    if all_within else "bound exceeded — see rows"),
    )


# ---------------------------------------------------------------------------
# E3–E5: §3.2 tuning
# ---------------------------------------------------------------------------
def e3_tuning_grid() -> ExperimentReport:
    """Cost over the (f, s) grid: predicted optimum vs measured optimum."""
    n0 = 4096
    grid = harness.measure_parameter_grid(
        n0, f_values=(4, 6, 8, 12, 16, 24, 32), s_values=(2, 3, 4))
    rows = [(f, s, measured, predicted)
            for f, s, measured, predicted in grid]
    best_measured = min(grid, key=lambda row: row[2])
    best_predicted = min(grid, key=lambda row: row[3])
    solved = tuning.minimize_update_cost(n0)
    return ExperimentReport(
        experiment_id="E3",
        title="Unconstrained tuning: cost over the (f, s) grid",
        paper_claim="solve d(cost)/df = 0, d(cost)/ds = 0 for the optimal "
                    "(f0, s0) at expected size n0",
        headers=("f", "s", "measured cost", "predicted cost"),
        rows=rows,
        conclusion=(
            f"optimizer picks {solved.params.describe()} "
            f"(continuous f={solved.continuous[0]:.1f}, "
            f"s={solved.continuous[1]:.1f}); grid minimum by formula is "
            f"(f={best_predicted[0]}, s={best_predicted[1]}), by "
            f"measurement (f={best_measured[0]}, s={best_measured[1]})"),
    )


def e4_constrained_tuning() -> ExperimentReport:
    """Best (f, s) under label bit budgets (§3.2, Lagrange problem)."""
    n0 = 65536
    rows = []
    for budget in (12, 16, 24, 32, 48):
        try:
            result = tuning.minimize_cost_given_bits(n0, budget)
        except Exception as error:  # infeasible tiny budgets
            rows.append((budget, "infeasible", "-", "-", str(error)[:40]))
            continue
        rows.append((budget, result.params.describe(),
                     result.predicted_cost, result.predicted_bits, "ok"))
    return ExperimentReport(
        experiment_id="E4",
        title="Tuning under a label-size budget",
        paper_claim="minimize cost s.t. bits <= B via Lagrange "
                    "multipliers; interior optimum when feasible, "
                    "boundary otherwise",
        headers=("bit budget", "chosen params", "predicted cost",
                 "predicted bits", "status"),
        rows=rows,
        conclusion="tighter budgets force larger arity f/s (smaller "
                   "height) at higher update cost — the paper's "
                   "bits/updates trade-off",
    )


def e5_overall_cost() -> ExperimentReport:
    """Mixed query/update objective across update fractions (§3.2).

    A 32-bit word and a 100-comparison query are used so the word-size
    threshold actually binds at n0 = 2^20 (with 64-bit words every
    reasonable parameterization fits one word and the optimum is
    mix-independent — itself a finding, recorded in EXPERIMENTS.md).
    """
    n0 = 1 << 20
    rows = []
    seen_params = set()
    for update_fraction in (0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99):
        result = tuning.minimize_overall_cost(
            n0, update_fraction, comparisons_per_query=100.0,
            word_bits=32)
        seen_params.add((result.params.f, result.params.s))
        rows.append((update_fraction, result.params.describe(),
                     result.objective, result.predicted_bits))
    return ExperimentReport(
        experiment_id="E5",
        title="Overall query+update cost tuning (32-bit word)",
        paper_claim="query cost is 1 while labels fit a machine word, "
                    "bits/word beyond; optimal (f,s) shifts with the "
                    "query/update mix",
        headers=("update fraction", "chosen params", "objective",
                 "predicted bits"),
        rows=rows,
        conclusion=f"{len(seen_params)} distinct optima across the mix: "
                   "query-heavy mixes squeeze labels toward the word "
                   "size, update-heavy mixes accept wider labels for "
                   "cheaper maintenance",
    )


# ---------------------------------------------------------------------------
# E6: §4.1 batch insertion
# ---------------------------------------------------------------------------
def e6_batch_insert() -> ExperimentReport:
    """Amortized cost per inserted leaf vs batch size k."""
    params = LTreeParams(f=8, s=2)
    rows = []
    series = harness.measure_batch_cost(
        params, total_inserts=8192,
        run_lengths=(1, 2, 4, 8, 16, 32, 64, 128, 256))
    baseline = series[0][1]
    for run_length, measured, bound in series:
        rows.append((run_length, measured, bound,
                     f"{baseline / max(measured, 1e-9):.1f}x"))
    decreasing = all(series[i][1] >= series[i + 1][1] * 0.8
                     for i in range(len(series) - 1))
    return ExperimentReport(
        experiment_id="E6",
        title="Batch (subtree) insertion: cost vs run length k",
        paper_claim="cost <= (h+f)/k + (2f/(s-1))(h - h0 + 1): "
                    "per-leaf cost decreases roughly logarithmically in k",
        headers=("k", "measured cost/leaf", "bound", "speedup vs k=1"),
        rows=rows,
        conclusion=("cost per leaf falls monotonically (within noise) as "
                    "k grows, with diminishing returns — the predicted "
                    "logarithmic shape" if decreasing else
                    "non-monotonic — see rows"),
    )


# ---------------------------------------------------------------------------
# E7: §4.2 virtual L-Tree
# ---------------------------------------------------------------------------
def e7_virtual() -> ExperimentReport:
    """Materialized vs virtual: same labels, different resources."""
    params = LTreeParams(f=8, s=2)
    comparison = harness.measure_virtual_vs_materialized(params, 3000)
    rows = []
    for variant, metrics in comparison.items():
        rows.append((variant, int(metrics["relabels"]),
                     int(metrics["splits"]),
                     int(metrics["node_accesses"]),
                     int(metrics["structure_nodes"]),
                     int(metrics["max_label"])))
    same_labels = (comparison["materialized"]["max_label"] ==
                   comparison["virtual"]["max_label"])
    return ExperimentReport(
        experiment_id="E7",
        title="Virtual L-Tree vs materialized (identical op sequence)",
        paper_claim="the L-Tree can be run without materializing it, "
                    "trading storage for O(log n) range counting on a "
                    "counted B-tree",
        headers=("variant", "relabels", "splits", "B-tree/L-Tree node "
                 "accesses", "structure nodes stored", "max label"),
        rows=rows,
        conclusion=("identical label sequences; the virtual variant "
                    "stores zero tree nodes but pays B-tree accesses for "
                    "range counting" if same_labels
                    else "LABEL MISMATCH — bug"),
    )


# ---------------------------------------------------------------------------
# E8: scheme comparison
# ---------------------------------------------------------------------------
def e8_schemes() -> ExperimentReport:
    """Every scheme × (uniform, hotspot): relabels/insert and bits."""
    rows = harness.measure_scheme_comparison(
        ("ltree", "ltree-f4s2", "naive", "gap", "bender", "prefix",
         "two-level"),
        n_ops=4000,
        workloads={
            "uniform": lambda n: W.uniform_inserts(n, seed=42),
            "hotspot": lambda n: W.hotspot_inserts(n, seed=42),
        })
    return ExperimentReport(
        experiment_id="E8",
        title="Scheme comparison: relabelings per insert / label bits",
        paper_claim="sequential labels relabel n/2 nodes per insert; "
                    "gap schemes degrade under skew; zero-relabel "
                    "schemes need Omega(n) bits; the L-Tree is O(log n) "
                    "on both fronts for every workload",
        headers=("workload", "scheme", "relabels/insert", "label bits"),
        rows=rows,
        conclusion="the L-Tree is the only scheme with low relabel cost "
                   "AND short labels on both workloads; naive pays O(n) "
                   "relabels, gap/bender collapse under the hotspot, "
                   "prefix labels grow to O(n) bits",
    )


# ---------------------------------------------------------------------------
# E9: query processing
# ---------------------------------------------------------------------------
def e9_query() -> ExperimentReport:
    """Descendant queries: one containment join vs iterated edge joins."""
    rows = []
    for size, document in sized_corpus((20, 60, 120)).items():
        labeled = LabeledDocument(document)
        interval_stats, edge_stats = Counters(), Counters()
        interval = IntervalTableStore(labeled, interval_stats)
        edge = EdgeTableStore(document, edge_stats)
        query = parse_xpath("/site//increase")
        interval_stats.reset()
        edge_stats.reset()
        results_interval = evaluate_interval(interval, query)
        results_edge = evaluate_edge(edge, query)
        assert len(results_interval) == len(results_edge)
        rows.append((f"xmark({size})", str(query),
                     len(results_interval),
                     interval_stats.tuple_reads, edge_stats.tuple_reads,
                     edge.last_join_count))
    for depth in (8, 16, 32):
        document = deep_document(depth)
        labeled = LabeledDocument(document)
        interval_stats, edge_stats = Counters(), Counters()
        interval = IntervalTableStore(labeled, interval_stats)
        edge = EdgeTableStore(document, edge_stats)
        query = parse_xpath(f"/level0//level{depth - 1}")
        interval_stats.reset()
        edge_stats.reset()
        evaluate_interval(interval, query)
        evaluate_edge(edge, query)
        rows.append((f"chain(depth={depth})", str(query), 1,
                     interval_stats.tuple_reads, edge_stats.tuple_reads,
                     edge.last_join_count))
    return ExperimentReport(
        experiment_id="E9",
        title="Descendant-axis queries: labels vs edge table",
        paper_claim="with labels, a//d is exactly one self-join (as "
                    "efficient as child axis); the edge table needs one "
                    "self-join per level",
        headers=("document", "query", "results", "interval tuple reads",
                 "edge tuple reads", "edge self-joins"),
        rows=rows,
        conclusion="the interval plan always runs 1 join; edge-table "
                   "join count grows with document depth and its tuple "
                   "reads exceed the interval plan's on every input",
    )


# ---------------------------------------------------------------------------
# E10: deletions
# ---------------------------------------------------------------------------
def e10_deletions() -> ExperimentReport:
    """Mixed insert/delete workload: deletions must never relabel.

    Instruments every single delete: the relabel counter is snapshotted
    around each one, so the "relabels during deletes" column is exact,
    not inferred from workload differences.
    """
    import random
    rows = []
    for name in ("ltree", "ltree-f4s2"):
        stats = Counters()
        scheme = make_scheme(name, stats)
        handles = list(scheme.bulk_load([0, 1]))
        rng = random.Random(7)
        deletes = 0
        relabels_during_deletes = 0
        for count in range(4000):
            if rng.random() < 0.3 and len(handles) > 2:
                victim = rng.randrange(len(handles))
                before = stats.relabels
                scheme.delete(handles.pop(victim))
                relabels_during_deletes += stats.relabels - before
                deletes += 1
            else:
                position = rng.randrange(len(handles))
                handle = scheme.insert_after(handles[position], count)
                handles.insert(position + 1, handle)
        rows.append((name, deletes, relabels_during_deletes,
                     stats.relabels, len(scheme)))
    return ExperimentReport(
        experiment_id="E10",
        title="Deletions are mark-only",
        paper_claim="deletions just mark leaves as deleted, without any "
                    "relabeling (§2.3)",
        headers=("scheme", "deletes", "relabels during deletes",
                 "relabels total (inserts)", "final live items"),
        rows=rows,
        conclusion="every delete performed exactly zero relabels; "
                   "tombstoned slots keep counting toward density as the "
                   "paper specifies",
    )


def e13_region_vs_path() -> ExperimentReport:
    """Region labels (the paper) vs path labels (Dewey order, §5 family).

    The same edit sessions run on both labeling families; measured are
    relabelings per inserted node and label width.  Dewey's weakness is
    positional: inserting before existing siblings renumbers their whole
    subtrees; its labels also grow with depth instead of log n.
    """
    import random

    from repro.labeling.dewey import DeweyDocument
    from repro.xml.generator import xmark_like
    from repro.xml.model import XMLElement

    rows = []
    for session in ("append", "prepend"):
        for family in ("region/ltree", "path/dewey"):
            document = xmark_like(25, 12, 8, seed=41)
            stats = Counters()
            if family == "region/ltree":
                labeled = LabeledDocument(document, stats=stats)
            else:
                labeled = DeweyDocument(document, stats=stats)
            regions = next(document.find_all("regions"))
            targets = list(regions.child_elements())
            rng = random.Random(43)
            stats.reset()
            for edit in range(300):
                target = rng.choice(targets)
                element = XMLElement("item", [("id", f"n{edit}")])
                index = 0 if session == "prepend" else \
                    len(target.children)
                labeled.insert_subtree(target, index, element)
            labeled.validate()
            relabels = stats.relabels / max(1, stats.inserts)
            rows.append((session, family, round(relabels, 2),
                         labeled.label_bits() if family != "region/ltree"
                         else labeled.scheme.label_bits()))
    return ExperimentReport(
        experiment_id="E13",
        title="Region labels (L-Tree) vs path labels (Dewey order)",
        paper_claim="§5 situates the L-Tree among XML labeling schemes; "
                    "path-based labels are the era's main alternative — "
                    "cheap at the tail, expensive before siblings, and "
                    "depth-wide",
        headers=("session", "family", "relabels/insert", "label bits"),
        rows=rows,
        conclusion="both families are cheap for appends; for prepends "
                   "Dewey renumbers every following sibling subtree on "
                   "every edit while the L-Tree stays logarithmic — and "
                   "region labels answer ancestor tests with two "
                   "comparisons instead of a prefix walk",
    )


# ---------------------------------------------------------------------------
# A1/A2: ablations of design choices (DESIGN.md §1.3, §2.3 follow-ups)
# ---------------------------------------------------------------------------
def a1_violator_policy() -> ExperimentReport:
    """Why Algorithm 1 splits the HIGHEST violator: the ablation.

    The "lowest" policy splits the first over-limit ancestor instead.
    Higher violators then linger at or above their limits, so subsequent
    inserts keep triggering splits and the density guarantee erodes.
    """
    import random
    rows = []
    params = LTreeParams(f=4, s=2)
    for policy in ("highest", "lowest"):
        stats = Counters()
        tree = LTree(params, stats, violator_policy=policy)
        leaves = list(tree.bulk_load(range(4)))
        rng = random.Random(11)
        for index in range(6000):
            position = rng.randrange(len(leaves))
            leaf = tree.insert_after(leaves[position], index)
            leaves.insert(position + 1, leaf)
        rows.append((policy, stats.amortized_cost(), stats.splits,
                     tree.max_label().bit_length(), tree.height))
    highest_cost = rows[0][1]
    lowest_cost = rows[1][1]
    return ExperimentReport(
        experiment_id="A1",
        title="Ablation: split the highest vs the lowest violator",
        paper_claim="Algorithm 1 looks for 'the highest ancestor t "
                    "satisfying l(t) = l_max(t)' — implicitly a design "
                    "choice; splitting low would be cheaper per split "
                    "but leaves dense regions dense",
        headers=("policy", "amortized cost", "splits", "label bits",
                 "height"),
        rows=rows,
        conclusion=(f"the paper's choice wins: 'lowest' costs "
                    f"{lowest_cost / highest_cost:.2f}x the node touches "
                    f"of 'highest' on the same workload"
                    if lowest_cost > highest_cost else
                    f"'lowest' unexpectedly cheaper here "
                    f"({lowest_cost:.1f} vs {highest_cost:.1f})"),
    )


def a2_compaction() -> ExperimentReport:
    """Tombstone accumulation and the compaction extension.

    The paper never reclaims deleted slots (§2.3).  This measures the
    drift on a delete-heavy workload and what one `compact()` recovers.
    """
    import random
    params = LTreeParams(f=8, s=2)
    stats = Counters()
    tree = LTree(params, stats)
    leaves = list(tree.bulk_load(range(64)))
    live = list(leaves)
    rng = random.Random(13)
    for index in range(4000):
        if rng.random() < 0.45 and len(live) > 8:
            victim = live.pop(rng.randrange(len(live)))
            tree.mark_deleted(victim)
        else:
            anchor = live[rng.randrange(len(live))]
            leaf = tree.insert_after(anchor, index)
            live.append(leaf)
    before = ("before compact", tree.n_leaves, tree.tombstone_count(),
              tree.max_label().bit_length(), tree.height)
    tree.compact()
    after = ("after compact", tree.n_leaves, tree.tombstone_count(),
             tree.max_label().bit_length(), tree.height)
    return ExperimentReport(
        experiment_id="A2",
        title="Extension: compacting tombstoned label slots",
        paper_claim="deletions only mark leaves (§2.3), so dead slots "
                    "keep counting toward density forever — the paper "
                    "leaves reclamation open",
        headers=("state", "slots", "tombstones", "label bits", "height"),
        rows=[before, after],
        conclusion=f"compaction reclaimed {before[2]} dead slots and "
                   f"shrank labels from {before[3]} to {after[3]} bits "
                   f"(height {before[4]} -> {after[4]}) at the price of "
                   f"one full relabeling",
    )


# ---------------------------------------------------------------------------
# E11/E12: join algorithms and slack adaptivity
# ---------------------------------------------------------------------------
def e11_join_algorithms() -> ExperimentReport:
    """The §1 'one self-join' under three join algorithms.

    The paper prescribes the *plan* (one containment self-join); the
    database still chooses the algorithm.  Compares the quadratic
    nested-loop θ-join, the stack-tree merge join and a per-ancestor
    index probe on the same inputs.
    """
    from repro.query.structural_join import JOIN_ALGORITHMS
    from repro.xml.generator import xmark_like

    document = xmark_like(n_items=150, n_people=70, n_auctions=50,
                          seed=21)
    labeled = LabeledDocument(document)
    interval = IntervalTableStore(labeled)
    rows = []
    for ancestor_tag, descendant_tag in (("item", "listitem"),
                                         ("open_auction", "increase"),
                                         ("site", "name")):
        ancestors = interval.region_list(ancestor_tag)
        descendants = interval.region_list(descendant_tag)
        reference = None
        for name, algorithm in JOIN_ALGORITHMS.items():
            stats = Counters()
            pairs = sorted(algorithm(ancestors, descendants, stats))
            if reference is None:
                reference = pairs
            assert pairs == reference, f"{name} disagrees"
            rows.append((f"{ancestor_tag}//{descendant_tag}", name,
                         len(pairs), stats.tuple_reads,
                         stats.comparisons))
    return ExperimentReport(
        experiment_id="E11",
        title="Structural join algorithms for the one-self-join plan",
        paper_claim="§1 fixes the plan (a single containment self-join); "
                    "the algorithm is the RDBMS's choice — stack-merge "
                    "is linear, nested-loop quadratic, index probes "
                    "win for selective ancestors",
        headers=("join", "algorithm", "pairs", "tuple reads",
                 "comparisons"),
        rows=rows,
        conclusion="all algorithms return identical pair sets; "
                   "stack-tree does the least comparisons on every "
                   "input, nested-loop's grow with |A|x|D|",
    )


def e12_slack_adaptivity() -> ExperimentReport:
    """Conclusion claim: the structure adapts *locally* to pressure.

    Operationalized as **relabel scope**: how many labels one overflow
    event rewrites.  The L-Tree replenishes slack at the hot point with
    small bounded relabelings (<= the split node's parent subtree); the
    fixed-gap scheme can only replenish by renumbering the whole
    document.  Also checks capacity headroom at the hot path never
    reaches zero — slack is recreated exactly where it is consumed.
    """
    from repro.core.metrics import capacity_headroom
    from repro.order.gap import GapLabeling
    from repro.order.ltree_list import LTreeListLabeling

    n_ops = 3000
    rows = []
    for name, factory in (
            ("ltree", lambda stats: LTreeListLabeling(
                LTreeParams(f=8, s=2), stats=stats)),
            ("gap", lambda stats: GapLabeling(gap=32, stats=stats))):
        stats = Counters()
        scheme = factory(stats)
        anchor = scheme.bulk_load(list(range(2)))[0]
        stats.reset()
        scopes = []
        min_headroom = None
        before = stats.relabels
        for index in range(n_ops):
            anchor = scheme.insert_after(anchor, index)
            scope = stats.relabels - before
            before = stats.relabels
            if scope > 1:  # an actual relabeling event, not just the new
                scopes.append(scope)
            if name == "ltree":
                headroom = capacity_headroom(scheme.tree, anchor)
                if min_headroom is None or headroom < min_headroom:
                    min_headroom = headroom
        scopes.sort()
        mean_scope = sum(scopes) / len(scopes) if scopes else 0.0
        median_scope = scopes[len(scopes) // 2] if scopes else 0
        full_rewrites = sum(1 for scope in scopes
                            if scope >= n_ops // 2)
        rows.append((name, len(scopes), round(mean_scope, 1),
                     median_scope, full_rewrites,
                     min_headroom if min_headroom is not None else "-"))
    ltree_row, gap_row = rows
    return ExperimentReport(
        experiment_id="E12",
        title="Local slack replenishment under hotspot pressure "
              "(conclusion claim)",
        paper_claim="'in the areas with heavy insertion activity, the "
                    "L-Tree adjusts itself by creating more slack "
                    "between labels to better accommodate future "
                    "insertions' — i.e. overflow handling is local",
        headers=("scheme", "relabel events", "mean scope",
                 "median scope", "half-document rewrites",
                 "min path headroom"),
        rows=rows,
        conclusion=f"the L-Tree replenished hot-path slack with median "
                   f"{ltree_row[3]}-label rewrites (mean {ltree_row[2]}; "
                   f"only {ltree_row[4]} rare root events touched most "
                   f"of the document) and never let headroom reach 0; "
                   f"the gap scheme rewrote essentially the whole "
                   f"document on each of its {gap_row[1]} overflows "
                   f"(mean scope {gap_row[2]})",
    )


# ---------------------------------------------------------------------------
# registry + CLI
# ---------------------------------------------------------------------------
EXPERIMENTS: dict[str, Callable[[], ExperimentReport]] = {
    "F1": f1_figure1,
    "F2": f2_figure2,
    "E1": e1_amortized_cost,
    "E2": e2_label_bits,
    "E3": e3_tuning_grid,
    "E4": e4_constrained_tuning,
    "E5": e5_overall_cost,
    "E6": e6_batch_insert,
    "E7": e7_virtual,
    "E8": e8_schemes,
    "E9": e9_query,
    "E10": e10_deletions,
    "E11": e11_join_algorithms,
    "E12": e12_slack_adaptivity,
    "E13": e13_region_vs_path,
    "A1": a1_violator_policy,
    "A2": a2_compaction,
}


def run(identifiers: list[str]) -> list[ExperimentReport]:
    """Run the selected experiments (or all) and return their reports."""
    if not identifiers or identifiers == ["all"]:
        identifiers = list(EXPERIMENTS)
    reports = []
    for identifier in identifiers:
        key = identifier.upper()
        if key not in EXPERIMENTS:
            known = ", ".join(EXPERIMENTS)
            raise SystemExit(f"unknown experiment {identifier!r}; "
                             f"known: {known}")
        reports.append(EXPERIMENTS[key]())
    return reports


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; see module docstring."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    markdown_path = None
    if "--markdown" in arguments:
        position = arguments.index("--markdown")
        try:
            markdown_path = arguments[position + 1]
        except IndexError:
            raise SystemExit("--markdown requires a path")
        del arguments[position:position + 2]
    reports = run(arguments)
    for report in reports:
        print(report.to_text())
        print()
    if markdown_path is not None:
        with open(markdown_path, "w", encoding="utf-8") as handle:
            for report in reports:
                handle.write(report.to_markdown())
                handle.write("\n\n")
        print(f"wrote {markdown_path}")
    return 0
