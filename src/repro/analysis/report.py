"""Experiment report model and table rendering.

Every experiment in :mod:`repro.analysis.experiments` produces an
:class:`ExperimentReport` — the paper's claim, the measured table, and a
verdict — rendered as aligned ASCII for the console or as Markdown for
EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Sequence


@dataclasses.dataclass
class ExperimentReport:
    """One reproduced figure/claim: metadata plus the measured table."""

    experiment_id: str
    title: str
    paper_claim: str
    headers: Sequence[str]
    rows: list[Sequence[Any]]
    conclusion: str = ""

    def to_text(self) -> str:
        lines = [
            f"[{self.experiment_id}] {self.title}",
            f"paper: {self.paper_claim}",
            "",
            format_table(self.headers, self.rows),
        ]
        if self.conclusion:
            lines += ["", f"measured: {self.conclusion}"]
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [
            f"### {self.experiment_id} — {self.title}",
            "",
            f"**Paper claim.** {self.paper_claim}",
            "",
            _markdown_table(self.headers, self.rows),
        ]
        if self.conclusion:
            lines += ["", f"**Measured.** {self.conclusion}"]
        return "\n".join(lines)


def _stringify(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    """Aligned monospace table."""
    text_rows = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for position, cell in enumerate(row):
            widths[position] = max(widths[position], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width)
                         for cell, width in zip(cells, widths))
    lines = [fmt(list(headers)), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in text_rows)
    return "\n".join(lines)


def _markdown_table(headers: Sequence[str],
                    rows: Sequence[Sequence[Any]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(cell)
                                       for cell in row) + " |")
    return "\n".join(lines)
