"""Relabel-free bit-string labels (Cohen, Kaplan & Milo direction).

Paper §1 cites [5]: *"an order-preserving labeling scheme without any
relabelings upon updates requires Ω(n) bits per label."*  This scheme makes
that trade concrete: labels are dyadic rationals in (0, 1) — equivalently,
finite binary strings — and an insertion takes the exact midpoint of its
neighbors.  **No label ever changes**, so relabel cost is zero by
construction; the price is label growth: one extra bit per insertion into
the same gap, Θ(n) bits under hotspot insertion (experiment E8 measures
both sides of the trade).
"""

from __future__ import annotations

from fractions import Fraction

from repro.order.base import LinkedItem, LinkedListScheme


class PrefixLabeling(LinkedListScheme):
    """Dyadic-fraction (bit-string) labels; zero relabelings ever."""

    name = "prefix"

    _ZERO = Fraction(0)
    _ONE = Fraction(1)

    def _assign_bulk(self, items: list[LinkedItem]) -> None:
        """Balanced initial labels: ``i/2^L`` at the minimal depth L."""
        count = len(items)
        if count == 0:
            return
        depth = max(1, (count + 1).bit_length())
        denominator = 1 << depth
        for index, item in enumerate(items):
            item.label = Fraction(index + 1, denominator)
            self.stats.relabels += 1

    def _assign_between(self, item: LinkedItem) -> None:
        low = item.prev.label if item.prev is not None else self._ZERO
        high = item.next.label if item.next is not None else self._ONE
        item.label = (low + high) / 2
        self.stats.relabels += 1  # the initial assignment only

    def label_bits(self) -> int:
        """Bits of the longest binary expansion among current labels.

        A dyadic ``p/2^L`` in lowest terms is a length-``L`` bit string.
        """
        widest = 0
        for handle in self.handles():
            label: Fraction = handle.label
            widest = max(widest, label.denominator.bit_length() - 1)
        return widest
