"""Sharded compact L-Tree as an ordered list-labeling scheme.

Adapts :class:`repro.core.sharded.ShardedCompactLTree` to the
:class:`repro.order.base.OrderedLabeling` interface through the shared
:class:`repro.order.compact_list.CompactEngineLabeling` machinery.
Handles are the engine's ``(shard, slot)`` pairs; labels are the
composed ``shard_prefix ⊕ local_label`` values, so list order equals
label order across shard boundaries with zero cross-shard relabeling
(`tests/core/test_compact_differential.py` holds the scheme order- and
liveness-identical to ``ltree-compact`` under the 12k-op sweep).

Every mutation is shard-local; pass ``shard_stats=True`` to give each
arena its own :class:`~repro.core.stats.Counters` and observe the
isolation directly.  Persistence writes one ``LTREEARR`` blob span per
shard and reopens **shard-lazily** — see
:meth:`repro.core.sharded.ShardedCompactLTree.load`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.params import DEFAULT_PARAMS, LTreeParams
from repro.core.sharded import (DEFAULT_N_SHARDS, RebalancePolicy,
                                ShardedCompactLTree)
from repro.core.stats import NULL_COUNTERS, Counters
from repro.order.compact_list import CompactEngineLabeling


class ShardedListLabeling(CompactEngineLabeling):
    """Order maintenance over per-shard compact L-Tree arenas.

    ``bulk_load`` accepts the engine's ``boundaries=`` keyword
    (explicit chunk sizes, one shard each) — the hook
    :class:`repro.labeling.scheme.LabeledDocument` uses to align
    shards with top-level document children, so a subtree edit
    provably writes one arena.
    """

    name = "ltree-sharded"

    ENGINE = ShardedCompactLTree

    #: the document layer partitions its token stream by top-level
    #: children when the scheme advertises this (see
    #: ``LabeledDocument._bulk_label``)
    supports_partitioned_bulk = True

    def __init__(self, params: LTreeParams = DEFAULT_PARAMS,
                 stats: Counters = NULL_COUNTERS,
                 n_shards: int = DEFAULT_N_SHARDS,
                 shard_stats: bool = False):
        super().__init__(params, stats, n_shards=n_shards,
                         shard_stats=shard_stats)

    @property
    def shard_counters(self) -> list[Counters]:
        """Per-shard counter sinks (see ``shard_stats``)."""
        return self.tree.shard_counters

    @property
    def shard_ids(self) -> tuple[int, ...]:
        """Stable shard ids in document order (directory epoch view)."""
        return self.tree.shard_ids

    @property
    def epoch(self) -> int:
        """Directory membership epoch (bumps on rebalance/bulk load)."""
        return self.tree.epoch

    def shard_report(self) -> list[dict]:
        """Per-shard occupancy rows — the rebalance policy's input."""
        return self.tree.shard_report()

    def shard_versions(self) -> dict[int, int]:
        """``shard id -> write version``: the dirty-shard report that
        lets a cached :class:`~repro.query.columnar.ColumnarStore`
        re-extract only the arenas written since it was built."""
        return self.tree.shard_versions()

    def resolve_handle(self, handle: tuple[int, int]) -> tuple[int, int]:
        """Current-epoch identity of a possibly pre-rebalance handle."""
        return self.tree.resolve_handle(handle)

    def split_shard(self, shard_id: int, at_leaf: int) -> tuple[int, int]:
        """Split one arena online; old handles keep resolving."""
        return self.tree.split_shard(shard_id, at_leaf)

    def merge_shards(self, id_a: int, id_b: int) -> int:
        """Merge two adjacent arenas online; old handles keep resolving."""
        return self.tree.merge_shards(id_a, id_b)

    def rebalance(self, policy: Optional[RebalancePolicy] = None,
                  max_rounds: int = 4) -> list[dict]:
        """Apply a :class:`RebalancePolicy` until its plan is empty."""
        return self.tree.rebalance(policy, max_rounds=max_rounds)
