"""Sharded compact L-Tree as an ordered list-labeling scheme.

Adapts :class:`repro.core.sharded.ShardedCompactLTree` to the
:class:`repro.order.base.OrderedLabeling` interface through the shared
:class:`repro.order.compact_list.CompactEngineLabeling` machinery.
Handles are the engine's ``(shard, slot)`` pairs; labels are the
composed ``shard_prefix ⊕ local_label`` values, so list order equals
label order across shard boundaries with zero cross-shard relabeling
(`tests/core/test_compact_differential.py` holds the scheme order- and
liveness-identical to ``ltree-compact`` under the 12k-op sweep).

Every mutation is shard-local; pass ``shard_stats=True`` to give each
arena its own :class:`~repro.core.stats.Counters` and observe the
isolation directly.  Persistence writes one ``LTREEARR`` blob span per
shard and reopens **shard-lazily** — see
:meth:`repro.core.sharded.ShardedCompactLTree.load`.
"""

from __future__ import annotations

from repro.core.params import DEFAULT_PARAMS, LTreeParams
from repro.core.sharded import DEFAULT_N_SHARDS, ShardedCompactLTree
from repro.core.stats import NULL_COUNTERS, Counters
from repro.order.compact_list import CompactEngineLabeling


class ShardedListLabeling(CompactEngineLabeling):
    """Order maintenance over per-shard compact L-Tree arenas.

    ``bulk_load`` accepts the engine's ``boundaries=`` keyword
    (explicit chunk sizes, one shard each) — the hook
    :class:`repro.labeling.scheme.LabeledDocument` uses to align
    shards with top-level document children, so a subtree edit
    provably writes one arena.
    """

    name = "ltree-sharded"

    ENGINE = ShardedCompactLTree

    #: the document layer partitions its token stream by top-level
    #: children when the scheme advertises this (see
    #: ``LabeledDocument._bulk_label``)
    supports_partitioned_bulk = True

    def __init__(self, params: LTreeParams = DEFAULT_PARAMS,
                 stats: Counters = NULL_COUNTERS,
                 n_shards: int = DEFAULT_N_SHARDS,
                 shard_stats: bool = False):
        super().__init__(params, stats, n_shards=n_shards,
                         shard_stats=shard_stats)

    @property
    def shard_counters(self) -> list[Counters]:
        """Per-shard counter sinks (see ``shard_stats``)."""
        return self.tree.shard_counters
