"""Fixed-gap labeling — the folklore scheme the paper improves upon.

Section 1: *"Alternatively, one can leave gaps in between successive labels
to reduce the number of relabelings upon updates ...  It is not clear how
to assign the gaps between labels such that we can find a good trade-off."*

Labels start at multiples of a fixed ``gap``.  An insertion takes the
midpoint of its neighbors' labels; when the midpoint does not exist (the
local gap is exhausted) the **entire list** is renumbered back to multiples
of ``gap`` — a Θ(n) event whose frequency depends on update locality, which
is exactly the unpredictability the L-Tree's density control removes.
"""

from __future__ import annotations

from repro.core.stats import NULL_COUNTERS, Counters
from repro.order.base import LinkedItem, LinkedListScheme


class GapLabeling(LinkedListScheme):
    """Midpoint insertion over gapped integer labels, global renumber."""

    name = "gap"

    def __init__(self, gap: int = 32, stats: Counters = NULL_COUNTERS):
        if gap < 2:
            raise ValueError(f"gap must be >= 2, got {gap}")
        super().__init__(stats)
        self.gap = gap
        #: number of Θ(n) global renumberings performed (reported by E8)
        self.renumber_events = 0

    def _assign_bulk(self, items: list[LinkedItem]) -> None:
        for index, item in enumerate(items):
            item.label = (index + 1) * self.gap
            self.stats.relabels += 1

    def _assign_between(self, item: LinkedItem) -> None:
        if not self._try_midpoint(item):
            self._renumber_all()
            if not self._try_midpoint(item):
                raise AssertionError(
                    "midpoint must exist right after a global renumber")

    def _try_midpoint(self, item: LinkedItem) -> bool:
        """Label ``item`` between its neighbors; False when no room."""
        low = item.prev.label if item.prev is not None else 0
        if item.next is not None:
            high = item.next.label
        else:
            high = low + 2 * self.gap
        if high - low < 2:
            return False
        item.label = (low + high) // 2
        self.stats.relabels += 1
        return True

    def _renumber_all(self) -> None:
        """Θ(n) global renumbering to multiples of ``gap``.

        The new item is not yet labeled, so it is skipped and labeled by
        the midpoint retry that follows.
        """
        self.renumber_events += 1
        index = 1
        cursor = self._head
        while cursor is not None:
            if cursor.label is not None:
                cursor.label = index * self.gap
                self.stats.relabels += 1
                index += 1
            cursor = cursor.next
