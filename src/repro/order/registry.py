"""Factory registry of order-labeling schemes (experiment E8 axis).

Each factory takes only a ``stats`` keyword so benchmarks can instantiate
every scheme uniformly; scheme-specific knobs are frozen to the defaults
the experiments use (documented per entry).
"""

from __future__ import annotations

from typing import Callable

from repro.core.params import LTreeParams
from repro.core.stats import NULL_COUNTERS, Counters
from repro.order.base import OrderedLabeling
from repro.order.bender import BenderLabeling
from repro.order.compact_list import CompactListLabeling
from repro.order.gap import GapLabeling
from repro.order.ltree_list import LTreeListLabeling
from repro.order.naive import NaiveLabeling
from repro.order.prefix import PrefixLabeling
from repro.order.sharded_list import ShardedListLabeling
from repro.order.two_level import TwoLevelLabeling

SchemeFactory = Callable[..., OrderedLabeling]

#: scheme the document layer instantiates when none is given.  Since
#: PR 3 this is the array-backed compact engine: label-identical to
#: "ltree" (tests/core/test_compact_differential.py) but with flat-array
#: label extraction for the query layer.  Opt back into the node-object
#: engine by passing ``scheme=make_scheme("ltree")`` (or an
#: ``LTreeListLabeling`` built with your own params).
DEFAULT_SCHEME = "ltree-compact"

#: name -> factory(stats=...) for every scheme compared in EXPERIMENTS.md.
SCHEMES: dict[str, SchemeFactory] = {
    # the paper's contribution, at two parameterizations
    "ltree": lambda stats=NULL_COUNTERS: LTreeListLabeling(
        LTreeParams(f=16, s=4), stats=stats),
    "ltree-f4s2": lambda stats=NULL_COUNTERS: LTreeListLabeling(
        LTreeParams(f=4, s=2), stats=stats),
    # the same algorithms on the array-backed engine (label-equivalent to
    # "ltree"; see tests/core/test_compact_differential.py)
    "ltree-compact": lambda stats=NULL_COUNTERS: CompactListLabeling(
        LTreeParams(f=16, s=4), stats=stats),
    # per-top-level-subtree compact arenas behind a shard directory:
    # order-identical to "ltree-compact" (same differential sweep) with
    # every split/relabel confined to one arena; 8 contiguous shards
    "ltree-sharded": lambda stats=NULL_COUNTERS: ShardedListLabeling(
        LTreeParams(f=16, s=4), stats=stats),
    # baselines
    "naive": lambda stats=NULL_COUNTERS: NaiveLabeling(stats=stats),
    "gap": lambda stats=NULL_COUNTERS: GapLabeling(gap=32, stats=stats),
    "bender": lambda stats=NULL_COUNTERS: BenderLabeling(stats=stats),
    "prefix": lambda stats=NULL_COUNTERS: PrefixLabeling(stats=stats),
    "two-level": lambda stats=NULL_COUNTERS: TwoLevelLabeling(
        capacity=32, stats=stats),
}


def make_scheme(name: str, stats: Counters = NULL_COUNTERS
                ) -> OrderedLabeling:
    """Instantiate a registered scheme by name."""
    try:
        factory = SCHEMES[name]
    except KeyError:
        known = ", ".join(sorted(SCHEMES))
        raise KeyError(f"unknown scheme {name!r}; known: {known}") from None
    return factory(stats=stats)


def default_scheme(params: LTreeParams | None = None,
                   stats: Counters = NULL_COUNTERS) -> OrderedLabeling:
    """The document layer's default engine (see :data:`DEFAULT_SCHEME`).

    ``params`` overrides the registry's frozen ``(f=16, s=4)`` default
    while keeping the engine choice in one place.
    """
    if params is None:
        return make_scheme(DEFAULT_SCHEME, stats)
    return CompactListLabeling(params, stats=stats)
