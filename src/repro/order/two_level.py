"""Two-level indirection list labeling (Dietz & Sleator direction).

Paper §5: *"The problem of order-preserving labeling of an ordered list
... has been studied previously [8, 9, 16].  Our work has been inspired
by these works."*  The classic trick of that literature is **indirection**:
group the n items into Θ(n / B) sublists, give each *sublist* a label in
a top-level ordered structure, and each item a *local* label inside its
sublist.  An item's full label is the pair ``(sublist label, local
label)`` compared lexicographically — crucially through a live reference,
so renumbering one sublist label implicitly "relabels" all its members at
the cost of **one** write.

This implementation uses gap labels with global renumbering at both
levels; with sublists capped at ``capacity``, top renumberings touch only
n/capacity labels and local renumberings only ``capacity`` — the
amortized write cost the L-Tree's tree-of-intervals generalizes to
arbitrarily many levels.
"""

from __future__ import annotations

import functools
from typing import Optional

from repro.core.stats import NULL_COUNTERS, Counters
from repro.order.base import LinkedItem, LinkedListScheme

_TOP_GAP = 1 << 16
_LOCAL_GAP = 1 << 8


class _Sublist:
    """One indirection bucket: a labeled, bounded run of items."""

    __slots__ = ("label", "items", "prev", "next")

    def __init__(self, label: int):
        self.label = label
        self.items: list[LinkedItem] = []
        self.prev: Optional["_Sublist"] = None
        self.next: Optional["_Sublist"] = None


@functools.total_ordering
class PairLabel:
    """A live (sublist, local) label.

    Comparisons read the sublist's *current* label, so a top-level
    renumbering updates every member's effective label with one write.
    """

    __slots__ = ("sublist", "local")

    def __init__(self, sublist: _Sublist, local: int):
        self.sublist = sublist
        self.local = local

    def key(self) -> tuple[int, int]:
        return (self.sublist.label, self.local)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PairLabel):
            return NotImplemented
        return self.key() == other.key()

    def __lt__(self, other: "PairLabel") -> bool:
        return self.key() < other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"({self.sublist.label}, {self.local})"


class TwoLevelLabeling(LinkedListScheme):
    """Order maintenance with one level of indirection."""

    name = "two-level"

    def __init__(self, capacity: int = 32,
                 stats: Counters = NULL_COUNTERS):
        if capacity < 4:
            raise ValueError(f"capacity must be >= 4, got {capacity}")
        super().__init__(stats)
        self.capacity = capacity
        self._first_sublist: Optional[_Sublist] = None
        #: top-level renumber events (cost n/capacity each) — reported
        #: alongside E8
        self.top_renumber_events = 0

    # ------------------------------------------------------------------
    # labeling hooks
    # ------------------------------------------------------------------
    def _assign_bulk(self, items: list[LinkedItem]) -> None:
        self._first_sublist = None
        previous: Optional[_Sublist] = None
        fill = max(2, self.capacity // 2)
        for start in range(0, len(items), fill):
            sublist = _Sublist(label=0)
            sublist.prev = previous
            if previous is not None:
                previous.next = sublist
            else:
                self._first_sublist = sublist
            for offset, item in enumerate(items[start:start + fill]):
                item.label = PairLabel(sublist, (offset + 1) * _LOCAL_GAP)
                sublist.items.append(item)
                self.stats.relabels += 1
            previous = sublist
        self._renumber_top()

    def _assign_between(self, item: LinkedItem) -> None:
        if self._first_sublist is None or not self._first_sublist.items:
            sublist = _Sublist(label=_TOP_GAP)
            self._first_sublist = sublist
            sublist.items.append(item)
            item.label = PairLabel(sublist, _LOCAL_GAP)
            self.stats.relabels += 1
            return
        home, position = self._placement(item)
        low = home.items[position - 1].label.local if position > 0 else 0
        if position < len(home.items):
            high = home.items[position].label.local
        else:
            high = low + 2 * _LOCAL_GAP
        if high - low < 2:
            self._rebalance_sublist(home)
            self._assign_between(item)
            return
        item.label = PairLabel(home, (low + high) // 2)
        home.items.insert(position, item)
        self.stats.relabels += 1
        if len(home.items) > self.capacity:
            self._split_sublist(home)

    def _placement(self, item: LinkedItem) -> tuple[_Sublist, int]:
        """Home sublist and in-sublist position from linked neighbors.

        Positions are indexes into ``sublist.items``, which retains
        deleted items as tombstones (mark-only deletion, §2.3) — their
        labels keep holding slots, exactly like L-Tree leaves.
        """
        if item.prev is not None:
            label: PairLabel = item.prev.label
            home = label.sublist
            position = home.items.index(item.prev) + 1
            return home, position
        if item.next is not None:
            label = item.next.label
            home = label.sublist
            position = home.items.index(item.next)
            return home, position
        # no live neighbors: every earlier item was deleted — append
        # after the tombstones of the first sublist
        assert self._first_sublist is not None
        return self._first_sublist, len(self._first_sublist.items)

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------
    def _rebalance_sublist(self, sublist: _Sublist) -> None:
        """Re-spread local labels (cost = sublist size <= capacity)."""
        for offset, member in enumerate(sublist.items):
            member.label.local = (offset + 1) * _LOCAL_GAP
            self.stats.relabels += 1

    def _split_sublist(self, sublist: _Sublist) -> None:
        """Halve an over-full sublist; give the new half a top label."""
        half = len(sublist.items) // 2
        moved = sublist.items[half:]
        sublist.items = sublist.items[:half]
        fresh = _Sublist(label=0)
        fresh.items = moved
        fresh.prev = sublist
        fresh.next = sublist.next
        if sublist.next is not None:
            sublist.next.prev = fresh
        sublist.next = fresh
        for offset, member in enumerate(moved):
            member.label.sublist = fresh
            member.label.local = (offset + 1) * _LOCAL_GAP
            self.stats.relabels += 1
        low = sublist.label
        high = fresh.next.label if fresh.next is not None \
            else low + 2 * _TOP_GAP
        if high - low < 2:
            self._renumber_top()
        else:
            fresh.label = (low + high) // 2
            self.stats.relabels += 1

    def _renumber_top(self) -> None:
        """Re-spread sublist labels (cost = number of sublists).

        One write per *sublist* — the indirection payoff: members'
        effective labels all change but no member is touched.
        """
        self.top_renumber_events += 1
        current = self._first_sublist
        label = _TOP_GAP
        while current is not None:
            current.label = label
            self.stats.relabels += 1
            label += _TOP_GAP
            current = current.next

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def label_bits(self) -> int:
        """Top bits + local bits of the widest live pair."""
        widest = 0
        for handle in self.handles():
            label: PairLabel = handle.label
            bits = label.sublist.label.bit_length() + \
                label.local.bit_length()
            widest = max(widest, bits)
        return widest

    def sublist_count(self) -> int:
        """Number of indirection buckets currently alive."""
        count = 0
        current = self._first_sublist
        while current is not None:
            count += 1
            current = current.next
        return count
