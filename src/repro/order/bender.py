"""Tag-range relabeling baseline (Dietz & Sleator / Bender et al.).

The paper's related work (§5, refs [8, 9, 16]) credits the order-maintenance
literature as its inspiration.  This module implements the classic
*fixed-universe tag* algorithm in its simplified form (Bender, Cole,
Demaine, Farach-Colton, Zito 2002): labels live in ``[0, 2^u)``; an
insertion takes the midpoint of its neighbors' labels, and when no midpoint
exists the smallest enclosing dyadic range whose density is below its
threshold ``T^-(u-i)`` (range size ``2^i``, balance factor ``1 < T < 2``)
is relabeled evenly.  When even the whole universe is too dense, ``u``
grows and everything is relabeled.

This gives O(log² n) amortized relabels with O(log n)-bit labels — the
closest published competitor to the L-Tree's guarantees, and the natural
head-to-head baseline for experiment E8.
"""

from __future__ import annotations

from repro.core.stats import NULL_COUNTERS, Counters
from repro.order.base import LinkedItem, LinkedListScheme


class BenderLabeling(LinkedListScheme):
    """Fixed-universe dyadic-range relabeling."""

    name = "bender"

    def __init__(self, threshold: float = 1.4, initial_bits: int = 16,
                 stats: Counters = NULL_COUNTERS):
        if not 1.0 < threshold < 2.0:
            raise ValueError(
                f"threshold must be in (1, 2), got {threshold}")
        if initial_bits < 4:
            raise ValueError(
                f"initial_bits must be >= 4, got {initial_bits}")
        super().__init__(stats)
        self.threshold = threshold
        self.universe_bits = initial_bits
        #: dyadic-range relabel events (size, count) — reported by E8
        self.relabel_events: list[tuple[int, int]] = []

    @property
    def universe(self) -> int:
        """Exclusive upper bound of the label space, ``2^u``."""
        return 1 << self.universe_bits

    # ------------------------------------------------------------------
    # labeling hooks
    # ------------------------------------------------------------------
    def _assign_bulk(self, items: list[LinkedItem]) -> None:
        while self.universe < 2 * (len(items) + 1):
            self.universe_bits += 1
        self._spread_evenly(items, 0, self.universe)

    def _assign_between(self, item: LinkedItem) -> None:
        low = item.prev.label if item.prev is not None else -1
        high = item.next.label if item.next is not None else self.universe
        if high - low >= 2:
            item.label = (low + high) // 2
            self.stats.relabels += 1
            return
        self._overflow(item, position_tag=max(low, 0))

    # ------------------------------------------------------------------
    # overflow handling
    # ------------------------------------------------------------------
    def _overflow(self, item: LinkedItem, position_tag: int) -> None:
        """Relabel the smallest under-threshold enclosing dyadic range."""
        for exponent in range(1, self.universe_bits + 1):
            size = 1 << exponent
            start = position_tag - (position_tag % size)
            members = self._collect_range(item, start, start + size)
            density = len(members) / size
            if density <= self.threshold ** (exponent - self.universe_bits):
                self.relabel_events.append((size, len(members)))
                self._spread_evenly(members, start, size)
                return
        # Even the full universe is too dense: grow it.
        while self.universe < 2 * (self._count + 1):
            self.universe_bits += 1
        everything = self._collect_range(item, 0, self.universe)
        self.relabel_events.append((self.universe, len(everything)))
        self._spread_evenly(everything, 0, self.universe)

    def _collect_range(self, item: LinkedItem, start: int, stop: int
                       ) -> list[LinkedItem]:
        """Items whose labels fall in ``[start, stop)`` plus ``item``.

        List neighbors carry ordered labels, so the range is a contiguous
        stretch of the linked list around ``item``.
        """
        members: list[LinkedItem] = []
        cursor = item.prev
        while cursor is not None and cursor.label >= start:
            members.append(cursor)
            cursor = cursor.prev
        members.reverse()
        members.append(item)
        cursor = item.next
        while cursor is not None and cursor.label < stop:
            members.append(cursor)
            cursor = cursor.next
        return members

    def _spread_evenly(self, items: list[LinkedItem], start: int,
                       size: int) -> None:
        """Distribute ``items`` over ``[start, start+size)`` evenly."""
        count = len(items)
        if count > size:
            raise AssertionError(
                f"cannot place {count} items in a range of {size}")
        for index, member in enumerate(items):
            member.label = start + (index * size) // count
            self.stats.relabels += 1
