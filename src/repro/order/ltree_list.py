"""L-Tree as an ordered list-labeling scheme.

Adapts :class:`repro.core.ltree.LTree` to the
:class:`repro.order.base.OrderedLabeling` interface so the paper's
structure competes head-to-head with the baselines in experiment E8.
Handles are the L-Tree leaves; labels are their (dynamic) ``num`` values.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.core.ltree import LTree
from repro.core.node import LTreeNode
from repro.core.params import DEFAULT_PARAMS, LTreeParams
from repro.core.stats import NULL_COUNTERS, Counters
from repro.order.base import OrderedLabeling


class LTreeListLabeling(OrderedLabeling):
    """Order maintenance backed by an L-Tree (the paper's contribution)."""

    name = "ltree"

    def __init__(self, params: LTreeParams = DEFAULT_PARAMS,
                 stats: Counters = NULL_COUNTERS):
        super().__init__(stats)
        self.params = params
        self.tree = LTree(params, stats)
        self._live = 0

    def bulk_load(self, payloads: Sequence[Any]) -> list[LTreeNode]:
        leaves = self.tree.bulk_load(payloads)
        self._live = len(leaves)
        return leaves

    def insert_after(self, handle: LTreeNode, payload: Any) -> LTreeNode:
        self._live += 1
        return self.tree.insert_after(handle, payload)

    def insert_before(self, handle: LTreeNode, payload: Any) -> LTreeNode:
        self._live += 1
        return self.tree.insert_before(handle, payload)

    def append(self, payload: Any) -> LTreeNode:
        self._live += 1
        return self.tree.append(payload)

    def prepend(self, payload: Any) -> LTreeNode:
        self._live += 1
        return self.tree.prepend(payload)

    def insert_run_after(self, handle: LTreeNode,
                         payloads: Sequence[Any]) -> list[LTreeNode]:
        """Native batch insertion (paper §4.1): one rebalance per run."""
        leaves = self.tree.insert_run_after(handle, payloads)
        self._live += len(leaves)
        return leaves

    def insert_run_before(self, handle: LTreeNode,
                          payloads: Sequence[Any]) -> list[LTreeNode]:
        """Native batch insertion before ``handle`` (paper §4.1)."""
        leaves = self.tree.insert_run_before(handle, payloads)
        self._live += len(leaves)
        return leaves

    def delete(self, handle: LTreeNode) -> None:
        """Mark-only deletion (paper §2.3) — never relabels."""
        if handle.deleted:
            raise ValueError("handle refers to a deleted item")
        self.tree.mark_deleted(handle)
        self._live -= 1

    def label(self, handle: LTreeNode) -> int:
        if handle.deleted:
            raise ValueError("handle refers to a deleted item")
        return handle.num

    def payload(self, handle: LTreeNode) -> Any:
        if handle.deleted:
            raise ValueError("handle refers to a deleted item")
        return handle.payload

    def handles(self) -> Iterator[LTreeNode]:
        return self.tree.iter_leaves(include_deleted=False)

    def __len__(self) -> int:
        return self._live

    @classmethod
    def _wrap(cls, tree: LTree, stats: Counters) -> "LTreeListLabeling":
        """Adopt an already-built engine (persistence restore paths)."""
        scheme = cls.__new__(cls)
        OrderedLabeling.__init__(scheme, stats)
        scheme.params = tree.params
        scheme.tree = tree
        scheme._live = tree.n_leaves - tree.tombstone_count()
        return scheme
