"""The ordered list-labeling problem (paper §1 and §5).

The paper frames XML label maintenance as *maintenance of an ordered
list*: assign every list item a label from an ordered domain so that list
order equals label order, and keep that true under adjacent insertions.
This module defines the scheme-independent interface plus a linked-list
base class shared by the array-flavored baselines; the L-Tree plugs in
through :class:`repro.order.ltree_list.LTreeListLabeling`.

Handles returned by the insert methods stay valid across relabelings —
``label(handle)`` always returns the *current* label.
"""

from __future__ import annotations

import abc
from typing import Any, Iterator, Optional, Sequence

from repro.core.stats import NULL_COUNTERS, Counters
from repro.errors import InvariantViolation


class OrderedLabeling(abc.ABC):
    """Interface of an order-preserving labeling scheme.

    Labels may be integers or any mutually comparable values (the prefix
    scheme uses dyadic rationals); within one scheme instance all labels
    are comparable and strictly increase in list order.
    """

    #: short machine-readable scheme name (registry key, report column)
    name: str = "abstract"

    def __init__(self, stats: Counters = NULL_COUNTERS):
        self.stats = stats

    # -- construction ---------------------------------------------------
    @abc.abstractmethod
    def bulk_load(self, payloads: Sequence[Any]) -> list[Any]:
        """Replace contents with ``payloads``; return their handles."""

    # -- updates ----------------------------------------------------------
    @abc.abstractmethod
    def insert_after(self, handle: Any, payload: Any) -> Any:
        """Insert a new item right after ``handle``; return its handle."""

    @abc.abstractmethod
    def insert_before(self, handle: Any, payload: Any) -> Any:
        """Insert a new item right before ``handle``; return its handle."""

    @abc.abstractmethod
    def append(self, payload: Any) -> Any:
        """Insert at the end of the list."""

    @abc.abstractmethod
    def prepend(self, payload: Any) -> Any:
        """Insert at the start of the list."""

    @abc.abstractmethod
    def delete(self, handle: Any) -> None:
        """Delete an item.  Never relabels (paper §2.3)."""

    def insert_run_after(self, handle: Any,
                         payloads: Sequence[Any]) -> list[Any]:
        """Insert a run of items right after ``handle``.

        Default: sequential single inserts (no cost sharing).  Schemes with
        native batch support — the L-Tree, §4.1 — override this.
        """
        handles = []
        anchor = handle
        for payload in payloads:
            anchor = self.insert_after(anchor, payload)
            handles.append(anchor)
        return handles

    def insert_run_before(self, handle: Any,
                          payloads: Sequence[Any]) -> list[Any]:
        """Insert a run of items right before ``handle``; see above."""
        if not payloads:
            return []
        first = self.insert_before(handle, payloads[0])
        return [first] + self.insert_run_after(first, payloads[1:])

    # -- inspection -------------------------------------------------------
    @abc.abstractmethod
    def label(self, handle: Any) -> Any:
        """Current label of a live handle."""

    @abc.abstractmethod
    def payload(self, handle: Any) -> Any:
        """Payload carried by a handle."""

    @abc.abstractmethod
    def handles(self) -> Iterator[Any]:
        """All live handles in list order."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of live items."""

    # -- shared behaviour ---------------------------------------------------
    def labels(self) -> list[Any]:
        """Current labels in list order (strictly increasing)."""
        return [self.label(handle) for handle in self.handles()]

    def label_map(self) -> dict[Any, Any]:
        """One bulk pass: every live handle mapped to its current label.

        This is the extraction primitive behind the document layer's
        cached label vector: callers that need many labels at once pay a
        single list traversal instead of one :meth:`label` round trip per
        node.  Array-backed schemes override it to read their flat label
        column directly.
        """
        return {handle: self.label(handle) for handle in self.handles()}

    def payloads(self) -> list[Any]:
        """Payloads in list order."""
        return [self.payload(handle) for handle in self.handles()]

    def compare(self, first: Any, second: Any) -> int:
        """-1/0/+1 ordering of two handles **by label only**.

        This is the query-side operation the labels exist for; it must not
        inspect the list structure.
        """
        self.stats.comparisons += 1
        left, right = self.label(first), self.label(second)
        if left < right:
            return -1
        if left > right:
            return 1
        return 0

    def label_bits(self) -> int:
        """Bits needed to store the widest current label.

        Integer labels count their bit length; schemes with structured
        labels override this.
        """
        widest = 0
        for handle in self.handles():
            label = self.label(handle)
            widest = max(widest, int(label).bit_length())
        return widest

    def validate(self) -> None:
        """Assert labels strictly increase along the list."""
        previous = None
        for handle in self.handles():
            current = self.label(handle)
            if previous is not None and not previous < current:
                raise InvariantViolation(
                    f"{self.name}: labels out of order "
                    f"({previous!r} then {current!r})")
            previous = current


class LinkedItem:
    """Doubly-linked list node used by the array-flavored schemes."""

    __slots__ = ("label", "payload", "prev", "next", "alive")

    def __init__(self, payload: Any):
        self.label: Any = None
        self.payload = payload
        self.prev: Optional["LinkedItem"] = None
        self.next: Optional["LinkedItem"] = None
        self.alive = True


class LinkedListScheme(OrderedLabeling):
    """Base for schemes that keep items in a doubly-linked list.

    Subclasses implement :meth:`_assign_bulk` (initial labeling) and
    :meth:`_assign_between` (label a new item given its live neighbors,
    relabeling as needed and accounting every relabel in
    ``stats.relabels``).
    """

    def __init__(self, stats: Counters = NULL_COUNTERS):
        super().__init__(stats)
        self._head: Optional[LinkedItem] = None
        self._tail: Optional[LinkedItem] = None
        self._count = 0

    # -- linked-list plumbing ------------------------------------------------
    def _link_after(self, anchor: Optional[LinkedItem],
                    item: LinkedItem) -> None:
        """Insert ``item`` after ``anchor`` (or at the head when None)."""
        if anchor is None:
            item.next = self._head
            if self._head is not None:
                self._head.prev = item
            self._head = item
            if self._tail is None:
                self._tail = item
        else:
            item.prev = anchor
            item.next = anchor.next
            if anchor.next is not None:
                anchor.next.prev = item
            anchor.next = item
            if self._tail is anchor:
                self._tail = item
        self._count += 1

    def _unlink(self, item: LinkedItem) -> None:
        if item.prev is not None:
            item.prev.next = item.next
        else:
            self._head = item.next
        if item.next is not None:
            item.next.prev = item.prev
        else:
            self._tail = item.prev
        item.alive = False
        self._count -= 1

    # -- OrderedLabeling interface ---------------------------------------
    def bulk_load(self, payloads: Sequence[Any]) -> list[LinkedItem]:
        self._head = None
        self._tail = None
        self._count = 0
        items = [LinkedItem(payload) for payload in payloads]
        previous: Optional[LinkedItem] = None
        for item in items:
            self._link_after(previous, item)
            previous = item
        self._assign_bulk(items)
        return items

    def insert_after(self, handle: LinkedItem, payload: Any) -> LinkedItem:
        self._require_alive(handle)
        item = LinkedItem(payload)
        self._link_after(handle, item)
        self._assign_between(item)
        self.stats.inserts += 1
        return item

    def insert_before(self, handle: LinkedItem, payload: Any) -> LinkedItem:
        self._require_alive(handle)
        item = LinkedItem(payload)
        self._link_after(handle.prev, item)
        self._assign_between(item)
        self.stats.inserts += 1
        return item

    def append(self, payload: Any) -> LinkedItem:
        item = LinkedItem(payload)
        self._link_after(self._tail, item)
        self._assign_between(item)
        self.stats.inserts += 1
        return item

    def prepend(self, payload: Any) -> LinkedItem:
        item = LinkedItem(payload)
        self._link_after(None, item)
        self._assign_between(item)
        self.stats.inserts += 1
        return item

    def delete(self, handle: LinkedItem) -> None:
        self._require_alive(handle)
        self._unlink(handle)
        self.stats.deletes += 1

    def label(self, handle: LinkedItem) -> Any:
        self._require_alive(handle)
        return handle.label

    def payload(self, handle: LinkedItem) -> Any:
        return handle.payload

    def handles(self) -> Iterator[LinkedItem]:
        item = self._head
        while item is not None:
            yield item
            item = item.next

    def __len__(self) -> int:
        return self._count

    @staticmethod
    def _require_alive(handle: LinkedItem) -> None:
        if not handle.alive:
            raise ValueError("handle refers to a deleted item")

    # -- scheme-specific hooks ---------------------------------------------
    @abc.abstractmethod
    def _assign_bulk(self, items: list[LinkedItem]) -> None:
        """Label freshly bulk-loaded items (account stats.relabels)."""

    @abc.abstractmethod
    def _assign_between(self, item: LinkedItem) -> None:
        """Label ``item`` given its linked neighbors, relabeling others
        as the scheme requires (account stats.relabels)."""
