"""Gap-free sequential labeling — the paper's strawman baseline.

Section 1: *"Consider the labeling scheme in Figure 1 which assigns labels
from the integer domain, in sequential order.  This leads to relabeling of
half the nodes on average, even for a single node insertion."*

Labels are consecutive integers.  Inserting an item assigns it the label of
its successor and shifts every label to its right by one — Θ(n − position)
relabels, the behaviour experiment E8 quantifies.  Query-side the scheme is
optimal: labels are as small as they can possibly be (``log2 n`` bits).
"""

from __future__ import annotations

from repro.order.base import LinkedItem, LinkedListScheme


class NaiveLabeling(LinkedListScheme):
    """Dense sequential integer labels with shift-on-insert."""

    name = "naive"

    def _assign_bulk(self, items: list[LinkedItem]) -> None:
        for index, item in enumerate(items):
            item.label = index
            self.stats.relabels += 1

    def _assign_between(self, item: LinkedItem) -> None:
        if item.next is not None:
            item.label = item.next.label
        elif item.prev is not None:
            item.label = item.prev.label + 1
        else:
            item.label = 0
        self.stats.relabels += 1
        # Shift everything to the right of the new item up by one.
        cursor = item.next
        while cursor is not None:
            cursor.label += 1
            self.stats.relabels += 1
            cursor = cursor.next
