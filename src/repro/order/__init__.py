"""Ordered list labeling: the abstract problem behind XML label
maintenance (paper §1/§5), with the L-Tree and four baseline schemes."""

from repro.order.base import LinkedItem, LinkedListScheme, OrderedLabeling
from repro.order.bender import BenderLabeling
from repro.order.compact_list import (CompactEngineLabeling,
                                      CompactListLabeling)
from repro.order.gap import GapLabeling
from repro.order.ltree_list import LTreeListLabeling
from repro.order.naive import NaiveLabeling
from repro.order.prefix import PrefixLabeling
from repro.order.registry import SCHEMES, make_scheme
from repro.order.sharded_list import ShardedListLabeling
from repro.order.two_level import TwoLevelLabeling

__all__ = [
    "OrderedLabeling",
    "LinkedListScheme",
    "LinkedItem",
    "NaiveLabeling",
    "GapLabeling",
    "BenderLabeling",
    "PrefixLabeling",
    "TwoLevelLabeling",
    "LTreeListLabeling",
    "CompactEngineLabeling",
    "CompactListLabeling",
    "ShardedListLabeling",
    "SCHEMES",
    "make_scheme",
]
