"""Compact (array-backed) L-Tree engines as ordered labeling schemes.

:class:`CompactEngineLabeling` is the shared adapter between the
:class:`repro.order.base.OrderedLabeling` interface and any engine with
the :class:`repro.core.compact.CompactLTree` surface — handles from the
engine, labels from its (dynamic) ``num`` values, mark-only deletion,
native §4.1 run inserts, byte-image persistence through a page store.
Two engines plug in today:

* :class:`CompactListLabeling` (``ltree-compact``) over the flat
  :class:`~repro.core.compact.CompactLTree` — label- and cost-equivalent
  to the node-object ``ltree`` scheme (see
  ``tests/core/test_compact_differential.py``), so benchmarks comparing
  the two measure the engine layout alone;
* :class:`repro.order.sharded_list.ShardedListLabeling`
  (``ltree-sharded``) over the per-subtree arenas of
  :class:`~repro.core.sharded.ShardedCompactLTree`.

The adapter methods (and the save/load/_wrap machinery) live here once;
the subclasses only choose the engine and forward its extra knobs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional, Sequence, Type

from repro.core.compact import CompactLTree
from repro.core.params import DEFAULT_PARAMS, LTreeParams
from repro.core.stats import NULL_COUNTERS, Counters
from repro.errors import StorageError
from repro.order.base import OrderedLabeling


@contextmanager
def sync_override(store: Any, sync: Optional[bool]) -> Iterator[None]:
    """Temporarily force a store's fsync-barrier discipline.

    ``sync=None`` leaves the store as opened.  ``True``/``False``
    overrides the store's ``sync`` attribute (the knob
    :class:`repro.storage.pages.PageStore` exposes) for the duration —
    how a *caller of save()* opts into power-loss durability for one
    save without owning the store's construction.  Asking for
    ``sync=True`` on a store that has no such discipline raises
    :class:`~repro.errors.StorageError` instead of silently degrading
    the durability the caller requested.
    """
    if sync is None:
        yield
        return
    if not hasattr(store, "sync"):
        if sync:
            raise StorageError(
                f"{type(store).__name__} has no sync attribute; cannot "
                f"honor sync=True (use repro.storage.pages.PageStore)")
        yield
        return
    previous = store.sync
    store.sync = bool(sync)
    try:
        yield
    finally:
        store.sync = previous


class CompactEngineLabeling(OrderedLabeling):
    """Order maintenance over a compact (array-backed) L-Tree engine.

    Subclasses set :attr:`ENGINE` to the engine class and may forward
    engine-specific constructor keywords through ``engine_kwargs``.
    """

    #: engine class this adapter instantiates and restores
    ENGINE: Type = CompactLTree

    def __init__(self, params: LTreeParams = DEFAULT_PARAMS,
                 stats: Counters = NULL_COUNTERS, **engine_kwargs: Any):
        super().__init__(stats)
        self.params = params
        self.tree = self.ENGINE(params, stats, **engine_kwargs)
        self._live = 0

    def bulk_load(self, payloads: Sequence[Any],
                  **engine_kwargs: Any) -> list[Any]:
        """Engine bulk load; extra keywords go to engines that take
        them (the sharded engine's ``boundaries=``)."""
        handles = self.tree.bulk_load(payloads, **engine_kwargs)
        self._live = len(handles)
        return handles

    def insert_after(self, handle: Any, payload: Any) -> Any:
        self._live += 1
        return self.tree.insert_after(handle, payload)

    def insert_before(self, handle: Any, payload: Any) -> Any:
        self._live += 1
        return self.tree.insert_before(handle, payload)

    def append(self, payload: Any) -> Any:
        self._live += 1
        return self.tree.append(payload)

    def prepend(self, payload: Any) -> Any:
        self._live += 1
        return self.tree.prepend(payload)

    def insert_run_after(self, handle: Any,
                         payloads: Sequence[Any]) -> list[Any]:
        """Native batch insertion (paper §4.1): one rebalance per run."""
        handles = self.tree.insert_run_after(handle, payloads)
        self._live += len(handles)
        return handles

    def insert_run_before(self, handle: Any,
                          payloads: Sequence[Any]) -> list[Any]:
        """Native batch insertion before ``handle`` (paper §4.1)."""
        handles = self.tree.insert_run_before(handle, payloads)
        self._live += len(handles)
        return handles

    def delete(self, handle: Any) -> None:
        """Mark-only deletion (paper §2.3) — never relabels."""
        if self.tree.is_deleted(handle):
            raise ValueError("handle refers to a deleted item")
        self.tree.mark_deleted(handle)
        self._live -= 1

    def label(self, handle: Any) -> int:
        if self.tree.is_deleted(handle):
            raise ValueError("handle refers to a deleted item")
        return self.tree.num(handle)

    def payload(self, handle: Any) -> Any:
        if self.tree.is_deleted(handle):
            raise ValueError("handle refers to a deleted item")
        return self.tree.payload(handle)

    def handles(self) -> Iterator[Any]:
        return self.tree.iter_leaves(include_deleted=False)

    def label_map(self) -> dict[Any, int]:
        """Bulk label extraction straight from the engine's flat state.

        No per-handle accessor calls, no tombstone re-checks: the
        engine reads its label column(s) in one pass — the reason the
        document layer's cached label vector is cheap to (re)build on
        these engines (and stays cheap across shards on the sharded
        one).
        """
        return self.tree.label_map()

    def __len__(self) -> int:
        return self._live

    # -- persistence -----------------------------------------------------
    def save(self, store: Any, name: str = "scheme",
             include_payloads: bool = True,
             sync: Optional[bool] = None) -> None:
        """Persist the engine state under blob ``name`` of a page store.

        The engine's byte image(s) — tombstones and free-list included —
        go to ``store`` (canonically a
        :class:`repro.storage.pages.PageStore`) so :meth:`load` reopens
        a scheme whose labels, counters and future splits are identical
        to this one's.

        ``sync=True`` brackets the store's catalog flips with fsync
        barriers for the duration of this save (see
        :func:`sync_override`), so the saved image is durable against
        power loss, not only process crashes, without reopening the
        store; ``None`` (default) keeps whatever discipline the store
        was opened with.
        """
        with sync_override(store, sync):
            self.tree.save(store, name, include_payloads=include_payloads)

    @classmethod
    def load(cls, store: Any, name: str = "scheme",
             stats: Counters = NULL_COUNTERS, prefer_mmap: bool = True,
             **engine_kwargs: Any) -> "CompactEngineLabeling":
        """Reopen a scheme saved by :meth:`save` from a page store."""
        tree = cls.ENGINE.load(store, name, stats=stats,
                               prefer_mmap=prefer_mmap, **engine_kwargs)
        return cls._wrap(tree, stats)

    @classmethod
    def _wrap(cls, tree: Any, stats: Counters) -> "CompactEngineLabeling":
        """Adopt an already-built engine (restore paths)."""
        scheme = cls.__new__(cls)
        OrderedLabeling.__init__(scheme, stats)
        scheme.params = tree.params
        scheme.tree = tree
        scheme._live = tree.n_leaves - tree.tombstone_count()
        return scheme


class CompactListLabeling(CompactEngineLabeling):
    """Order maintenance backed by the flat array-backed L-Tree engine."""

    name = "ltree-compact"

    ENGINE = CompactLTree
