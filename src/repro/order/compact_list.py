"""Compact (array-backed) L-Tree as an ordered list-labeling scheme.

Adapts :class:`repro.core.compact.CompactLTree` to the
:class:`repro.order.base.OrderedLabeling` interface, mirroring
:class:`repro.order.ltree_list.LTreeListLabeling` over the struct-of-arrays
engine.  Handles are the engine's ``int`` slot ids; labels are their
(dynamic) ``num`` values.  The two adapters are label- and cost-equivalent
(see ``tests/core/test_compact_differential.py``), so benchmarks comparing
``ltree`` and ``ltree-compact`` measure the engine layout alone.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.core.compact import CompactLTree
from repro.core.params import DEFAULT_PARAMS, LTreeParams
from repro.core.stats import NULL_COUNTERS, Counters
from repro.order.base import OrderedLabeling


class CompactListLabeling(OrderedLabeling):
    """Order maintenance backed by the array-backed L-Tree engine."""

    name = "ltree-compact"

    def __init__(self, params: LTreeParams = DEFAULT_PARAMS,
                 stats: Counters = NULL_COUNTERS):
        super().__init__(stats)
        self.params = params
        self.tree = CompactLTree(params, stats)
        self._live = 0

    def bulk_load(self, payloads: Sequence[Any]) -> list[int]:
        leaves = self.tree.bulk_load(payloads)
        self._live = len(leaves)
        return leaves

    def insert_after(self, handle: int, payload: Any) -> int:
        self._live += 1
        return self.tree.insert_after(handle, payload)

    def insert_before(self, handle: int, payload: Any) -> int:
        self._live += 1
        return self.tree.insert_before(handle, payload)

    def append(self, payload: Any) -> int:
        self._live += 1
        return self.tree.append(payload)

    def prepend(self, payload: Any) -> int:
        self._live += 1
        return self.tree.prepend(payload)

    def insert_run_after(self, handle: int,
                         payloads: Sequence[Any]) -> list[int]:
        """Native batch insertion (paper §4.1): one rebalance per run."""
        leaves = self.tree.insert_run_after(handle, payloads)
        self._live += len(leaves)
        return leaves

    def insert_run_before(self, handle: int,
                          payloads: Sequence[Any]) -> list[int]:
        """Native batch insertion before ``handle`` (paper §4.1)."""
        leaves = self.tree.insert_run_before(handle, payloads)
        self._live += len(leaves)
        return leaves

    def delete(self, handle: int) -> None:
        """Mark-only deletion (paper §2.3) — never relabels."""
        if self.tree.is_deleted(handle):
            raise ValueError("handle refers to a deleted item")
        self.tree.mark_deleted(handle)
        self._live -= 1

    def label(self, handle: int) -> int:
        if self.tree.is_deleted(handle):
            raise ValueError("handle refers to a deleted item")
        return self.tree.num(handle)

    def payload(self, handle: int) -> Any:
        if self.tree.is_deleted(handle):
            raise ValueError("handle refers to a deleted item")
        return self.tree.payload(handle)

    def handles(self) -> Iterator[int]:
        return self.tree.iter_leaves(include_deleted=False)

    def label_map(self) -> dict[int, int]:
        """Bulk label extraction straight from the flat ``num`` column.

        No per-handle accessor calls, no tombstone re-checks: one pass
        over the leaf chain indexing the label array — the reason the
        document layer's cached label vector is cheap to (re)build on
        this engine.
        """
        num = self.tree._num
        return {slot: num[slot]
                for slot in self.tree.iter_leaves(include_deleted=False)}

    def __len__(self) -> int:
        return self._live

    # -- persistence -----------------------------------------------------
    def save(self, store: Any, name: str = "scheme",
             include_payloads: bool = True) -> None:
        """Persist the engine state as blob ``name`` of a page store.

        The struct-of-arrays byte image (tombstones and free-list
        included) goes to ``store`` — canonically a
        :class:`repro.storage.pages.PageStore` — so :meth:`load` reopens
        a scheme whose labels, counters and future splits are identical
        to this one's.
        """
        self.tree.save(store, name, include_payloads=include_payloads)

    @classmethod
    def load(cls, store: Any, name: str = "scheme",
             stats: Counters = NULL_COUNTERS,
             prefer_mmap: bool = True) -> "CompactListLabeling":
        """Reopen a scheme saved by :meth:`save` from a page store."""
        tree = CompactLTree.load(store, name, stats=stats,
                                 prefer_mmap=prefer_mmap)
        return cls._wrap(tree, stats)

    @classmethod
    def _wrap(cls, tree: CompactLTree,
              stats: Counters) -> "CompactListLabeling":
        """Adopt an already-built engine (restore paths)."""
        scheme = cls.__new__(cls)
        OrderedLabeling.__init__(scheme, stats)
        scheme.params = tree.params
        scheme.tree = tree
        scheme._live = tree.n_leaves - tree.tombstone_count()
        return scheme
