"""Edge-table XML storage (Florescu & Kossmann, paper §1 ref [11]).

*"The edge table approach treated an XML document as a tree, and
generated a tuple for every XML node with its parent node identifier in
the relation.  To process queries with structural navigation, one
self-join is needed to obtain each parent-child relationship ...  to
answer descendant-axis '//' in XML query, many self-joins are needed."*

This is the baseline storage experiment E9 measures against the label
table: child steps cost one index join; descendant steps cost an
iterative fix-point of index joins (one per tree level reached).
"""

from __future__ import annotations

from typing import Iterator

from repro.core.stats import NULL_COUNTERS, Counters
from repro.storage.relational import HashIndex, Table
from repro.xml.model import XMLDocument, XMLElement

#: edge table columns: element id, parent element id (None for the root),
#: tag, position among the parent's element children
EDGE_COLUMNS = ("id", "parent_id", "tag", "position")


class EdgeTableStore:
    """An XML document shredded into an edge table with two indexes."""

    def __init__(self, document: XMLDocument,
                 stats: Counters = NULL_COUNTERS):
        self.stats = stats
        self.table = Table("edge", EDGE_COLUMNS, stats)
        #: self-join iterations of the most recent descendant step; 0
        #: until :meth:`descendants_of` runs (child-only query plans
        #: never touch it, and reading it must not raise)
        self.last_join_count = 0
        self._ids: dict[int, XMLElement] = {}
        self._load(document)
        self.parent_index = HashIndex(self.table, "parent_id")
        self.tag_index = HashIndex(self.table, "tag")

    def _load(self, document: XMLDocument) -> None:
        next_id = 0
        assigned: dict[XMLElement, int] = {}
        for element in document.iter_elements():
            element_id = next_id
            next_id += 1
            assigned[element] = element_id
            self._ids[element_id] = element
            parent = element.parent
            parent_id = assigned[parent] if parent is not None else None
            position = (parent.child_index(element)
                        if parent is not None else 0)
            self.table.insert((element_id, parent_id, element.tag,
                               position))

    def element(self, element_id: int) -> XMLElement:
        """The DOM element carrying ``element_id``."""
        return self._ids[element_id]

    # ------------------------------------------------------------------
    # navigation by joins
    # ------------------------------------------------------------------
    def ids_by_tag(self, tag: str) -> list[int]:
        """Ids of all elements with ``tag`` (one index lookup)."""
        return [row[0] for row in self.tag_index.lookup(tag)]

    def root_ids(self) -> list[int]:
        """Ids of parentless elements."""
        return [row[0] for row in self.parent_index.lookup(None)]

    def children_of(self, ids: list[int],
                    tag: str | None = None) -> list[int]:
        """Child step: ONE self-join via the parent index (§1)."""
        result: list[int] = []
        for element_id in ids:
            for row in self.parent_index.lookup(element_id):
                if tag is None or row[2] == tag:
                    result.append(row[0])
        return result

    def descendants_of(self, ids: list[int],
                       tag: str | None = None) -> list[int]:
        """Descendant step: iterated self-joins until the frontier dies.

        Each iteration is one more self-join — the cost the paper's
        labeling scheme eliminates.  The per-level join count is recorded
        in ``self.last_join_count`` for experiment E9.
        """
        result: list[int] = []
        frontier = list(ids)
        joins = 0
        while frontier:
            joins += 1
            next_frontier: list[int] = []
            for element_id in frontier:
                for row in self.parent_index.lookup(element_id):
                    next_frontier.append(row[0])
                    if tag is None or row[2] == tag:
                        result.append(row[0])
            frontier = next_frontier
        self.last_join_count = joins
        return result

    def iter_rows(self) -> Iterator[tuple]:
        """Scan the underlying relation."""
        return self.table.scan()
