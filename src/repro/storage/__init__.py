"""Storage substrate: counted B+-tree, the §3.1 page *cost model*
(:mod:`repro.storage.pager`), the actual page-backed file store
(:mod:`repro.storage.pages`), a mini relational engine, and the two
RDBMS shredding strategies the paper contrasts (edge table vs
region-interval table)."""

from repro.storage.btree import CountedBTree
from repro.storage.edge_table import EDGE_COLUMNS, EdgeTableStore
from repro.storage.interval_table import (INTERVAL_COLUMNS,
                                          IntervalTableStore)
from repro.storage.pager import IOReport, PageModel, estimate_io
from repro.storage.pages import PageStore
from repro.storage.relational import (HashIndex, SortedIndex, Table,
                                      index_join, merge_interval_join,
                                      nested_loop_join)

__all__ = [
    "CountedBTree",
    "Table",
    "HashIndex",
    "SortedIndex",
    "nested_loop_join",
    "index_join",
    "merge_interval_join",
    "EdgeTableStore",
    "EDGE_COLUMNS",
    "IntervalTableStore",
    "INTERVAL_COLUMNS",
    "PageModel",
    "IOReport",
    "estimate_io",
    "PageStore",
]
