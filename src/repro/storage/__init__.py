"""Storage substrate: counted B+-tree, a mini relational engine, the two
RDBMS shredding strategies the paper contrasts (edge table vs
region-interval table), and **three distinct disk layers** that are easy
to confuse:

* :mod:`repro.storage.pager` — the §3.1 page-I/O **cost model**.  Never
  touches a file; it *prices* how many pages an access pattern would
  read so experiments can report the paper's metric.
* :mod:`repro.storage.pages` — the actual **page store**
  (:class:`PageStore`): one file of fixed-size pages with an immutable
  superblock, two alternating CRC'd catalog slots (crash-consistent
  flips, ``sync=True`` for fsync barriers), an LRU buffer pool, an mmap
  read path, batched atomic ``put_blobs`` and ``vacuum``.  This is
  where whole engine images (checkpoints) live.
* :mod:`repro.storage.wal` — the **write-ahead log**
  (:class:`WriteAheadLog`): CRC'd logical op records with group commit,
  making the gap *between* two page-store checkpoints durable.  A torn
  trailing record is detected and dropped, never deserialized;
  :class:`repro.concurrent.service.ConcurrentDocument` composes the
  two into checkpoint + replayed-tail recovery.
"""

from repro.storage.btree import CountedBTree
from repro.storage.edge_table import EDGE_COLUMNS, EdgeTableStore
from repro.storage.interval_table import (INTERVAL_COLUMNS,
                                          IntervalTableStore)
from repro.storage.pager import IOReport, PageModel, estimate_io
from repro.storage.pages import PageStore
from repro.storage.relational import (HashIndex, SortedIndex, Table,
                                      index_join, merge_interval_join,
                                      nested_loop_join)
from repro.storage.wal import WriteAheadLog

__all__ = [
    "CountedBTree",
    "Table",
    "HashIndex",
    "SortedIndex",
    "nested_loop_join",
    "index_join",
    "merge_interval_join",
    "EdgeTableStore",
    "EDGE_COLUMNS",
    "IntervalTableStore",
    "INTERVAL_COLUMNS",
    "PageModel",
    "IOReport",
    "estimate_io",
    "PageStore",
    "WriteAheadLog",
]
