"""Storage substrate: counted B+-tree, page cost model, mini relational
engine, and the two RDBMS shredding strategies the paper contrasts
(edge table vs region-interval table)."""

from repro.storage.btree import CountedBTree
from repro.storage.edge_table import EDGE_COLUMNS, EdgeTableStore
from repro.storage.interval_table import (INTERVAL_COLUMNS,
                                          IntervalTableStore)
from repro.storage.pager import IOReport, PageModel, estimate_io
from repro.storage.relational import (HashIndex, SortedIndex, Table,
                                      index_join, merge_interval_join,
                                      nested_loop_join)

__all__ = [
    "CountedBTree",
    "Table",
    "HashIndex",
    "SortedIndex",
    "nested_loop_join",
    "index_join",
    "merge_interval_join",
    "EdgeTableStore",
    "EDGE_COLUMNS",
    "IntervalTableStore",
    "INTERVAL_COLUMNS",
    "PageModel",
    "IOReport",
    "estimate_io",
]
