"""Interval (region-label) XML storage (Zhang et al., paper §1 ref [17]).

One tuple per element: ``(id, tag, begin, end, level)``, with labels taken
from a :class:`repro.labeling.scheme.LabeledDocument`.  The
ancestor-descendant axis becomes **one** self-join with label-comparison
predicates — evaluated here with the stack-based merge join, using sorted
per-tag indexes, exactly the plan the paper's §1 advertises.
"""

from __future__ import annotations

from typing import Any

from repro.core.stats import NULL_COUNTERS, Counters
from repro.labeling.scheme import LabeledDocument
from repro.storage.relational import (SortedIndex, Table,
                                      merge_interval_join)
from repro.xml.model import XMLElement

#: interval table columns
INTERVAL_COLUMNS = ("id", "tag", "begin", "end", "level")


class IntervalTableStore:
    """An XML document shredded into a region-labeled element table."""

    def __init__(self, labeled: LabeledDocument,
                 stats: Counters = NULL_COUNTERS):
        self.stats = stats
        self.labeled = labeled
        self.table = Table("interval", INTERVAL_COLUMNS, stats)
        self._ids: dict[int, XMLElement] = {}
        self._by_tag: dict[str, list[tuple[Any, Any, int]]] = {}
        self._load()
        self.begin_index = SortedIndex(self.table, "begin")

    def _load(self) -> None:
        # one flat extraction up front: every region below reads from the
        # document's cached label vector instead of issuing two per-node
        # scheme lookups per element
        self.labeled.warm_labels()
        next_id = 0
        for element in self.labeled.document.iter_elements():
            region = self.labeled.region(element)
            element_id = next_id
            next_id += 1
            self._ids[element_id] = element
            level = element.depth()
            self.table.insert((element_id, element.tag, region.begin,
                               region.end, level))
            self._by_tag.setdefault(element.tag, []).append(
                (region.begin, region.end, element_id))
        for triples in self._by_tag.values():
            triples.sort()

    def element(self, element_id: int) -> XMLElement:
        """The DOM element carrying ``element_id``."""
        return self._ids[element_id]

    def region_list(self, tag: str,
                    stats: Counters | None = None
                    ) -> list[tuple[Any, Any, int]]:
        """(begin, end, id) triples for ``tag``, sorted by begin.

        Reading the per-tag list charges one tuple read per entry,
        mirroring an index scan.  The charge lands on ``stats`` when
        given, else on the store's own counters — callers running a
        query against their own :class:`Counters` pass them here so
        index scans and joins are billed to one object.
        """
        triples = self._by_tag.get(tag, [])
        (self.stats if stats is None else stats).tuple_reads += \
            len(triples)
        return triples

    def tags(self) -> list[str]:
        """All distinct element tags, sorted (no accounting charge)."""
        return sorted(self._by_tag)

    def all_regions(self, stats: Counters | None = None
                    ) -> list[tuple[Any, Any, int]]:
        """(begin, end, id) triples for *every* element, sorted by begin.

        The wildcard-step scan: charges one tuple read per entry, to
        ``stats`` when given (see :meth:`region_list`).
        """
        triples: list[tuple[Any, Any, int]] = []
        for tag in self.tags():
            triples.extend(self.region_list(tag, stats))
        triples.sort()
        return triples

    def columnar(self) -> Any:
        """This store's document as a vectorized-query column store.

        Built lazily (and cached) from the same labeled document, so
        :func:`repro.query.columnar.evaluate_columnar` accepts an
        ``IntervalTableStore`` directly.  Imported in-method to keep
        ``storage`` free of a static dependency on ``query``.
        """
        store = getattr(self, "_columnar", None)
        if store is None:
            from repro.query.columnar import ColumnarStore
            store = self._columnar = ColumnarStore.from_labeled(
                self.labeled, self.stats)
        return store

    def level_of(self, element_id: int) -> int:
        """Stored level of an element (for parent-axis filtering)."""
        return self.table.rows[element_id][4]

    # ------------------------------------------------------------------
    # the §1 "exactly one self-join" plans
    # ------------------------------------------------------------------
    def descendants_join(self, ancestor_tag: str, descendant_tag: str
                         ) -> list[tuple[int, int]]:
        """All (ancestor_id, descendant_id) pairs for ``a//d``.

        One stack-based merge self-join over the two sorted tag lists.
        """
        ancestors = self.region_list(ancestor_tag)
        descendants = self.region_list(descendant_tag)
        return list(merge_interval_join(ancestors, descendants,
                                        self.stats))

    def children_join(self, parent_tag: str, child_tag: str
                      ) -> list[tuple[int, int]]:
        """All (parent_id, child_id) pairs for ``p/c``.

        The same single join plus a level check (containment + adjacent
        levels ≡ parenthood; see
        :func:`repro.labeling.containment.is_parent`).
        """
        pairs = self.descendants_join(parent_tag, child_tag)
        result = []
        for ancestor_id, descendant_id in pairs:
            self.stats.comparisons += 1
            if self.level_of(descendant_id) == \
                    self.level_of(ancestor_id) + 1:
                result.append((ancestor_id, descendant_id))
        return result

    def ids_by_tag(self, tag: str) -> list[int]:
        """Ids of all elements with ``tag`` in document order."""
        return [element_id for _, _, element_id in self.region_list(tag)]
