"""Disk-access *cost model* (paper §3.1) — an estimator, not a store.

Paper §3.1: *"The query and maintenance cost of an L-Tree is measured as
the number of disk accesses ... the cost is measured in terms of the
number of nodes accessed for searching or relabeling."*  The library
counts logical node/tuple touches (:class:`repro.core.stats.Counters`);
this module converts those counts into estimated page I/Os for reports, so
experiment tables can be read in the paper's units.

Nothing here touches a disk.  The actual fixed-size-page file with a
buffer pool and an mmap fast path lives in :mod:`repro.storage.pages`;
this module only prices logical work in page units.
"""

from __future__ import annotations

import dataclasses
import math

from repro.core.stats import Counters


@dataclasses.dataclass(frozen=True)
class PageModel:
    """A simple uniform page model.

    ``entries_per_page`` is how many structure nodes or tuples fit one
    page; ``cache_hit_rate`` models a tiny buffer pool as a flat discount
    on repeated touches (the paper assumes *no* caching — keep 0.0 to
    match).
    """

    entries_per_page: int = 64
    cache_hit_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.entries_per_page < 1:
            raise ValueError("entries_per_page must be >= 1")
        if not 0.0 <= self.cache_hit_rate < 1.0:
            raise ValueError("cache_hit_rate must be in [0, 1)")

    def pages_for(self, touches: int) -> float:
        """Estimated page I/Os for ``touches`` logical accesses.

        The cache discount applies to the raw page count first; the
        one-page floor comes last, so any nonzero touch count costs at
        least one real I/O regardless of ``cache_hit_rate``.
        """
        if touches <= 0:
            return 0.0
        raw = math.ceil(touches / self.entries_per_page)
        return max(1.0, raw * (1.0 - self.cache_hit_rate))


@dataclasses.dataclass
class IOReport:
    """Page-level view of a counter snapshot."""

    structure_ios: float
    tuple_ios: float

    @property
    def total(self) -> float:
        return self.structure_ios + self.tuple_ios


def estimate_io(counters: Counters,
                model: PageModel = PageModel()) -> IOReport:
    """Translate logical counters into the paper's disk-access units."""
    structure_touches = (counters.node_accesses + counters.relabels +
                         counters.count_updates)
    tuple_touches = counters.tuple_reads + counters.tuple_writes
    return IOReport(
        structure_ios=model.pages_for(structure_touches),
        tuple_ios=model.pages_for(tuple_touches),
    )
