"""Miniature relational engine.

The paper motivates labels by their use inside an RDBMS: *"When XML data
is stored in RDBMS, the ancestor-descendant queries can be processed by
exactly one self-join with label comparisons as predicates"* (§1).  To
measure that claim without a DBMS, this module provides just enough of a
relational substrate: named tables of tuples, hash and ordered indexes,
and the three join operators the experiments compare (nested-loop,
index-nested-loop, and a sort-merge interval join).  Every tuple touch is
counted through :class:`repro.core.stats.Counters`.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from repro.core.stats import NULL_COUNTERS, Counters
from repro.errors import StorageError

Row = tuple
Predicate = Callable[[Row], bool]


class Table:
    """A named relation: fixed columns, append-only rows."""

    def __init__(self, name: str, columns: Sequence[str],
                 stats: Counters = NULL_COUNTERS):
        if len(set(columns)) != len(columns):
            raise StorageError(f"duplicate columns in {columns!r}")
        self.name = name
        self.columns = tuple(columns)
        self.rows: list[Row] = []
        self.stats = stats
        self._column_index = {column: position
                              for position, column in enumerate(columns)}

    def column_position(self, column: str) -> int:
        """Position of ``column``; raises StorageError when absent."""
        try:
            return self._column_index[column]
        except KeyError:
            raise StorageError(
                f"table {self.name!r} has no column {column!r}; "
                f"columns: {self.columns}") from None

    def insert(self, row: Sequence[Any]) -> None:
        """Append one row (arity-checked)."""
        if len(row) != len(self.columns):
            raise StorageError(
                f"row arity {len(row)} != {len(self.columns)} "
                f"for table {self.name!r}")
        self.rows.append(tuple(row))
        self.stats.tuple_writes += 1

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.insert(row)

    def scan(self, predicate: Optional[Predicate] = None) -> Iterator[Row]:
        """Full scan, counting every tuple read."""
        for row in self.rows:
            self.stats.tuple_reads += 1
            if predicate is None or predicate(row):
                yield row

    def project(self, rows: Iterable[Row],
                columns: Sequence[str]) -> Iterator[Row]:
        """Column projection of an intermediate result (no I/O charge)."""
        positions = [self.column_position(column) for column in columns]
        for row in rows:
            yield tuple(row[position] for position in positions)

    def __len__(self) -> int:
        return len(self.rows)


class HashIndex:
    """Equality index: column value -> list of rows."""

    def __init__(self, table: Table, column: str):
        self.table = table
        self.column = column
        position = table.column_position(column)
        self._buckets: dict[Any, list[Row]] = {}
        for row in table.rows:
            self._buckets.setdefault(row[position], []).append(row)

    def lookup(self, value: Any) -> list[Row]:
        """Rows with ``column == value`` (each counted as one read)."""
        rows = self._buckets.get(value, [])
        self.table.stats.tuple_reads += len(rows)
        return rows

    def keys(self) -> Iterator[Any]:
        return iter(self._buckets)


class SortedIndex:
    """Ordered index on one column supporting range lookups."""

    def __init__(self, table: Table, column: str):
        self.table = table
        self.column = column
        position = table.column_position(column)
        decorated = sorted((row[position], row) for row in table.rows)
        self._keys = [key for key, _ in decorated]
        self._rows = [row for _, row in decorated]

    def range(self, low: Any, high: Any) -> Iterator[Row]:
        """Rows with ``low <= column < high`` in column order."""
        start = bisect.bisect_left(self._keys, low)
        stop = bisect.bisect_left(self._keys, high)
        for position in range(start, stop):
            self.table.stats.tuple_reads += 1
            yield self._rows[position]

    def all_rows(self) -> Iterator[Row]:
        """All rows in column order."""
        for row in self._rows:
            self.table.stats.tuple_reads += 1
            yield row


def nested_loop_join(left: Iterable[Row], right_table: Table,
                     predicate: Callable[[Row, Row], bool]
                     ) -> Iterator[tuple[Row, Row]]:
    """Textbook O(|L| * |R|) join; the baseline everything else beats."""
    left_rows = list(left)
    for right_row in right_table.scan():
        for left_row in left_rows:
            right_table.stats.comparisons += 1
            if predicate(left_row, right_row):
                yield left_row, right_row


def index_join(left: Iterable[Row], key: Callable[[Row], Any],
               index: HashIndex) -> Iterator[tuple[Row, Row]]:
    """Index-nested-loop equi-join: probe ``index`` per left row."""
    for left_row in left:
        for right_row in index.lookup(key(left_row)):
            yield left_row, right_row


def merge_interval_join(ancestors: Sequence[tuple[Any, Any, Any]],
                        descendants: Sequence[tuple[Any, Any, Any]],
                        stats: Counters = NULL_COUNTERS
                        ) -> Iterator[tuple[Any, Any]]:
    """Stack-based structural join over (begin, end, payload) triples.

    Both inputs must be sorted by ``begin``.  Emits
    ``(ancestor_payload, descendant_payload)`` for every containment pair
    in O(|A| + |D| + output) — the "exactly one self-join" plan of §1
    (Al-Khalifa et al.'s stack-tree join).
    """
    stack: list[tuple[Any, Any, Any]] = []
    a_position = 0
    for d_begin, d_end, d_payload in descendants:
        while a_position < len(ancestors) and \
                ancestors[a_position][0] < d_begin:
            candidate = ancestors[a_position]
            a_position += 1
            while stack and stack[-1][1] < candidate[0]:
                stack.pop()
            stack.append(candidate)
            stats.tuple_reads += 1
        while stack and stack[-1][1] < d_begin:
            stack.pop()
        stats.tuple_reads += 1
        for a_begin, a_end, a_payload in stack:
            stats.comparisons += 1
            if a_begin < d_begin and d_end < a_end:
                yield a_payload, d_payload
