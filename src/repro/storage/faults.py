"""Systematic fault injection: failpoints, hostile files, bounded retry.

Three pieces, one module, so every durability claim in this package can
be machine-checked instead of test-author-imagined:

* **Failpoint registry.**  Durability-critical transitions call
  :func:`failpoint` with a stable dotted name ("``wal:commit:pre-write``",
  "``pagestore:catalog:post-write``", ...).  Unarmed, a failpoint is a
  dictionary lookup — nothing fires.  Tests (and the crash-storm
  harness in :mod:`repro.testing.crashstorm`) arm a name on the
  process-wide :data:`FAILPOINTS` registry with a *trigger policy*
  (fire on the nth hit, every Nth hit, probabilistically under a seed)
  and an *action*: raise :class:`SimulatedCrash`, raise an ``OSError``
  with a chosen errno, tear the write the call site is about to issue
  (:func:`torn_write`), or ``os._exit`` for true kill storms.  Every
  failpoint self-declares at import time, so the harness can enumerate
  the complete crash surface and refuse to shrink it.

* **Hostile file layer.**  :class:`FaultyFile` wraps a real file object
  and simulates what a disk under power loss does: writes that persist
  only a prefix (torn), reads that return fewer bytes than asked,
  ``ENOSPC``/``EINTR`` at chosen call counts, and an fsync that reports
  success while durably dropping everything since the previous barrier
  (:meth:`FaultyFile.power_loss` then zeroes the unsynced extents, the
  bytes a lying disk would lose).  ``PageStore`` and ``WriteAheadLog``
  route their fsyncs through :func:`fsync_file` so the wrapper can
  intercept them.

* **Bounded retry.**  :func:`write_with_retry` is the transient-error
  discipline the WAL append path uses: ``EINTR``/``ENOSPC`` are retried
  a bounded number of times with exponential backoff, partial writes
  are resumed from where they stopped, and exhaustion surfaces as
  :class:`~repro.errors.StorageError` so callers can degrade gracefully
  instead of crashing on a full disk.
"""

from __future__ import annotations

import errno as _errno
import os
import random
import threading
import time
from typing import Any, Callable, Iterable, Optional

from repro.errors import StorageError
from repro.obs import METRICS, TRACER

__all__ = [
    "SimulatedCrash", "FailpointRegistry", "FAILPOINTS", "failpoint",
    "crash", "raise_errno", "exit_process", "torn_write",
    "FaultPolicy", "FaultyFile", "FaultyStore", "fsync_file",
    "kill_file", "write_with_retry",
]


class SimulatedCrash(BaseException):
    """An injected process death.

    Deliberately *not* a :class:`~repro.errors.ReproError` (nor even an
    ``Exception``): a crash must unwind through every ``except
    Exception`` recovery path untouched, exactly like a SIGKILL would
    skip them.  Cleanup code that catches ``BaseException`` to close
    files and re-raise still runs, which is the most a dying process's
    already-issued syscalls would have done.
    """

    def __init__(self, failpoint_name: str = "?"):
        super().__init__(f"simulated crash at failpoint {failpoint_name!r}")
        self.failpoint_name = failpoint_name


# ----------------------------------------------------------------------
# actions
# ----------------------------------------------------------------------
def crash(name: str, ctx: dict) -> None:
    """Default action: die here (raise :class:`SimulatedCrash`)."""
    raise SimulatedCrash(name)


def raise_errno(code: int) -> Callable[[str, dict], None]:
    """Action factory: raise ``OSError(code)`` at the failpoint."""

    def action(name: str, ctx: dict) -> None:
        raise OSError(code, os.strerror(code))

    return action


def exit_process(status: int = 137) -> Callable[[str, dict], None]:
    """Action factory: hard-kill the process (``os._exit``).

    No atexit handlers, no buffered-file flushing, no ``finally``
    blocks — the honest simulation of SIGKILL the subprocess storm
    mode uses.
    """

    def action(name: str, ctx: dict) -> None:
        os._exit(status)

    return action


def torn_write(fraction: float = 0.5) -> Callable[[str, dict], None]:
    """Action factory for failpoints that offer a tearable write.

    The call site passes the file object and the bytes it is *about*
    to write as context (``failpoint(name, file=f, data=b)``).  The
    action writes only a prefix (``fraction`` of the bytes, at least
    one when any were requested), pushes it to the OS, severs the file
    descriptor so no later flush can complete the write, and raises
    :class:`SimulatedCrash` — a power loss mid-``write(2)``.
    """

    def action(name: str, ctx: dict) -> None:
        handle = ctx["file"]
        data = ctx["data"]
        keep = int(len(data) * fraction)
        if data and keep == 0:
            keep = 1
        if keep:
            handle.write(data[:keep])
        try:
            handle.flush()
        except (OSError, ValueError):
            pass
        kill_file(handle)
        raise SimulatedCrash(name)

    return action


_NAMED_ACTIONS: dict[str, Callable[[str, dict], None]] = {
    "crash": crash,
    "enospc": raise_errno(_errno.ENOSPC),
    "eintr": raise_errno(_errno.EINTR),
    "exit": exit_process(),
    "torn-write": torn_write(),
}


class _Armed:
    """One armed failpoint: trigger policy + action + remaining budget."""

    __slots__ = ("action", "nth", "every", "probability", "rng",
                 "times", "hits")

    def __init__(self, action: Callable[[str, dict], None], nth: int,
                 every: Optional[int], probability: Optional[float],
                 seed: Optional[int], times: Optional[int]):
        self.action = action
        self.nth = nth
        self.every = every
        self.probability = probability
        self.rng = random.Random(seed) if probability is not None else None
        self.times = times
        self.hits = 0

    def should_fire(self) -> bool:
        self.hits += 1
        if self.times is not None and self.times <= 0:
            return False
        if self.probability is not None:
            fire = self.rng.random() < self.probability
        elif self.every is not None:
            fire = self.hits % self.every == 0
        else:
            fire = self.hits == self.nth
        if fire and self.times is not None:
            self.times -= 1
        return fire


class FailpointRegistry:
    """Process-wide registry of declared and armed failpoints.

    Call sites use the module-level :func:`failpoint`; tests use
    :meth:`arm` / :meth:`disarm` / :meth:`scoped`.  All methods are
    thread-safe; firing happens outside the lock so an action may
    itself touch files (or re-enter the registry) without deadlocking.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._declared: dict[str, str] = {}
        self._armed: dict[str, _Armed] = {}
        #: lifetime hit count per name (armed or not) — the coverage
        #: signal the crash-storm harness asserts on
        self.hits: dict[str, int] = {}
        #: lifetime fired count per name (armed hits whose policy chose
        #: to fire)
        self.fired: dict[str, int] = {}

    # -- declaration ---------------------------------------------------
    def declare(self, name: str, doc: str = "") -> str:
        """Register ``name`` as part of the crash surface; idempotent."""
        with self._lock:
            self._declared.setdefault(name, doc)
            self.hits.setdefault(name, 0)
            self.fired.setdefault(name, 0)
        return name

    def names(self) -> list[str]:
        """Every declared failpoint, sorted — the enumerable surface."""
        with self._lock:
            return sorted(self._declared)

    def describe(self) -> dict[str, str]:
        """``{name: doc}`` of the declared surface."""
        with self._lock:
            return dict(self._declared)

    # -- arming --------------------------------------------------------
    def arm(self, name: str,
            action: "str | Callable[[str, dict], None]" = "crash",
            *, nth: int = 1, every: Optional[int] = None,
            probability: Optional[float] = None,
            seed: Optional[int] = None,
            times: Optional[int] = 1) -> None:
        """Arm ``name`` with a trigger policy and an action.

        ``action`` is a callable ``(name, ctx) -> None`` or one of the
        named shorthands ``"crash"``, ``"enospc"``, ``"eintr"``,
        ``"exit"``, ``"torn-write"``.  Exactly one trigger applies:
        ``nth`` (fire on the nth hit after arming — the default, first
        hit), ``every`` (fire on every Nth hit), or ``probability``
        (fire with probability p per hit, deterministic under
        ``seed``).  ``times`` bounds total fires (``None`` =
        unlimited); an exhausted ``nth`` arm never fires again.
        """
        if isinstance(action, str):
            try:
                action = _NAMED_ACTIONS[action]
            except KeyError:
                raise StorageError(
                    f"unknown failpoint action {action!r} (known: "
                    f"{sorted(_NAMED_ACTIONS)})") from None
        if every is not None and probability is not None:
            raise StorageError(
                "arm() takes every= or probability=, not both")
        with self._lock:
            # deliberately no declare(): the declared surface is the
            # crash storm's enumeration contract and only grows through
            # explicit import-time declare() calls — arming an ad-hoc
            # name (tests do) must not add it to the surface
            self._armed[name] = _Armed(action, nth, every, probability,
                                       seed, times)

    def disarm(self, name: str) -> None:
        with self._lock:
            self._armed.pop(name, None)

    def reset(self) -> None:
        """Disarm everything and zero the hit/fired counters."""
        with self._lock:
            self._armed.clear()
            for name in self.hits:
                self.hits[name] = 0
            for name in self.fired:
                self.fired[name] = 0

    def armed(self) -> list[str]:
        with self._lock:
            return sorted(self._armed)

    def scoped(self) -> "_Scope":
        """``with FAILPOINTS.scoped(): ...`` — arms made inside the
        block (and any pre-existing ones) are restored to the entry
        state on exit, so a failing test cannot leak an armed crash
        into the next one."""
        return _Scope(self)

    # -- firing --------------------------------------------------------
    def fire(self, name: str, ctx: dict) -> None:
        action = None
        with self._lock:
            self.hits[name] = self.hits.get(name, 0) + 1
            armed = self._armed.get(name)
            if armed is not None and armed.should_fire():
                self.fired[name] = self.fired.get(name, 0) + 1
                action = armed.action
        # the trace event goes out before the action so a crashing
        # action still leaves its hit on the record
        if TRACER.enabled:
            TRACER.event("failpoint", point=name, fired=action is not None)
        if action is not None:
            # outside the lock: the action may raise, write files, or
            # re-enter the registry
            action(name, ctx)


class _Scope:
    def __init__(self, registry: FailpointRegistry):
        self._registry = registry
        self._saved: Optional[dict[str, _Armed]] = None

    def __enter__(self) -> FailpointRegistry:
        with self._registry._lock:
            self._saved = dict(self._registry._armed)
        return self._registry

    def __exit__(self, *exc_info: object) -> None:
        with self._registry._lock:
            self._registry._armed = dict(self._saved or {})


#: the process-wide registry every call site and test shares
FAILPOINTS = FailpointRegistry()


def failpoint(name: str, /, **ctx: Any) -> None:
    """A named crash point.  Free when unarmed; see :data:`FAILPOINTS`.

    Call sites that offer a tearable write pass the file and payload as
    context (``failpoint("wal:commit:torn-write", file=f, data=b)``)
    so a :func:`torn_write` action can cut the write at a byte
    boundary the site itself never could.
    """
    FAILPOINTS.fire(name, ctx)


def _arm_from_env() -> None:
    """Arm one exit-at-failpoint from ``REPRO_FAILPOINT_EXIT``.

    Format ``name`` or ``name:nth``.  This is how the subprocess storm
    worker plants a true-kill failpoint before any repro module runs a
    workload — the parent sets the variable, the child dies mid-write
    with ``os._exit``, no Python unwinding at all.
    """
    spec = os.environ.get("REPRO_FAILPOINT_EXIT")
    if not spec:
        return
    # failpoint names themselves contain colons; only a numeric tail
    # is an nth ("wal:commit:pre-write:3")
    name, _, nth = spec.rpartition(":")
    if name and nth.isdigit():
        FAILPOINTS.arm(name, "exit", nth=int(nth))
    else:
        FAILPOINTS.arm(spec, "exit")


_arm_from_env()


# ----------------------------------------------------------------------
# hostile file layer
# ----------------------------------------------------------------------
class FaultPolicy:
    """Mutable knobs steering one :class:`FaultyFile`.

    All ``*_at`` counts are 1-based call indices ("fail the 3rd
    write").  A knob fires once and clears itself, so a retry after a
    transient error succeeds — arm it again for repeated failure.

    Parameters
    ----------
    torn_write_at:
        On that write call, persist only ``torn_keep_fraction`` of the
        requested bytes, sever the descriptor, raise
        :class:`SimulatedCrash`.
    write_errno_at:
        ``{call_index: errno}`` — raise ``OSError(errno)`` *instead* of
        writing (nothing persisted), the shape of ``ENOSPC`` and
        ``EINTR`` on a buffered stream.
    short_read_at:
        On that read call, return at most half the requested bytes.
    fsync_errno_at:
        ``{call_index: errno}`` for :meth:`FaultyFile.fsync`.
    lying_fsync:
        Fsync reports success but establishes no barrier: a later
        :meth:`FaultyFile.power_loss` drops writes *through* it.
    """

    def __init__(self, torn_write_at: Optional[int] = None,
                 torn_keep_fraction: float = 0.5,
                 write_errno_at: Optional[dict[int, int]] = None,
                 short_read_at: Optional[int] = None,
                 fsync_errno_at: Optional[dict[int, int]] = None,
                 lying_fsync: bool = False):
        self.torn_write_at = torn_write_at
        self.torn_keep_fraction = torn_keep_fraction
        self.write_errno_at = dict(write_errno_at or {})
        self.short_read_at = short_read_at
        self.fsync_errno_at = dict(fsync_errno_at or {})
        self.lying_fsync = lying_fsync


class FaultyFile:
    """A file object that misbehaves on command.

    Wraps a real binary file and exposes the protocol ``PageStore`` and
    ``WriteAheadLog`` use (``write``/``read``/``seek``/``tell``/
    ``flush``/``truncate``/``fileno``/``close``), consulting a
    :class:`FaultPolicy` before every operation.  It additionally
    tracks the byte extents written since the last *honest* fsync;
    :meth:`power_loss` zeroes them in place — the on-disk picture a
    machine that lost power (or whose disk acknowledged writes it
    dropped) would reboot to.

    Tests install it by swapping a store's private handle::

        store._file = FaultyFile(store._file, policy)
    """

    def __init__(self, inner: Any, policy: Optional[FaultPolicy] = None):
        self._inner = inner
        self.policy = policy or FaultPolicy()
        self.writes = 0
        self.reads = 0
        self.fsyncs = 0
        #: (offset, length) extents not yet covered by an honest fsync
        self._unsynced: list[tuple[int, int]] = []

    # -- the faulty core ----------------------------------------------
    def write(self, data: bytes) -> int:
        self.writes += 1
        policy = self.policy
        code = policy.write_errno_at.pop(self.writes, None)
        if code is not None:
            raise OSError(code, os.strerror(code))
        if policy.torn_write_at == self.writes:
            policy.torn_write_at = None
            keep = int(len(data) * policy.torn_keep_fraction)
            if data and keep == 0:
                keep = 1
            offset = self._inner.tell()
            if keep:
                self._inner.write(data[:keep])
                self._unsynced.append((offset, keep))
            try:
                self._inner.flush()
            except (OSError, ValueError):
                pass
            kill_file(self._inner)
            raise SimulatedCrash(f"torn write #{self.writes}")
        offset = self._inner.tell()
        written = self._inner.write(data)
        self._unsynced.append((offset, len(data)))
        return written

    def read(self, size: int = -1) -> bytes:
        self.reads += 1
        if self.policy.short_read_at == self.reads and size > 1:
            self.policy.short_read_at = None
            return self._inner.read(size // 2)
        return self._inner.read(size)

    def fsync(self) -> None:
        self.fsyncs += 1
        code = self.policy.fsync_errno_at.pop(self.fsyncs, None)
        if code is not None:
            raise OSError(code, os.strerror(code))
        self._inner.flush()
        os.fsync(self._inner.fileno())
        if not self.policy.lying_fsync:
            self._unsynced.clear()

    def power_loss(self) -> int:
        """Zero every unsynced extent in the file; returns bytes lost.

        Simulates the reboot after a power cut: data the OS (or a
        lying disk) never made durable reads back as zeroes.  The
        wrapper is unusable afterwards — reopen the path fresh, the
        way a restarted process would.
        """
        try:
            self._inner.flush()
        except (OSError, ValueError):
            pass
        lost = 0
        with open(_file_path(self._inner), "r+b") as raw:
            size = os.fstat(raw.fileno()).st_size
            for offset, length in self._unsynced:
                length = max(0, min(length, size - offset))
                if length <= 0:
                    continue
                raw.seek(offset)
                raw.write(b"\x00" * length)
                lost += length
        self._unsynced.clear()
        self.close()
        return lost

    # -- passthrough ---------------------------------------------------
    def seek(self, *args: Any) -> int:
        return self._inner.seek(*args)

    def tell(self) -> int:
        return self._inner.tell()

    def flush(self) -> None:
        self._inner.flush()

    def truncate(self, size: Optional[int] = None) -> int:
        return self._inner.truncate(size)

    def fileno(self) -> int:
        return self._inner.fileno()

    def close(self) -> None:
        self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed

    @property
    def name(self) -> str:
        return getattr(self._inner, "name", "<faulty>")


class FaultyStore:
    """A :class:`~repro.storage.pages.PageStore` over a hostile disk.

    Context manager that opens the store at ``path`` and slides a
    :class:`FaultyFile` under it, so every write/read/fsync the store
    issues consults ``policy``::

        with FaultyStore(path, FaultPolicy(torn_write_at=3),
                         sync=True) as hostile:
            hostile.store.put_blob("a", data)   # third write tears
        ...
        hostile.file.power_loss()               # after lying fsync

    ``store`` is the live PageStore, ``file`` the wrapper (counters,
    :meth:`FaultyFile.power_loss`).  Exit severs cleanly even when a
    fault already killed the descriptor: mmaps are released first, so
    a torn store never leaks maps out of the ``with`` block.
    """

    def __init__(self, path: str, policy: Optional[FaultPolicy] = None,
                 **store_kwargs: Any):
        self.path = path
        self.policy = policy or FaultPolicy()
        self._store_kwargs = store_kwargs
        self.store: Any = None
        self.file: Optional[FaultyFile] = None

    def __enter__(self) -> "FaultyStore":
        from repro.storage.pages import PageStore

        self.store = PageStore(self.path, **self._store_kwargs)
        self.file = FaultyFile(self.store._file, self.policy)
        self.store._file = self.file
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        store = self.store
        try:
            store.close()
        except (OSError, ValueError):
            # the descriptor is already dead (torn write, power loss):
            # release the maps by hand, the way close() would have
            for mapped in store._retired_maps + \
                    ([store._map] if store._map is not None else []):
                try:
                    mapped.close()
                except BufferError:
                    pass
            store._retired_maps.clear()
            store._map = None
            try:
                store._file.close()
            except (OSError, ValueError):
                pass
        return False


def _file_path(handle: Any) -> str:
    path = getattr(handle, "name", None)
    if not isinstance(path, str):
        raise StorageError("cannot locate path of wrapped file")
    return path


def fsync_file(handle: Any) -> None:
    """``os.fsync`` that honors a :class:`FaultyFile` wrapper.

    The one fsync entry point ``PageStore`` and ``WriteAheadLog`` use:
    a wrapped file's own :meth:`FaultyFile.fsync` (which may lie or
    fail on command) when present, the real syscall otherwise.
    """
    method = getattr(handle, "fsync", None)
    if method is not None:
        method()
    else:
        os.fsync(handle.fileno())


def kill_file(handle: Any) -> None:
    """Sever a file at the descriptor level without flushing.

    ``os.close`` on the raw fd mimics process death: whatever sat in
    the Python-level buffer is gone, and any later ``flush``/``close``
    on the object fails (ignored by callers simulating a corpse).
    """
    try:
        os.close(handle.fileno())
    except OSError:
        pass


# ----------------------------------------------------------------------
# bounded transient-error retry
# ----------------------------------------------------------------------
#: errnos treated as transient by :func:`write_with_retry`
TRANSIENT_ERRNOS = (_errno.EINTR, _errno.ENOSPC, _errno.EAGAIN)


def write_with_retry(handle: Any, data: bytes, *, retries: int = 5,
                     backoff: float = 0.001,
                     sleep: Callable[[float], None] = time.sleep,
                     transient: Iterable[int] = TRANSIENT_ERRNOS) -> int:
    """Write ``data`` whole, retrying transient errors with backoff.

    ``EINTR``/``EAGAIN``/``ENOSPC`` are retried up to ``retries``
    times, sleeping ``backoff * 2**attempt`` between tries (a full
    disk is often a *momentarily* full disk — log rotation, a
    concurrent vacuum); a short write resumes from where it stopped.
    Exhaustion raises :class:`~repro.errors.StorageError` chained to
    the last ``OSError`` — the caller decides whether that degrades or
    aborts.  Returns the bytes written (always ``len(data)`` on
    success).
    """
    transient = tuple(transient)
    written = 0
    attempt = 0
    view = memoryview(data)
    while written < len(data):
        try:
            n = handle.write(view[written:])
        except OSError as exc:
            if exc.errno not in transient:
                raise
            attempt += 1
            if METRICS.enabled:
                METRICS.inc("storage.write_retries")
            if attempt > retries:
                raise StorageError(
                    f"write of {len(data)} bytes failed after "
                    f"{retries} retries ({exc})") from exc
            sleep(backoff * (2 ** (attempt - 1)))
            continue
        written += len(data) - written if n is None else n
    return written
