"""Write-ahead log of logical engine operations (the third storage layer).

:mod:`repro.storage` now holds three distinct layers — see the package
docstring: :mod:`repro.storage.pager` *prices* page I/O (§3.1 cost
model), :mod:`repro.storage.pages` stores whole engine images under a
crash-consistent catalog, and this module makes the *gap between two
image saves* durable.  A full :meth:`repro.core.sharded
.ShardedCompactLTree.save` rewrites every arena; a
:class:`WriteAheadLog` instead appends one small CRC'd record per
logical operation (``insert_after``, ``run_insert``, ``delete``,
``set_payload``, ``bulk_load``) so a crash loses at most the
uncommitted tail of a batch, never a whole editing session.

**File layout** (all integers little-endian)::

    header   magic "LTWAL\\x00\\x00\\x00", version u32, base_seq u64,
             crc u32 over the preceding fields
    record   body_len u32, crc u32 over (seq ⊕ body), seq u64,
             body bytes (compact JSON of one logical op)

Records carry strictly consecutive sequence numbers starting at the
header's ``base_seq``.  Opening an existing log scans it record by
record and **physically truncates** everything from the first record
whose length, CRC or sequence number does not validate — a record torn
by a crash mid-append is *dropped, never deserialized*
(:attr:`dropped_bytes` reports how much was cut).

**Group commit.**  :meth:`append` only buffers; :meth:`commit` writes
the whole batch with one ``write`` + ``flush`` and — with ``sync=True``,
the same discipline :class:`repro.storage.pages.PageStore` uses for its
catalog flips — a single ``fsync`` for the entire batch.  Passing
``group_commit=N`` auto-commits every N buffered records.  The
durability contract is therefore *committed records survive a crash*;
an uncommitted tail is lost with the process (and with ``sync=False``
a power loss may additionally lose what only reached the OS).

**Checkpointing** belongs to the caller (see
:class:`repro.concurrent.service.ConcurrentDocument`): fold the engine
state into a page-store save whose same atomic catalog flip records the
checkpoint sequence number, then :meth:`truncate` the log.  Truncation
writes a fresh header to a sibling temp file and atomically renames it
over the log, so a crash at any point leaves either the old log (whose
pre-checkpoint records are simply skipped on replay) or the new empty
one — never a half-truncated file.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from typing import Any, Iterator, Optional

from repro.errors import CorruptionError, RecoveryError, StorageError
from repro.obs import METRICS
from repro.storage.faults import (FAILPOINTS, failpoint, fsync_file,
                                  write_with_retry)

#: magic prefix of a WAL file
WAL_MAGIC = b"LTWAL\x00\x00\x00"
#: on-disk format version (bump on layout changes)
WAL_FORMAT_VERSION = 1

# the enumerable crash surface of this module (see repro.storage.faults)
FAILPOINTS.declare("wal:open:pre-truncate-tail",
                   "torn tail found, physical truncate not yet issued")
FAILPOINTS.declare("wal:commit:pre-write",
                   "batch assembled, nothing written")
FAILPOINTS.declare("wal:commit:torn-write",
                   "tearable write of the whole commit batch")
FAILPOINTS.declare("wal:commit:post-write",
                   "batch written, not yet flushed to the OS")
FAILPOINTS.declare("wal:commit:pre-fsync",
                   "batch flushed, fsync barrier not yet issued")
FAILPOINTS.declare("wal:commit:post-fsync",
                   "batch durable, pending buffer not yet cleared")
FAILPOINTS.declare("wal:truncate:pre-temp",
                   "truncate decided, fresh header not yet written")
FAILPOINTS.declare("wal:truncate:pre-replace",
                   "fresh header complete, rename not yet issued")
FAILPOINTS.declare("wal:truncate:post-replace",
                   "rename done, log not yet reopened")

#: file header: magic, version, base_seq, crc32 of the preceding fields
_WAL_HEADER = struct.Struct("<8sIQI")
#: fixed record prefix: body length, crc32 of (seq bytes + body), seq
_RECORD = struct.Struct("<IIQ")
_SEQ = struct.Struct("<Q")

#: byte ceiling for a single record body — a length field corrupted to
#: garbage must not trigger a gigabyte allocation during the scan
MAX_RECORD_BYTES = 64 * 1024 * 1024


def _encode_record(seq: int, body: bytes) -> bytes:
    crc = zlib.crc32(_SEQ.pack(seq) + body)
    return _RECORD.pack(len(body), crc, seq) + body


def _iter_valid_records(raw: bytes,
                        base_seq: int) -> Iterator[tuple[int, bytes, int]]:
    """``(seq, body, end_offset)`` of the valid record prefix of a log.

    The *single* validity rule both consumers share — the open-time
    scan that truncates a torn tail, and :meth:`WriteAheadLog.replay`
    — so the two can never disagree about which records exist: a
    record counts only when its length fits the file, its CRC matches,
    and its sequence number is exactly the next consecutive one.
    Iteration stops at the first violation (everything after a torn or
    foreign record is untrustworthy).
    """
    offset = _WAL_HEADER.size
    expected_seq = base_seq
    while offset + _RECORD.size <= len(raw):
        body_len, crc, seq = _RECORD.unpack_from(raw, offset)
        body_start = offset + _RECORD.size
        body_end = body_start + body_len
        if body_len > MAX_RECORD_BYTES or body_end > len(raw):
            return                                 # torn mid-append
        body = raw[body_start:body_end]
        if zlib.crc32(_SEQ.pack(seq) + body) != crc:
            return                                 # torn or corrupt
        if seq != expected_seq:
            return                                 # out-of-order garbage
        expected_seq += 1
        offset = body_end
        yield seq, body, body_end


class WriteAheadLog:
    """Append-only, CRC'd log of logical ops with group commit.

    Parameters
    ----------
    path:
        Log file; created with a fresh header when missing or empty.
    sync:
        ``True`` issues one ``os.fsync`` per :meth:`commit` (and per
        :meth:`truncate`), extending durability to power loss at the
        usual fsync cost per *batch* — not per record; that is the whole
        point of group commit.
    group_commit:
        Auto-commit after this many buffered :meth:`append` calls
        (``None`` — the default — commits only when asked).

    Examples
    --------
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "doc.wal")
    >>> with WriteAheadLog(path) as wal:
    ...     seq = wal.append({"op": "insert_after", "h": [0, 1], "p": "x"})
    ...     wal.commit()
    >>> with WriteAheadLog(path) as wal:
    ...     [(seq, op["op"]) for seq, op in wal.replay()]
    [(1, 'insert_after')]
    """

    def __init__(self, path: str, sync: bool = False,
                 group_commit: Optional[int] = None):
        if group_commit is not None and group_commit < 1:
            raise StorageError(
                f"group_commit must be >= 1, got {group_commit}")
        self.path = os.fspath(path)
        self.sync = bool(sync)
        self.group_commit = group_commit
        self._lock = threading.Lock()
        self._pending: list[bytes] = []
        self._pending_records = 0
        #: bytes cut from a torn tail when the log was opened
        self.dropped_bytes = 0
        #: completed commit batches (each one write + flush [+ fsync])
        self.commits = 0
        #: fsync calls issued (``sync=True`` only) — the group-commit
        #: economy is ``records_appended / fsyncs``
        self.fsyncs = 0
        #: records accepted by :meth:`append` over this object's life
        self.records_appended = 0
        #: set when a failed commit left torn bytes it could not rewind;
        #: every later commit refuses rather than appending records no
        #: scan would ever reach (they would sit past the torn fragment)
        self._damaged = False
        temp_path = self.path + ".truncate"
        if os.path.exists(temp_path):
            # leftover from a truncate that crashed before its rename;
            # the original log is still authoritative
            os.unlink(temp_path)
        exists = os.path.exists(self.path) and \
            os.path.getsize(self.path) > 0
        self._file = open(self.path, "r+b" if exists else "w+b")
        try:
            if exists:
                self._scan_existing()
            else:
                self.base_seq = 1
                self.last_seq = 0
                self._file.write(self._header_bytes(self.base_seq))
                self._file.flush()
        except BaseException:
            self._file.close()
            raise

    @staticmethod
    def _header_bytes(base_seq: int) -> bytes:
        prefix = _WAL_HEADER.pack(WAL_MAGIC, WAL_FORMAT_VERSION,
                                  base_seq, 0)[:-4]
        return prefix + struct.pack("<I", zlib.crc32(prefix))

    def _scan_existing(self) -> None:
        """Validate the header, walk every record, truncate a torn tail."""
        self._file.seek(0)
        raw = self._file.read()
        if len(raw) < _WAL_HEADER.size:
            raise StorageError(f"{self.path!r}: truncated WAL header")
        magic, version, base_seq, crc = _WAL_HEADER.unpack_from(raw, 0)
        if magic != WAL_MAGIC:
            raise CorruptionError(
                f"{self.path!r}: bad magic {magic!r}; not a WAL file")
        if version != WAL_FORMAT_VERSION:
            raise StorageError(
                f"{self.path!r}: unsupported WAL version {version} "
                f"(supported: {WAL_FORMAT_VERSION})")
        if zlib.crc32(raw[:_WAL_HEADER.size - 4]) != crc:
            raise CorruptionError(
                f"{self.path!r}: WAL header fails its checksum")
        self.base_seq = base_seq
        self.last_seq = base_seq - 1
        good_end = _WAL_HEADER.size
        for seq, _body, end_offset in _iter_valid_records(raw, base_seq):
            self.last_seq = seq
            good_end = end_offset
        if good_end < len(raw):
            # drop the torn tail *physically*, so no later scan can be
            # tempted to deserialize it
            self.dropped_bytes = len(raw) - good_end
            failpoint("wal:open:pre-truncate-tail", wal=self,
                      good_end=good_end)
            self._file.truncate(good_end)
            self._file.flush()
        self._file.seek(0, os.SEEK_END)

    # ------------------------------------------------------------------
    # appending (group commit)
    # ------------------------------------------------------------------
    def append(self, op: dict[str, Any]) -> int:
        """Buffer one logical op; returns its sequence number.

        The record is *not* durable until the batch holding it commits
        (explicitly, or automatically once ``group_commit`` records have
        accumulated).
        """
        obs = METRICS.enabled
        t0 = time.perf_counter() if obs else 0.0
        try:
            body = json.dumps(op, separators=(",", ":")).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise StorageError(
                f"WAL op is not JSON-serializable ({exc})") from None
        with self._lock:
            seq = self.last_seq + 1
            self._pending.append(_encode_record(seq, body))
            self._pending_records += 1
            self.last_seq = seq
            self.records_appended += 1
            if self.group_commit is not None and \
                    self._pending_records >= self.group_commit:
                self._commit_locked()
            if obs:
                # includes the group-commit fsync when this append
                # happened to close a batch — that is the latency a
                # caller of append() actually saw
                METRICS.observe("wal.append.seconds",
                                time.perf_counter() - t0)
                METRICS.inc("wal.records_appended")
            return seq

    def commit(self) -> None:
        """Write and flush every buffered record; one fsync per batch."""
        with self._lock:
            self._commit_locked()

    def _commit_locked(self) -> None:
        if not self._pending:
            return
        if self._damaged:
            raise RecoveryError(
                f"{self.path!r}: a failed commit left torn bytes this "
                f"log could not rewind; records appended now would sit "
                f"past the tear where no scan reaches them — reopen "
                f"the log to recover")
        obs = METRICS.enabled
        t0 = time.perf_counter() if obs else 0.0
        batch_records = self._pending_records
        batch = b"".join(self._pending)
        start = self._file.tell()
        failpoint("wal:commit:pre-write", wal=self)
        failpoint("wal:commit:torn-write", wal=self, file=self._file,
                  data=batch)
        try:
            # EINTR/ENOSPC are retried with bounded backoff — a full
            # disk is often momentarily full; exhaustion (or a hard
            # error) rewinds the file to the batch start so the
            # *pending buffer stays intact* and a later commit retries
            # the whole batch against a clean tail
            write_with_retry(self._file, batch)
            failpoint("wal:commit:post-write", wal=self)
            self._file.flush()
            if self.sync:
                failpoint("wal:commit:pre-fsync", wal=self)
                fsync_file(self._file)
                self.fsyncs += 1
                failpoint("wal:commit:post-fsync", wal=self)
        except (OSError, StorageError):
            self._rewind_to(start)
            raise
        self._pending = []
        self._pending_records = 0
        self.commits += 1
        if obs:
            METRICS.observe("wal.commit.seconds", time.perf_counter() - t0)
            METRICS.observe("wal.commit.batch_records", batch_records)
            METRICS.inc("wal.commits")
            if self.sync:
                METRICS.inc("wal.fsyncs")

    def _rewind_to(self, offset: int) -> None:
        """Cut a failed commit's partial bytes back off the tail.

        Leaving them would strand every later record behind an invalid
        fragment (the scan stops at the first bad record).  If even the
        truncate fails, the log marks itself damaged and refuses
        further commits instead of silently losing them.
        """
        try:
            self._file.truncate(offset)
            self._file.seek(0, os.SEEK_END)
        except (OSError, ValueError):
            self._damaged = True

    @property
    def pending_records(self) -> int:
        """Records appended but not yet committed."""
        return self._pending_records

    # ------------------------------------------------------------------
    # replay and truncation
    # ------------------------------------------------------------------
    def replay(self, after_seq: int = 0) -> Iterator[tuple[int, dict]]:
        """Yield ``(seq, op)`` for every committed record after
        ``after_seq``, in append order.

        Buffered records are committed first so a live log replays
        everything it has accepted.  Applying the ops in this order to
        the engine state of the matching checkpoint deterministically
        reproduces the logged state — shard-local ops on different
        shards commute, and each shard's subsequence is in its original
        apply order (see ``ConcurrentDocument``).
        """
        with self._lock:
            self._commit_locked()
            base_seq = self.base_seq
        with open(self.path, "rb") as reader:
            raw = reader.read()
        for seq, body, _end in _iter_valid_records(raw, base_seq):
            if seq > after_seq:
                yield seq, json.loads(body.decode("utf-8"))

    def truncate(self, base_seq: Optional[int] = None) -> None:
        """Reset the log to empty, with a fresh ``base_seq``.

        Called after a checkpoint folded every record into the page
        store.  ``base_seq`` defaults to ``last_seq + 1`` (the next
        record the log will accept).  A fresh header is written to a
        sibling temp file and atomically renamed over the log: a crash
        before the rename leaves the old log (its records are skipped by
        a replay that honors the checkpoint sequence number), a crash
        after it leaves the already-valid empty log.
        """
        with self._lock:
            self._commit_locked()
            if base_seq is None:
                base_seq = self.last_seq + 1
            if base_seq < 1:
                raise StorageError(
                    f"base_seq must be >= 1, got {base_seq}")
            temp_path = self.path + ".truncate"
            failpoint("wal:truncate:pre-temp", wal=self)
            with open(temp_path, "wb") as temp:
                temp.write(self._header_bytes(base_seq))
                temp.flush()
                if self.sync:
                    fsync_file(temp)
                    self.fsyncs += 1
            failpoint("wal:truncate:pre-replace", wal=self)
            self._file.close()
            os.replace(temp_path, self.path)
            failpoint("wal:truncate:post-replace", wal=self)
            self._file = open(self.path, "r+b")
            self._file.seek(0, os.SEEK_END)
            self.base_seq = base_seq
            self.last_seq = base_seq - 1
            self.dropped_bytes = 0
            self._damaged = False
            if METRICS.enabled:
                METRICS.inc("wal.truncates")
                if self.sync:
                    METRICS.inc("wal.fsyncs")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Commit any buffered records and release the file.

        The file is released even when that final commit fails (a full
        disk must not leak the descriptor); the commit's error still
        propagates so the caller knows the tail was lost.
        """
        if self._file.closed:
            return
        try:
            with self._lock:
                self._commit_locked()
        finally:
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> Optional[bool]:
        self.close()
        return None

    def __repr__(self) -> str:
        return (f"WriteAheadLog({self.path!r}, base_seq={self.base_seq}, "
                f"last_seq={self.last_seq}, "
                f"pending={self._pending_records})")
