"""Offline scrub and repair for :class:`~repro.storage.pages.PageStore`.

A store that survived a crash — or a disk that flipped a bit — can be
in one of three states: **clean** (every invariant holds), **damaged
but consistent** (one catalog slot torn, a leftover temp file, an
orphaned span: the normal debris crash recovery is designed around),
or **corrupt** (a span's bytes no longer match the CRC the catalog
recorded, spans overlap, a span points past the file).  The scrubber
draws that line explicitly:

* :meth:`StoreScrubber.scrub` walks every check read-only and returns
  a :class:`ScrubReport` of :class:`Finding` records — it never
  modifies the file, never raises on damage it can describe.
* :meth:`StoreScrubber.repair` applies the *safe* subset of fixes:
  quarantine blobs whose bytes fail their CRC (the raw bytes are
  preserved next to the store for forensics, then the catalog entry is
  dropped in one atomic flip), refresh a torn catalog slot, remove
  leftover temp files.  Every intact blob keeps its exact bytes.

What repair can **not** fix — and deliberately refuses to guess at —
is a store whose *both* catalog slots are dead while data pages exist:
the catalog is the only map from names to spans, so nothing can
reconstruct which bytes belong to which blob.  That raises
:class:`~repro.errors.RecoveryError` (restore from the WAL or a
backup; see ``docs/durability.md``).

:func:`scrub_service` extends the same sweep over a
:class:`~repro.concurrent.service.ConcurrentDocument` directory: the
page store, the WAL's record chain, and the watermark/WAL seam
recovery depends on.
"""

from __future__ import annotations

import json
import os
import urllib.parse
import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CorruptionError, RecoveryError, StorageError
from repro.storage.pages import RESERVED_PAGES, TEMP_SUFFIXES, PageStore

#: sibling directory corrupt blob bytes are preserved in before their
#: catalog entries are dropped
QUARANTINE_SUFFIX = ".quarantine"


@dataclass
class Finding:
    """One scrub observation.

    ``kind`` is the check that tripped (``crc``, ``bounds``,
    ``overlap``, ``temp-file``, ``catalog-slot``, ``unopenable``,
    ``wal``, ``watermark``); ``severity`` is ``"error"`` for damage
    repair must act on, ``"warning"`` for debris recovery already
    tolerates, ``"fatal"`` for damage repair cannot fix.
    """

    kind: str
    severity: str
    detail: str
    blob: Optional[str] = None

    def to_dict(self) -> dict:
        return {"kind": self.kind, "severity": self.severity,
                "detail": self.detail, "blob": self.blob}


@dataclass
class ScrubReport:
    path: str
    findings: list[Finding] = field(default_factory=list)
    blobs_checked: int = 0
    bytes_checked: int = 0
    #: repair() only: what was done, one human-readable line per action
    actions: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity != "warning"]

    def add(self, kind: str, severity: str, detail: str,
            blob: Optional[str] = None) -> None:
        self.findings.append(Finding(kind, severity, detail, blob))

    def to_dict(self) -> dict:
        return {"path": self.path, "ok": self.ok,
                "blobs_checked": self.blobs_checked,
                "bytes_checked": self.bytes_checked,
                "findings": [f.to_dict() for f in self.findings],
                "actions": list(self.actions)}


class StoreScrubber:
    """Scrub/repair one ``.ltp`` page-store file."""

    def __init__(self, path: str):
        self.path = path

    # -- read-only sweep ----------------------------------------------
    def scrub(self) -> ScrubReport:
        """Every check; damage becomes findings, not raises.

        Blob bytes and catalog slots are never written.  Opening the
        store does perform the same open-time hygiene any open would
        (leftover temp files recorded here are removed by the open) —
        scrub on an already-clean store leaves it bit-identical.
        """
        report = ScrubReport(self.path)
        self._check_temp_files(report)
        try:
            store = PageStore(self.path)
        except CorruptionError as exc:
            report.add("unopenable", "fatal", str(exc))
            return report
        except StorageError as exc:
            report.add("unopenable", "error", str(exc))
            return report
        try:
            self._check_slots(store, report)
            self._check_spans(store, report)
        finally:
            store.close()
        return report

    # -- repair --------------------------------------------------------
    def repair(self) -> ScrubReport:
        """Apply the safe fixes; raise :class:`RecoveryError` when the
        store is past them.

        Order matters: quarantine before any catalog write, so a crash
        mid-repair loses no bytes — re-running repair is idempotent.
        """
        report = ScrubReport(self.path)
        self._check_temp_files(report)
        for finding in list(report.findings):
            if finding.kind == "temp-file":
                os.remove(finding.detail.split(": ", 1)[-1])
                report.actions.append(f"removed {finding.detail}")
        try:
            store = PageStore(self.path)
        except CorruptionError as exc:
            raise RecoveryError(
                f"{self.path!r} is unrepairable: both catalog slots are "
                f"dead, nothing maps names to spans — restore from the "
                f"WAL or a backup ({exc})") from exc
        try:
            self._check_slots(store, report)
            self._check_spans(store, report)
            corrupt = [f.blob for f in report.findings
                       if f.severity == "error" and f.blob is not None]
            if corrupt:
                self._quarantine(store, sorted(set(corrupt)), report)
            if any(f.kind == "catalog-slot" for f in report.findings):
                # two flips rewrite both slots from the good catalog
                store._write_header()
                store._write_header()
                report.actions.append("refreshed both catalog slots")
            store.flush()
        finally:
            store.close()
        return report

    # -- individual checks --------------------------------------------
    def _check_temp_files(self, report: ScrubReport) -> None:
        for suffix in TEMP_SUFFIXES + (".truncate",):
            leftover = self.path + suffix
            if os.path.exists(leftover):
                report.add("temp-file", "warning",
                           f"leftover temp file: {leftover}")

    def _check_slots(self, store: PageStore, report: ScrubReport) -> None:
        """Both catalog slots should decode; one torn slot is survivable
        (the store opened from the other) but leaves no shadow copy."""
        dead = 0
        for slot_page in (1, 2):
            if store._read_catalog_slot(slot_page, store.page_size) is None:
                dead += 1
        # _seq == 1 means only one header write ever happened (a young
        # store): the shadow slot is *expectedly* unused, not torn
        if dead == 1 and store._seq > 1:
            report.add("catalog-slot", "warning",
                       "one catalog slot is torn or stale-garbage; the "
                       "store runs without a fallback copy")

    def _check_spans(self, store: PageStore, report: ScrubReport) -> None:
        file_pages = os.path.getsize(store.path) // store.page_size
        busy: list[tuple[int, int, str]] = []
        for name in sorted(store._catalog):
            span = store._catalog[name]
            first, length = span[0], span[1]
            allocated = span[2] if len(span) > 2 else \
                store._pages_for(length)
            report.blobs_checked += 1
            if first < RESERVED_PAGES or first + allocated > file_pages \
                    or length > allocated * store.page_size:
                report.add("bounds", "error",
                           f"span [{first}, +{allocated}p, {length}B] "
                           f"escapes the {file_pages}-page file",
                           blob=name)
                continue
            busy.append((first, first + allocated, name))
            data = store._span_bytes(span)
            report.bytes_checked += len(data)
            if len(data) < length:
                report.add("bounds", "error",
                           f"short read: {len(data)} of {length} bytes",
                           blob=name)
            elif len(span) > 3 and zlib.crc32(data) != span[3]:
                report.add("crc", "error",
                           f"bytes do not match catalog CRC "
                           f"(expected 0x{span[3]:08x}, actual "
                           f"0x{zlib.crc32(data):08x})", blob=name)
        busy.sort()
        for (_, prev_end, prev_name), (start, _, name) in zip(busy,
                                                              busy[1:]):
            if start < prev_end:
                report.add("overlap", "error",
                           f"span of {name!r} overlaps span of "
                           f"{prev_name!r}", blob=name)

    def _quarantine(self, store: PageStore, names: list[str],
                    report: ScrubReport) -> None:
        qdir = self.path + QUARANTINE_SUFFIX
        os.makedirs(qdir, exist_ok=True)
        for name in names:
            span = store._catalog.get(name)
            if span is None:
                continue
            fname = urllib.parse.quote(name, safe="")
            target = os.path.join(qdir, fname)
            try:
                raw = store._span_bytes(span)
            except OSError:
                raw = b""
            with open(target, "wb") as handle:
                handle.write(raw)
            store.delete_blob(name)
            report.actions.append(
                f"quarantined {name!r} ({len(raw)} bytes) to {target}")


def scrub_store(path: str) -> ScrubReport:
    return StoreScrubber(path).scrub()


def repair_store(path: str) -> ScrubReport:
    return StoreScrubber(path).repair()


def scrub_service(directory: str) -> ScrubReport:
    """Scrub a service directory: page store + WAL + the seam between.

    Adds to the store sweep:

    * ``wal`` findings — the record chain must scan (magic, per-record
      checksum); a torn tail is a warning (recovery truncates it), a
      corrupt *interior* is fatal for replay.
    * ``watermark`` findings — the ``checkpoint_seq`` the meta blob
      records must not exceed the WAL's last sequence *when stale
      records remain*, and the first replayable record above it must
      be exactly ``checkpoint_seq + 1`` (a gap means lost committed
      ops — the condition :meth:`ConcurrentDocument.open` refuses).
    """
    from repro.concurrent.service import (PAGES_FILE, SERVICE_META_BLOB,
                                          WAL_FILE)
    from repro.storage.wal import WriteAheadLog

    pages_path = os.path.join(directory, PAGES_FILE)
    wal_path = os.path.join(directory, WAL_FILE)
    report = StoreScrubber(pages_path).scrub()
    report.path = directory

    checkpoint_seq = None
    if not any(f.kind == "unopenable" for f in report.findings):
        with PageStore(pages_path) as store:
            if store.has_blob(SERVICE_META_BLOB):
                try:
                    meta = json.loads(
                        store.get_blob(SERVICE_META_BLOB, verify=True))
                    checkpoint_seq = int(meta["checkpoint_seq"])
                except (CorruptionError, ValueError, KeyError) as exc:
                    report.add("watermark", "error",
                               f"service meta blob unreadable: {exc}",
                               blob=SERVICE_META_BLOB)
            else:
                report.add("watermark", "error",
                           f"store has no {SERVICE_META_BLOB!r} blob")

    if not os.path.exists(wal_path):
        report.add("wal", "error", f"missing WAL file: {wal_path}")
        return report
    try:
        wal = WriteAheadLog(wal_path, sync=False)
    except (CorruptionError, StorageError) as exc:
        report.add("wal", "fatal", f"WAL does not scan: {exc}")
        return report
    try:
        seqs = [seq for seq, _ in wal.replay()]
        if checkpoint_seq is not None:
            stale = [s for s in seqs if s <= checkpoint_seq]
            fresh = [s for s in seqs if s > checkpoint_seq]
            if stale and not fresh and stale[-1] < checkpoint_seq:
                report.add("watermark", "error",
                           f"watermark {checkpoint_seq} is above every "
                           f"WAL record (last {stale[-1]}) — the log "
                           f"was truncated past its checkpoint")
            if fresh and fresh[0] != checkpoint_seq + 1:
                report.add("watermark", "fatal",
                           f"gap above the watermark: first replayable "
                           f"record is {fresh[0]}, expected "
                           f"{checkpoint_seq + 1} — committed ops lost")
    finally:
        wal.close()
    return report
