"""Counted B+-tree with order statistics.

Paper §4.2 ("Virtual L-Tree"): *"If the leaf labels are maintained in a
B-tree whose internal nodes also maintain counts, such range queries can be
executed efficiently (in logarithmic time)."*  This module provides exactly
that structure, built from scratch:

* classic B+-tree layout — values only in leaves, leaves chained for range
  scans, separators in internal nodes;
* every internal node caches the number of keys in its subtree, enabling
  ``rank``, ``select`` and ``count_range`` in O(log n);
* node touches are counted through :class:`repro.core.stats.Counters`
  (``node_accesses``), since the paper measures cost in node accesses.

The tree stores unique, mutually comparable keys.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator, Optional

from repro.core.stats import NULL_COUNTERS, Counters
from repro.errors import DuplicateKey, InvariantViolation, KeyNotFound

_MIN_ORDER = 3


class _Node:
    """One B+-tree node; ``children is None`` marks a leaf."""

    __slots__ = ("keys", "children", "values", "next", "size")

    def __init__(self, leaf: bool):
        self.keys: list[Any] = []
        self.children: Optional[list["_Node"]] = None if leaf else []
        self.values: Optional[list[Any]] = [] if leaf else None
        self.next: Optional["_Node"] = None
        self.size = 0  # keys stored in this subtree

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class CountedBTree:
    """B+-tree over unique keys with O(log n) order statistics.

    Parameters
    ----------
    order:
        Maximum number of keys per node (>= 3).  A node splits when it
        exceeds ``order`` keys and underflows below ``order // 2``.
    stats:
        Counter sink; every node visit increments ``node_accesses``.

    Examples
    --------
    >>> tree = CountedBTree(order=4)
    >>> for key in [5, 1, 9, 3, 7]:
    ...     tree.insert(key, str(key))
    >>> tree.rank(7), tree.select(0), tree.count_range(2, 8)
    (3, 1, 3)
    """

    def __init__(self, order: int = 32, stats: Counters = NULL_COUNTERS):
        if order < _MIN_ORDER:
            raise ValueError(f"order must be >= {_MIN_ORDER}, got {order}")
        self.order = order
        self.stats = stats
        self._root: _Node = _Node(leaf=True)

    # ------------------------------------------------------------------
    # size / lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._root.size

    def __contains__(self, key: Any) -> bool:
        try:
            self.get(key)
        except KeyNotFound:
            return False
        return True

    def get(self, key: Any) -> Any:
        """Value stored under ``key``; raises :class:`KeyNotFound`."""
        node = self._root
        while not node.is_leaf:
            self.stats.node_accesses += 1
            assert node.children is not None
            node = node.children[bisect.bisect_right(node.keys, key)]
        self.stats.node_accesses += 1
        assert node.values is not None
        index = bisect.bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            return node.values[index]
        raise KeyNotFound(key)

    def min_key(self) -> Any:
        """Smallest key; raises :class:`KeyNotFound` on an empty tree."""
        if self._root.size == 0:
            raise KeyNotFound("tree is empty")
        node = self._root
        while not node.is_leaf:
            assert node.children is not None
            node = node.children[0]
        return node.keys[0]

    def max_key(self) -> Any:
        """Largest key; raises :class:`KeyNotFound` on an empty tree."""
        if self._root.size == 0:
            raise KeyNotFound("tree is empty")
        node = self._root
        while not node.is_leaf:
            assert node.children is not None
            node = node.children[-1]
        return node.keys[-1]

    # ------------------------------------------------------------------
    # order statistics (the §4.2 "counts")
    # ------------------------------------------------------------------
    def rank(self, key: Any) -> int:
        """Number of stored keys strictly smaller than ``key``."""
        node = self._root
        count = 0
        while not node.is_leaf:
            self.stats.node_accesses += 1
            assert node.children is not None
            index = bisect.bisect_left(node.keys, key)
            for child in node.children[:index]:
                count += child.size
            node = node.children[index]
        self.stats.node_accesses += 1
        return count + bisect.bisect_left(node.keys, key)

    def select(self, index: int) -> Any:
        """The ``index``-th smallest key (0-based)."""
        if not 0 <= index < self._root.size:
            raise IndexError(
                f"select({index}) out of range 0..{self._root.size - 1}")
        node = self._root
        while not node.is_leaf:
            self.stats.node_accesses += 1
            assert node.children is not None
            for child in node.children:
                if index < child.size:
                    node = child
                    break
                index -= child.size
        self.stats.node_accesses += 1
        return node.keys[index]

    def count_range(self, low: Any, high: Any) -> int:
        """Number of keys in the half-open interval ``[low, high)``.

        Two rank computations: O(log n) — the §4.2 split-criterion check.
        """
        if high <= low:
            return 0
        return self.rank(high) - self.rank(low)

    def predecessor(self, key: Any) -> Any:
        """Largest stored key strictly smaller than ``key``."""
        position = self.rank(key)
        if position == 0:
            raise KeyNotFound(f"no key below {key!r}")
        return self.select(position - 1)

    def successor(self, key: Any) -> Any:
        """Smallest stored key strictly greater than ``key``."""
        position = self.rank(key)
        if position < len(self) and self.select(position) == key:
            position += 1
        if position >= len(self):
            raise KeyNotFound(f"no key above {key!r}")
        return self.select(position)

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[Any, Any]]:
        """All (key, value) pairs in key order (leaf chain walk)."""
        node = self._root
        while not node.is_leaf:
            assert node.children is not None
            node = node.children[0]
        current: Optional[_Node] = node
        while current is not None:
            self.stats.node_accesses += 1
            assert current.values is not None
            yield from zip(current.keys, current.values)
            current = current.next

    def keys(self) -> Iterator[Any]:
        """All keys in order."""
        return (key for key, _ in self.items())

    def iter_range(self, low: Any, high: Any,
                   stats: Optional[Counters] = None
                   ) -> Iterator[tuple[Any, Any]]:
        """(key, value) pairs with ``low <= key < high`` in key order.

        Node touches are charged to ``stats`` when given, else to the
        tree's own counters — so a pre-built index probed on behalf of
        another query can bill the *prober*, not its builder.
        """
        if high <= low:
            return
        if stats is None:
            stats = self.stats
        node = self._root
        while not node.is_leaf:
            stats.node_accesses += 1
            assert node.children is not None
            node = node.children[bisect.bisect_right(node.keys, low)]
        current: Optional[_Node] = node
        start = bisect.bisect_left(node.keys, low)
        while current is not None:
            stats.node_accesses += 1
            assert current.values is not None
            for index in range(start, len(current.keys)):
                if current.keys[index] >= high:
                    return
                yield current.keys[index], current.values[index]
            start = 0
            current = current.next

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        """Insert a new unique key; raises :class:`DuplicateKey`."""
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Node(leaf=False)
            assert new_root.children is not None
            new_root.keys.append(separator)
            new_root.children.extend([self._root, right])
            new_root.size = self._root.size + right.size
            self._root = new_root

    def _insert(self, node: _Node, key: Any, value: Any
                ) -> Optional[tuple[Any, _Node]]:
        """Recursive insert; returns (separator, new right node) on split."""
        self.stats.node_accesses += 1
        if node.is_leaf:
            assert node.values is not None
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                raise DuplicateKey(key)
            node.keys.insert(index, key)
            node.values.insert(index, value)
            node.size += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        assert node.children is not None
        child_index = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[child_index], key, value)
        node.size += 1
        if split is not None:
            separator, right = split
            node.keys.insert(child_index, separator)
            node.children.insert(child_index + 1, right)
            if len(node.keys) > self.order:
                return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node) -> tuple[Any, _Node]:
        middle = len(node.keys) // 2
        right = _Node(leaf=True)
        assert node.values is not None and right.values is not None
        right.keys = node.keys[middle:]
        right.values = node.values[middle:]
        node.keys = node.keys[:middle]
        node.values = node.values[:middle]
        right.next = node.next
        node.next = right
        node.size = len(node.keys)
        right.size = len(right.keys)
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> tuple[Any, _Node]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Node(leaf=False)
        assert node.children is not None and right.children is not None
        right.keys = node.keys[middle + 1:]
        right.children = node.children[middle + 1:]
        node.keys = node.keys[:middle]
        node.children = node.children[:middle + 1]
        node.size = sum(child.size for child in node.children)
        right.size = sum(child.size for child in right.children)
        return separator, right

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def delete(self, key: Any) -> Any:
        """Remove ``key`` and return its value; raises KeyNotFound."""
        value = self._delete(self._root, key)
        root = self._root
        if not root.is_leaf:
            assert root.children is not None
            if len(root.children) == 1:
                self._root = root.children[0]
        return value

    def _delete(self, node: _Node, key: Any) -> Any:
        self.stats.node_accesses += 1
        if node.is_leaf:
            assert node.values is not None
            index = bisect.bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                raise KeyNotFound(key)
            node.keys.pop(index)
            value = node.values.pop(index)
            node.size -= 1
            return value
        assert node.children is not None
        child_index = bisect.bisect_right(node.keys, key)
        child = node.children[child_index]
        value = self._delete(child, key)
        node.size -= 1
        if self._underfull(child):
            self._rebalance(node, child_index)
        return value

    def _underfull(self, node: _Node) -> bool:
        minimum = self.order // 2
        if node.is_leaf:
            return len(node.keys) < minimum
        assert node.children is not None
        return len(node.children) < minimum

    def _rebalance(self, parent: _Node, index: int) -> None:
        """Fix an underfull child by borrowing from or merging a sibling."""
        assert parent.children is not None
        child = parent.children[index]
        left = parent.children[index - 1] if index > 0 else None
        right = (parent.children[index + 1]
                 if index + 1 < len(parent.children) else None)
        if left is not None and not self._would_underflow(left):
            self._borrow_from_left(parent, index)
        elif right is not None and not self._would_underflow(right):
            self._borrow_from_right(parent, index)
        elif left is not None:
            self._merge(parent, index - 1)
        elif right is not None:
            self._merge(parent, index)
        else:
            # Root with a single child: handled by delete().
            assert child is self._root or parent is self._root

    def _would_underflow(self, node: _Node) -> bool:
        minimum = self.order // 2
        if node.is_leaf:
            return len(node.keys) - 1 < minimum
        assert node.children is not None
        return len(node.children) - 1 < minimum

    def _borrow_from_left(self, parent: _Node, index: int) -> None:
        assert parent.children is not None
        left = parent.children[index - 1]
        child = parent.children[index]
        self.stats.node_accesses += 2
        if child.is_leaf:
            assert left.values is not None and child.values is not None
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[index - 1] = child.keys[0]
        else:
            assert left.children is not None and child.children is not None
            moved = left.children.pop()
            child.children.insert(0, moved)
            child.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            left.size -= moved.size
            child.size += moved.size
            return
        left.size -= 1
        child.size += 1

    def _borrow_from_right(self, parent: _Node, index: int) -> None:
        assert parent.children is not None
        child = parent.children[index]
        right = parent.children[index + 1]
        self.stats.node_accesses += 2
        if child.is_leaf:
            assert right.values is not None and child.values is not None
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[index] = right.keys[0]
        else:
            assert right.children is not None and child.children is not None
            moved = right.children.pop(0)
            child.children.append(moved)
            child.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
            right.size -= moved.size
            child.size += moved.size
            return
        right.size -= 1
        child.size += 1

    def _merge(self, parent: _Node, index: int) -> None:
        """Merge children ``index`` and ``index + 1`` of ``parent``."""
        assert parent.children is not None
        left = parent.children[index]
        right = parent.children[index + 1]
        self.stats.node_accesses += 2
        if left.is_leaf:
            assert left.values is not None and right.values is not None
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
        else:
            assert left.children is not None and right.children is not None
            left.keys.append(parent.keys[index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        left.size += right.size
        parent.keys.pop(index)
        parent.children.pop(index + 1)

    def delete_range(self, low: Any, high: Any) -> list[tuple[Any, Any]]:
        """Remove every key in ``[low, high)``; return the removed pairs.

        O(k log n) — used by the virtual L-Tree to clear a label range
        before rewriting it.
        """
        victims = list(self.iter_range(low, high))
        for key, _ in victims:
            self.delete(key)
        return victims

    # ------------------------------------------------------------------
    # bulk loading
    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[tuple[Any, Any]]) -> None:
        """Replace the contents with pre-sorted unique (key, value) pairs.

        Builds leaves at ~2/3 fill then stacks internal levels — O(n).
        """
        pairs = list(items)
        for (first, _), (second, _) in zip(pairs, pairs[1:]):
            if first >= second:
                raise ValueError(
                    "bulk_load requires strictly increasing keys "
                    f"({first!r} >= {second!r})")
        self._root = _Node(leaf=True)
        if not pairs:
            return
        leaves: list[_Node] = []
        for start, stop in self._bulk_chunks(len(pairs)):
            leaf = _Node(leaf=True)
            assert leaf.values is not None
            chunk = pairs[start:stop]
            leaf.keys = [key for key, _ in chunk]
            leaf.values = [value for _, value in chunk]
            leaf.size = len(chunk)
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)
        level: list[_Node] = leaves
        while len(level) > 1:
            parents: list[_Node] = []
            for start, stop in self._bulk_chunks(len(level)):
                group = level[start:stop]
                parent = _Node(leaf=False)
                assert parent.children is not None
                parent.children.extend(group)
                parent.keys = [self._smallest_key(child)
                               for child in group[1:]]
                parent.size = sum(child.size for child in group)
                parents.append(parent)
            level = parents
        self._root = level[0]

    def _bulk_chunks(self, total: int) -> list[tuple[int, int]]:
        """Split ``total`` entries into runs of ~2/3 fill, none underfull.

        Every chunk has between ``order // 2`` and ``order`` entries —
        except a lone chunk smaller than the minimum, which can only be
        the root.  A short trailing remainder is merged with its
        predecessor when the pair fits one node, or the pair is split
        evenly otherwise (both halves then clear the minimum).
        """
        fill = max(2, (2 * self.order) // 3)
        minimum = self.order // 2
        bounds = list(range(0, total, fill)) + [total]
        chunks = [(bounds[i], bounds[i + 1])
                  for i in range(len(bounds) - 1)]
        if len(chunks) > 1 and chunks[-1][1] - chunks[-1][0] < minimum:
            (prev_start, _), (_, last_stop) = chunks[-2], chunks[-1]
            combined = last_stop - prev_start
            if combined <= self.order:
                chunks[-2:] = [(prev_start, last_stop)]
            else:
                middle = prev_start + combined // 2
                chunks[-2:] = [(prev_start, middle), (middle, last_stop)]
        return chunks

    @staticmethod
    def _smallest_key(node: _Node) -> Any:
        while not node.is_leaf:
            assert node.children is not None
            node = node.children[0]
        return node.keys[0]

    # ------------------------------------------------------------------
    # validation (tests only)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check B+-tree invariants; raise :class:`InvariantViolation`."""
        self._validate_node(self._root, None, None, is_root=True)
        flat = [key for key, _ in self.items()]
        for left, right in zip(flat, flat[1:]):
            if left >= right:
                raise InvariantViolation(
                    f"leaf chain out of order: {left!r} >= {right!r}")
        if len(flat) != self._root.size:
            raise InvariantViolation(
                f"root size {self._root.size} != actual {len(flat)}")

    def _validate_node(self, node: _Node, low: Any, high: Any,
                       is_root: bool) -> int:
        if node.is_leaf:
            assert node.values is not None
            if len(node.keys) != len(node.values):
                raise InvariantViolation("leaf keys/values length mismatch")
            if not is_root and len(node.keys) < self.order // 2:
                raise InvariantViolation(
                    f"underfull leaf: {len(node.keys)} < {self.order // 2}")
            for key in node.keys:
                if low is not None and key < low:
                    raise InvariantViolation(f"key {key!r} below {low!r}")
                if high is not None and key >= high:
                    raise InvariantViolation(f"key {key!r} >= {high!r}")
            if node.size != len(node.keys):
                raise InvariantViolation("leaf size cache wrong")
            return len(node.keys)
        assert node.children is not None
        if len(node.keys) != len(node.children) - 1:
            raise InvariantViolation("internal key/child count mismatch")
        if not is_root and len(node.children) < self.order // 2:
            raise InvariantViolation("underfull internal node")
        if len(node.keys) > self.order:
            raise InvariantViolation("overfull internal node")
        total = 0
        for index, child in enumerate(node.children):
            child_low = node.keys[index - 1] if index > 0 else low
            child_high = (node.keys[index]
                          if index < len(node.keys) else high)
            total += self._validate_node(child, child_low, child_high,
                                         is_root=False)
        if total != node.size:
            raise InvariantViolation(
                f"size cache {node.size} != subtree total {total}")
        return total
