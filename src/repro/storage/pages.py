"""Page-backed store: a fixed-size-page file with a buffer pool.

This is the *actual disk substrate* the cost model of
:mod:`repro.storage.pager` only prices.  A :class:`PageStore` is one file
of fixed-size pages:

* page 0 is the header — magic, format version, page size, page count,
  and a JSON catalog mapping blob names to (first page, byte length,
  allocated pages) spans;
* every other page is raw data, reached either through a tiny LRU
  buffer pool (:meth:`read_page`) or through an mmap fast path that
  copies straight out of the OS page cache (:meth:`get_blob` with
  ``prefer_mmap=True``).

On top of the page layer sits a minimal named-blob interface
(:meth:`put_blob` / :meth:`get_blob`): a blob occupies a contiguous run
of pages, which is exactly the shape :meth:`repro.core.compact.CompactLTree.to_bytes`
wants — the engine's int64 columns land page-aligned on disk and come
back with one bulk copy per column.  Rewriting a blob reuses its span
while the new bytes fit the span's allocated pages (shrinking never
gives pages up); only growth beyond the allocation appends a fresh span
and leaves the old pages behind (a `vacuum` is future work — spans are
small and growth rare in this library's save/reopen workload).

The pool counts hits and misses (:attr:`pool_hits` / :attr:`pool_misses`)
so experiments can check the :class:`repro.storage.pager.PageModel`
``cache_hit_rate`` they assume against what a real pool delivers.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
from collections import OrderedDict
from typing import Iterator, Optional

from repro.errors import StorageError

#: magic prefix of a page file (page 0, bytes 0..8)
PAGE_MAGIC = b"LTPAGES\x00"
#: page-file format version (bump on layout changes)
PAGE_FORMAT_VERSION = 1

#: fixed part of the header page: magic, version, page_size, page_count,
#: catalog byte length
_HEADER = struct.Struct("<8sIIQI")

DEFAULT_PAGE_SIZE = 4096
DEFAULT_POOL_PAGES = 16


class PageStore:
    """A file of fixed-size pages with an LRU buffer pool.

    Parameters
    ----------
    path:
        File to open; created (with a fresh header) when missing or
        empty.
    page_size:
        Page size in bytes for a *new* file (``None`` means
        ``DEFAULT_PAGE_SIZE``).  An existing file is always read with
        its header's page size; passing an explicit value that
        disagrees with the header raises :class:`StorageError`.
    pool_pages:
        Capacity of the LRU buffer pool, in pages.

    Examples
    --------
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "doc.ltp")
    >>> with PageStore(path) as store:
    ...     store.put_blob("greeting", b"hello pages")
    >>> with PageStore(path) as store:
    ...     bytes(store.get_blob("greeting"))
    b'hello pages'
    """

    def __init__(self, path: str, page_size: Optional[int] = None,
                 pool_pages: int = DEFAULT_POOL_PAGES):
        if page_size is not None and page_size < _HEADER.size + 2:
            raise StorageError(
                f"page_size {page_size} cannot hold the file header")
        if pool_pages < 1:
            raise StorageError("pool_pages must be >= 1")
        self.path = os.fspath(path)
        self.pool_pages = pool_pages
        self._pool: OrderedDict[int, bytes] = OrderedDict()
        self.pool_hits = 0
        self.pool_misses = 0
        self._map: Optional[mmap.mmap] = None
        self._map_length = 0
        #: superseded maps still pinned by exported memoryviews
        self._retired_maps: list[mmap.mmap] = []
        exists = os.path.exists(self.path) and \
            os.path.getsize(self.path) > 0
        self._file = open(self.path, "r+b" if exists else "w+b")
        try:
            if exists:
                self.page_size, self.page_count, self._catalog = \
                    self._read_header()
                if page_size is not None and \
                        page_size != self.page_size:
                    raise StorageError(
                        f"file {self.path!r} has {self.page_size}-byte "
                        f"pages; cannot reopen with page_size="
                        f"{page_size}")
            else:
                self.page_size = page_size if page_size is not None \
                    else DEFAULT_PAGE_SIZE
                self.page_count = 1
                self._catalog: dict[str, list[int]] = {}
                self._file.write(b"\x00" * self.page_size)
                self._write_header()
        except BaseException:
            self._file.close()
            raise

    # ------------------------------------------------------------------
    # header page
    # ------------------------------------------------------------------
    def _read_header(self) -> tuple[int, int, dict[str, list[int]]]:
        self._file.seek(0)
        raw = self._file.read(_HEADER.size)
        if len(raw) < _HEADER.size:
            raise StorageError(f"{self.path!r}: truncated header page")
        magic, version, page_size, page_count, catalog_len = \
            _HEADER.unpack(raw)
        if magic != PAGE_MAGIC:
            raise StorageError(
                f"{self.path!r}: bad magic {magic!r}; not a page file")
        if version != PAGE_FORMAT_VERSION:
            raise StorageError(
                f"{self.path!r}: unsupported page-file version {version} "
                f"(supported: {PAGE_FORMAT_VERSION})")
        catalog_raw = self._file.read(catalog_len)
        if len(catalog_raw) < catalog_len:
            raise StorageError(f"{self.path!r}: truncated catalog")
        catalog = json.loads(catalog_raw.decode("utf-8")) \
            if catalog_len else {}
        return page_size, page_count, catalog

    def _write_header(self, catalog_raw: Optional[bytes] = None) -> None:
        if catalog_raw is None:
            catalog_raw = json.dumps(self._catalog).encode("utf-8")
        header = _HEADER.pack(PAGE_MAGIC, PAGE_FORMAT_VERSION,
                              self.page_size, self.page_count,
                              len(catalog_raw))
        if len(header) + len(catalog_raw) > self.page_size:
            raise StorageError(
                f"catalog of {len(self._catalog)} blobs overflows the "
                f"{self.page_size}-byte header page")
        page = header + catalog_raw
        self._file.seek(0)
        self._file.write(page + b"\x00" * (self.page_size - len(page)))
        self._pool.pop(0, None)

    # ------------------------------------------------------------------
    # page layer
    # ------------------------------------------------------------------
    def allocate_pages(self, count: int) -> int:
        """Append ``count`` zeroed pages; return the first new page id."""
        if count < 1:
            raise StorageError("must allocate at least one page")
        first = self.page_count
        self._file.seek(first * self.page_size)
        self._file.write(b"\x00" * (count * self.page_size))
        self.page_count += count
        return first

    def read_page(self, page_id: int) -> bytes:
        """One page through the buffer pool (LRU, counted)."""
        self._check_page(page_id)
        cached = self._pool.get(page_id)
        if cached is not None:
            self._pool.move_to_end(page_id)
            self.pool_hits += 1
            return cached
        self.pool_misses += 1
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) < self.page_size:
            data = data + b"\x00" * (self.page_size - len(data))
        self._pool[page_id] = data
        while len(self._pool) > self.pool_pages:
            self._pool.popitem(last=False)
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        """Write one page (write-through: file and pool stay in sync)."""
        self._check_page(page_id)
        if len(data) > self.page_size:
            raise StorageError(
                f"{len(data)} bytes exceed the {self.page_size}-byte page")
        if page_id == 0:
            raise StorageError("page 0 is the header; use put_blob")
        padded = data + b"\x00" * (self.page_size - len(data))
        self._file.seek(page_id * self.page_size)
        self._file.write(padded)
        if page_id in self._pool:
            self._pool[page_id] = padded
            self._pool.move_to_end(page_id)

    def _check_page(self, page_id: int) -> None:
        if not 0 <= page_id < self.page_count:
            raise StorageError(
                f"page {page_id} outside file of {self.page_count} pages")

    def _pages_for(self, length: int) -> int:
        return max(1, -(-length // self.page_size))

    # ------------------------------------------------------------------
    # blob layer
    # ------------------------------------------------------------------
    def put_blob(self, name: str, data: bytes) -> None:
        """Store ``data`` under ``name`` across a contiguous page span.

        Reuses the existing span when the new bytes still fit in it;
        otherwise appends a fresh span and repoints the catalog.  A
        catalog that would overflow the header page is rejected *before*
        anything is written, so a failed put leaves the store exactly as
        it was.
        """
        data = bytes(data)
        needed = self._pages_for(len(data))
        span = self._catalog.get(name)
        # reuse is judged by the span's *allocated* pages, not the
        # current byte length, so shrink-then-regrow stays in place
        grow = span is None or needed > span[2]
        first = self.page_count if grow else span[0]
        allocated = needed if grow else span[2]
        candidate = dict(self._catalog)
        candidate[name] = [first, len(data), allocated]
        catalog_raw = json.dumps(candidate).encode("utf-8")
        if _HEADER.size + len(catalog_raw) > self.page_size:
            raise StorageError(
                f"catalog of {len(candidate)} blobs overflows the "
                f"{self.page_size}-byte header page")
        # data + tail padding covers the whole span, so a grown span is
        # written once, directly — no allocate_pages zero-fill first
        self._file.seek(first * self.page_size)
        padding = needed * self.page_size - len(data)
        self._file.write(data + b"\x00" * padding)
        if grow:
            self.page_count += needed
        for page_id in range(first, first + needed):
            self._pool.pop(page_id, None)
        self._catalog = candidate
        self._write_header(catalog_raw)
        self.flush()

    def get_blob(self, name: str, prefer_mmap: bool = False) -> bytes:
        """Fetch blob ``name``.

        ``prefer_mmap=True`` returns a read-only ``memoryview`` over an
        mmap of the file — zero intermediate copies.  The view stays
        *readable* until :meth:`close`, but it aliases the file: a later
        :meth:`put_blob` that rewrites the same span shows through it.
        Consume (parse or copy) the view before writing the blob again;
        the default path returns an independent ``bytes`` assembled page
        by page through the buffer pool.
        """
        span = self._catalog.get(name)
        if span is None:
            raise KeyError(f"no blob named {name!r} in {self.path!r}")
        first, length = span[0], span[1]
        if prefer_mmap and length > 0:
            start = first * self.page_size
            return memoryview(self._mmap_file())[start:start + length]
        pieces = []
        remaining = length
        for page_id in range(first, first + self._pages_for(length)):
            page = self.read_page(page_id)
            pieces.append(page[:remaining] if remaining < self.page_size
                          else page)
            remaining -= self.page_size
        return b"".join(pieces)

    def _mmap_file(self) -> mmap.mmap:
        """The shared read-only mmap, remapped when the file has grown.

        One mapping serves every ``prefer_mmap`` read; a superseded
        mapping whose memoryviews are still exported is parked until
        :meth:`close` rather than leaked per call.
        """
        self.flush()
        size = os.fstat(self._file.fileno()).st_size
        # mmap.size() is the *file* size, not the mapped length, so the
        # length at map time is tracked separately
        if self._map is None or self._map_length < size:
            old = self._map
            self._map = mmap.mmap(self._file.fileno(), 0,
                                  access=mmap.ACCESS_READ)
            self._map_length = size
            if old is not None:
                try:
                    old.close()
                except BufferError:  # a view of it is still exported
                    self._retired_maps.append(old)
        return self._map

    def has_blob(self, name: str) -> bool:
        """Whether the catalog holds ``name``."""
        return name in self._catalog

    def blobs(self) -> Iterator[str]:
        """Names in the catalog, in insertion order."""
        return iter(self._catalog)

    def blob_length(self, name: str) -> int:
        """Byte length of blob ``name``."""
        span = self._catalog.get(name)
        if span is None:
            raise KeyError(f"no blob named {name!r} in {self.path!r}")
        return span[1]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Push buffered writes to the OS."""
        self._file.flush()

    def close(self) -> None:
        """Flush and release the file and any mmaps.

        Exported memoryviews from :meth:`get_blob` must be released by
        then; live exports keep their mmap open (never the file lock).
        """
        if self._file.closed:
            return
        self.flush()
        for mapped in self._retired_maps + \
                ([self._map] if self._map is not None else []):
            try:
                mapped.close()
            except BufferError:  # a memoryview is still exported
                pass
        self._retired_maps.clear()
        self._map = None
        self._pool.clear()
        self._file.close()

    def __enter__(self) -> "PageStore":
        return self

    def __exit__(self, *exc_info: object) -> Optional[bool]:
        self.close()
        return None

    def __repr__(self) -> str:
        return (f"PageStore({self.path!r}, pages={self.page_count}, "
                f"page_size={self.page_size}, "
                f"blobs={len(self._catalog)})")
