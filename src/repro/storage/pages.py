"""Page-backed store: a fixed-size-page file with a buffer pool.

This is the *actual disk substrate* the cost model of
:mod:`repro.storage.pager` only prices.  A :class:`PageStore` is one file
of fixed-size pages:

* page 0 is the immutable **superblock** — magic, format version, page
  size — written once at creation and never rewritten, so no later crash
  can tear it;
* pages 1 and 2 are the two alternating **catalog slots**.  Every
  catalog update (page count plus the JSON catalog mapping blob names to
  (first page, byte length, allocated pages) spans) is written whole to
  the slot the *previous* update did not use, stamped with a sequence
  number and a CRC.  Opening reads both slots and adopts the valid one
  with the highest sequence number, so a write torn by a crash (or a
  truncated file) simply falls back to the previous catalog — the flip
  is atomic at the granularity of "which slot validates".  By default
  writes are only flushed to the OS, so this guarantee covers *process*
  crashes; against power loss the OS may reorder the flip ahead of its
  data pages.  Open with ``sync=True`` to put an ``fsync`` barrier on
  each side of the slot write, extending the ordering (data pages
  durable before the catalog points at them) to whole-machine crashes
  at the usual fsync cost per catalog flip;
* every other page is raw data, reached either through a tiny LRU
  buffer pool (:meth:`read_page`) or through an mmap fast path that
  copies straight out of the OS page cache (:meth:`get_blob` with
  ``prefer_mmap=True``).

On top of the page layer sits a minimal named-blob interface
(:meth:`put_blob` / :meth:`get_blob`): a blob occupies a contiguous run
of pages, which is exactly the shape :meth:`repro.core.compact.CompactLTree.to_bytes`
wants — the engine's int64 columns land page-aligned on disk and come
back with one bulk copy per column.  Rewriting a blob reuses its span
while the new bytes fit the span's allocated pages (shrinking never
gives pages up); only growth beyond the allocation appends a fresh span
and leaves the old pages behind until :meth:`vacuum` slides every live
span down and truncates the file.  Data pages always land *before* the
catalog flip, so a crash mid-``put_blob`` loses only that put; the one
non-atomic window left is an in-place rewrite of an existing span
(same name, same size class), which can tear the blob's *contents* —
the catalog itself survives any crash.

Files written by the version-1 layout (one mutable header page, data
from page 1) are still accepted: opening one rewrites it in the
version-2 layout via a sibling temp file and an atomic rename, so the
upgrade itself cannot corrupt the original.

The pool counts hits and misses (:attr:`pool_hits` / :attr:`pool_misses`)
so experiments can check the :class:`repro.storage.pager.PageModel`
``cache_hit_rate`` they assume against what a real pool delivers.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import time
import zlib
from collections import OrderedDict
from typing import Iterable, Iterator, Optional

from repro.errors import CorruptionError, StorageError
from repro.obs import METRICS, TRACER
from repro.storage.faults import FAILPOINTS, failpoint, fsync_file

#: magic prefix of a page file (page 0, bytes 0..8)
PAGE_MAGIC = b"LTPAGES\x00"
#: page-file format version (bump on layout changes); version 2 added
#: the crash-consistent superblock + double-slot catalog layout.
#: Version-1 files are upgraded in place on open (see
#: :meth:`PageStore._upgrade_from_v1`).
PAGE_FORMAT_VERSION = 2

#: the immutable superblock (page 0): magic, version, page_size
_SUPERBLOCK = struct.Struct("<8sII")

#: the legacy version-1 header (page 0, mutable): magic, version,
#: page_size, page_count, catalog byte length — catalog JSON follows
#: inline; data pages started at page 1
_V1_HEADER = struct.Struct("<8sIIQI")

#: fixed part of a catalog slot (pages 1 and 2): page_count, sequence
#: number, catalog byte length, CRC32 of the slot minus this field
_CATALOG_HEADER = struct.Struct("<QQII")

#: pages reserved at the front of the file (superblock + two slots)
RESERVED_PAGES = 3


def _serialize_catalog(catalog: dict, page_size: int) -> bytes:
    """Serialize ``catalog`` so it fits one header page.

    Spans carry a per-span CRC32 as their fourth element.  On stores
    with tiny pages that element can push the catalog past the single
    header page, so before giving up the CRCs are dropped (restoring
    the pre-CRC 3-element span layout).  Integrity checking is a layer
    on top of the format, never the reason a store refuses a write
    that used to fit.
    """
    raw = json.dumps(catalog, separators=(",", ":")).encode("utf-8")
    if _CATALOG_HEADER.size + len(raw) <= page_size:
        return raw
    bare = {name: list(span[:3]) for name, span in catalog.items()}
    raw = json.dumps(bare, separators=(",", ":")).encode("utf-8")
    if _CATALOG_HEADER.size + len(raw) <= page_size:
        return raw
    raise StorageError(
        f"catalog of {len(catalog)} blobs overflows the "
        f"{page_size}-byte header page")

DEFAULT_PAGE_SIZE = 4096
DEFAULT_POOL_PAGES = 16

#: sibling temp-file suffixes this store's temp+rename recipes use; a
#: leftover (from a crash between temp write and rename) is removed on
#: open — the original file is always the authoritative one
TEMP_SUFFIXES = (".vacuum", ".upgrade")

# the enumerable crash surface of this module (see repro.storage.faults)
FAILPOINTS.declare("pagestore:create:post-superblock",
                   "superblock written, no catalog slot yet")
FAILPOINTS.declare("pagestore:catalog:pre-write",
                   "data flushed, shadow catalog slot not yet written")
FAILPOINTS.declare("pagestore:catalog:torn-write",
                   "tearable write of the shadow catalog slot")
FAILPOINTS.declare("pagestore:catalog:post-write",
                   "shadow slot written, sequence not yet adopted")
FAILPOINTS.declare("pagestore:put:pre-data",
                   "batch planned, no span bytes written")
FAILPOINTS.declare("pagestore:put:mid-data",
                   "between two span writes of one batch")
FAILPOINTS.declare("pagestore:put:torn-span",
                   "tearable write of one blob span")
FAILPOINTS.declare("pagestore:put:post-data",
                   "all spans written, catalog flip not yet issued")
FAILPOINTS.declare("pagestore:delete:pre-flip",
                   "delete decided, catalog flip not yet issued")
FAILPOINTS.declare("pagestore:vacuum:pre-build",
                   "live blobs read, replacement file not yet built")
FAILPOINTS.declare("pagestore:vacuum:pre-replace",
                   "replacement complete, rename not yet issued")
FAILPOINTS.declare("pagestore:vacuum:post-replace",
                   "rename done, store not yet reopened")
FAILPOINTS.declare("pagestore:upgrade:pre-replace",
                   "v2 rebuild complete, rename not yet issued")
FAILPOINTS.declare("pagestore:upgrade:post-replace",
                   "rename done, upgraded store not yet reopened")


class PageStore:
    """A file of fixed-size pages with an LRU buffer pool.

    Parameters
    ----------
    path:
        File to open; created (with a fresh header) when missing or
        empty.
    page_size:
        Page size in bytes for a *new* file (``None`` means
        ``DEFAULT_PAGE_SIZE``).  An existing file is always read with
        its header's page size; passing an explicit value that
        disagrees with the header raises :class:`StorageError`.
    pool_pages:
        Capacity of the LRU buffer pool, in pages.
    sync:
        ``True`` brackets every catalog flip with ``os.fsync`` barriers
        so the crash-consistency ordering holds across power loss, not
        just process crashes (see the module docstring).  Off by
        default: the save/reopen workload this library benchmarks is
        process-crash-consistent without paying an fsync per flip.

    Examples
    --------
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "doc.ltp")
    >>> with PageStore(path) as store:
    ...     store.put_blob("greeting", b"hello pages")
    >>> with PageStore(path) as store:
    ...     bytes(store.get_blob("greeting"))
    b'hello pages'
    """

    def __init__(self, path: str, page_size: Optional[int] = None,
                 pool_pages: int = DEFAULT_POOL_PAGES,
                 sync: bool = False):
        if page_size is not None and \
                page_size < _CATALOG_HEADER.size + 2:
            raise StorageError(
                f"page_size {page_size} cannot hold the file header")
        if pool_pages < 1:
            raise StorageError("pool_pages must be >= 1")
        self.path = os.fspath(path)
        self.pool_pages = pool_pages
        self.sync = bool(sync)
        self._pool: OrderedDict[int, bytes] = OrderedDict()
        self.pool_hits = 0
        self.pool_misses = 0
        self._map: Optional[mmap.mmap] = None
        self._map_length = 0
        #: superseded maps still pinned by exported memoryviews
        self._retired_maps: list[mmap.mmap] = []
        for suffix in TEMP_SUFFIXES:
            # leftover of a temp+rename recipe that crashed before its
            # rename: this file is authoritative, the temp is garbage a
            # retry would recreate anyway — drop it so no later scan,
            # scrub or human trips over it
            leftover = self.path + suffix
            if os.path.exists(leftover):
                os.unlink(leftover)
        exists = os.path.exists(self.path) and \
            os.path.getsize(self.path) > 0
        self._file = open(self.path, "r+b" if exists else "w+b")
        try:
            if exists:
                if self._peek_version() == 1:
                    self._upgrade_from_v1()
                (self.page_size, self.page_count, self._seq,
                 self._catalog) = self._read_header()
                if page_size is not None and \
                        page_size != self.page_size:
                    raise StorageError(
                        f"file {self.path!r} has {self.page_size}-byte "
                        f"pages; cannot reopen with page_size="
                        f"{page_size}")
            else:
                self.page_size = page_size if page_size is not None \
                    else DEFAULT_PAGE_SIZE
                self.page_count = RESERVED_PAGES
                self._seq = 0
                self._catalog: dict[str, list[int]] = {}
                superblock = _SUPERBLOCK.pack(
                    PAGE_MAGIC, PAGE_FORMAT_VERSION, self.page_size)
                self._file.write(
                    superblock +
                    b"\x00" * (RESERVED_PAGES * self.page_size -
                               len(superblock)))
                failpoint("pagestore:create:post-superblock",
                          store=self)
                self._write_header()
        except BaseException:
            # a fault action may already have severed the descriptor
            # (torn-write kills the raw fd); close-for-cleanup must not
            # mask the original exception with EBADF
            try:
                self._file.close()
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # header pages (superblock + alternating catalog slots)
    # ------------------------------------------------------------------
    def _peek_version(self) -> int:
        """Magic-check the file and return its format version.

        Both layouts open with the same ``(magic, version, page_size)``
        prefix, so the version can be read before deciding how to parse
        the rest of the header.
        """
        self._file.seek(0)
        raw = self._file.read(_SUPERBLOCK.size)
        if len(raw) < _SUPERBLOCK.size:
            raise CorruptionError(f"{self.path!r}: truncated superblock")
        magic, version, _ = _SUPERBLOCK.unpack(raw)
        if magic != PAGE_MAGIC:
            raise CorruptionError(
                f"{self.path!r}: bad magic {magic!r}; not a page file")
        if version not in (1, PAGE_FORMAT_VERSION):
            raise StorageError(
                f"{self.path!r}: unsupported page-file version {version} "
                f"(supported: 1 (upgraded on open), "
                f"{PAGE_FORMAT_VERSION})")
        return version

    def _upgrade_from_v1(self) -> None:
        """Rewrite a version-1 file in the version-2 layout, in place.

        Version 1 kept one mutable header page — magic, version,
        page_size, page_count, catalog length, catalog JSON inline —
        with data from page 1.  Every blob is read through that layout,
        re-packed into a fresh version-2 store at a sibling temp path,
        and the result atomically renamed over the original (the vacuum
        recipe), so a crash mid-upgrade leaves the v1 file intact and
        the next open simply retries.
        """
        self._file.seek(0)
        raw = self._file.read(_V1_HEADER.size)
        if len(raw) < _V1_HEADER.size:
            raise CorruptionError(f"{self.path!r}: truncated v1 header")
        _, _, page_size, _, catalog_len = _V1_HEADER.unpack(raw)
        catalog_raw = self._file.read(catalog_len)
        if len(catalog_raw) < catalog_len:
            raise CorruptionError(f"{self.path!r}: truncated v1 catalog")
        catalog = json.loads(catalog_raw.decode("utf-8")) \
            if catalog_raw else {}
        live: dict[str, bytes] = {}
        for name, span in catalog.items():
            self._file.seek(span[0] * page_size)
            data = self._file.read(span[1])
            if len(data) < span[1]:
                raise CorruptionError(
                    f"{self.path!r}: v1 blob truncated", blob=name,
                    offset=span[0] * page_size)
            live[name] = data
        temp_path = self.path + ".upgrade"
        if os.path.exists(temp_path):
            # leftover from an upgrade that crashed before its rename;
            # the v1 file is still authoritative, start over
            os.unlink(temp_path)
        replacement = PageStore(temp_path, page_size=page_size,
                                pool_pages=self.pool_pages)
        try:
            replacement.put_blobs(live)
            fsync_file(replacement._file)
        except BaseException:
            replacement.close()
            os.unlink(temp_path)
            raise
        replacement.close()
        self._file.close()
        failpoint("pagestore:upgrade:pre-replace", store=self)
        os.replace(temp_path, self.path)
        failpoint("pagestore:upgrade:post-replace", store=self)
        self._file = open(self.path, "r+b")

    def _read_header(self) -> tuple[int, int, int, dict[str, list[int]]]:
        self._file.seek(0)
        raw = self._file.read(_SUPERBLOCK.size)
        if len(raw) < _SUPERBLOCK.size:
            raise CorruptionError(f"{self.path!r}: truncated superblock")
        magic, version, page_size = _SUPERBLOCK.unpack(raw)
        if magic != PAGE_MAGIC:
            raise CorruptionError(
                f"{self.path!r}: bad magic {magic!r}; not a page file")
        if version != PAGE_FORMAT_VERSION:
            raise StorageError(
                f"{self.path!r}: unsupported page-file version {version} "
                f"(supported: {PAGE_FORMAT_VERSION})")
        best: Optional[tuple[int, int, bytes]] = None
        for slot_page in (1, 2):
            state = self._read_catalog_slot(slot_page, page_size)
            if state is not None and (best is None or state[0] > best[0]):
                best = state
        if best is None:
            if self._is_crashed_create(page_size):
                # a create that died after its superblock but before
                # the first catalog flip: both slots still all-zero, no
                # data pages.  There is nothing to lose — adopt the
                # empty catalog the flip would have written
                return page_size, RESERVED_PAGES, 0, {}
            raise CorruptionError(
                f"{self.path!r}: neither catalog slot validates "
                f"(both torn or truncated)")
        seq, page_count, catalog_raw = best
        catalog = json.loads(catalog_raw.decode("utf-8")) \
            if catalog_raw else {}
        return page_size, page_count, seq, catalog

    def _is_crashed_create(self, page_size: int) -> bool:
        """Whether this file is a create() that crashed pre-first-flip.

        True exactly when no byte past the superblock is nonzero and
        the file holds no data pages — the state
        ``pagestore:create:post-superblock`` leaves behind.  Any
        nonzero byte in a slot means a catalog *was* written and is now
        torn: that is corruption, not a benign half-create.
        """
        if os.fstat(self._file.fileno()).st_size > \
                RESERVED_PAGES * page_size:
            return False
        self._file.seek(_SUPERBLOCK.size)
        rest = self._file.read(RESERVED_PAGES * page_size -
                               _SUPERBLOCK.size)
        return rest.count(0) == len(rest)

    def _read_catalog_slot(self, slot_page: int, page_size: int
                           ) -> Optional[tuple[int, int, bytes]]:
        """(seq, page_count, catalog bytes) of one slot, None if invalid.

        A slot is invalid — zeroed, torn by a crashed write, or cut off
        by a truncated file — exactly when its CRC does not match; the
        opener then falls back to the other slot.
        """
        self._file.seek(slot_page * page_size)
        page = self._file.read(page_size)
        if len(page) < _CATALOG_HEADER.size:
            return None
        page_count, seq, catalog_len, crc = _CATALOG_HEADER.unpack_from(
            page, 0)
        body_end = _CATALOG_HEADER.size + catalog_len
        if catalog_len < 0 or body_end > len(page):
            return None
        checked = page[:_CATALOG_HEADER.size - 4] + \
            page[_CATALOG_HEADER.size:body_end]
        if zlib.crc32(checked) != crc:
            return None
        return seq, page_count, page[_CATALOG_HEADER.size:body_end]

    def _write_header(self, catalog_raw: Optional[bytes] = None) -> None:
        """Write the catalog to the shadow slot and flip to it.

        The slot the last update used is left untouched, so a *process*
        crash at any byte of this write leaves a store that reopens with
        the previous catalog (the torn slot fails its CRC).  Data writes
        are flushed first so the new catalog never points at pages the
        OS has not seen; only with ``sync=True`` is that ordering also
        forced to the disk (fsync before and after the slot write), so
        the guarantee extends to power loss — without it the OS may
        persist the flip ahead of its data pages.
        """
        if catalog_raw is None:
            catalog_raw = _serialize_catalog(self._catalog, self.page_size)
        seq = self._seq + 1
        header = _CATALOG_HEADER.pack(self.page_count, seq,
                                      len(catalog_raw), 0)
        crc = zlib.crc32(header[:-4] + catalog_raw)
        page = header[:-4] + struct.pack("<I", crc) + catalog_raw
        slot_page = 1 + (seq % 2)
        self._file.flush()
        if self.sync:
            fsync_file(self._file)          # data durable before the flip
        failpoint("pagestore:catalog:pre-write", store=self)
        self._file.seek(slot_page * self.page_size)
        slot_bytes = page + b"\x00" * (self.page_size - len(page))
        failpoint("pagestore:catalog:torn-write", store=self,
                  file=self._file, data=slot_bytes)
        self._file.write(slot_bytes)
        failpoint("pagestore:catalog:post-write", store=self)
        self._file.flush()
        if self.sync:
            fsync_file(self._file)          # the flip itself durable
        self._seq = seq
        self._pool.pop(slot_page, None)

    # ------------------------------------------------------------------
    # page layer
    # ------------------------------------------------------------------
    def allocate_pages(self, count: int) -> int:
        """Append ``count`` zeroed pages; return the first new page id."""
        if count < 1:
            raise StorageError("must allocate at least one page")
        first = self.page_count
        self._file.seek(first * self.page_size)
        self._file.write(b"\x00" * (count * self.page_size))
        self.page_count += count
        return first

    def read_page(self, page_id: int) -> bytes:
        """One page through the buffer pool (LRU, counted)."""
        self._check_page(page_id)
        cached = self._pool.get(page_id)
        if cached is not None:
            self._pool.move_to_end(page_id)
            self.pool_hits += 1
            return cached
        self.pool_misses += 1
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) < self.page_size:
            data = data + b"\x00" * (self.page_size - len(data))
        self._pool[page_id] = data
        while len(self._pool) > self.pool_pages:
            self._pool.popitem(last=False)
        return data

    def cache_stats(self) -> dict:
        """Buffer-pool effectiveness, as a structured dict.

        ``hit_rate`` is lifetime hits over lifetime lookups (0.0 before
        the first read); ``cached_pages``/``pool_pages`` show how full
        the LRU is against its cap.  This is the public face of the
        :attr:`pool_hits`/:attr:`pool_misses` counters the pool has
        always kept.
        """
        hits, misses = self.pool_hits, self.pool_misses
        total = hits + misses
        return {
            "pool_hits": hits,
            "pool_misses": misses,
            "hit_rate": round(hits / total, 4) if total else 0.0,
            "cached_pages": len(self._pool),
            "pool_pages": self.pool_pages,
        }

    def _publish_pool_gauges(self) -> None:
        """Mirror the pool counters into the metrics registry (enabled
        callers only — blob reads/writes refresh these)."""
        stats = self.cache_stats()
        METRICS.gauge("pages.pool_hits", stats["pool_hits"])
        METRICS.gauge("pages.pool_misses", stats["pool_misses"])
        METRICS.gauge("pages.pool_hit_rate", stats["hit_rate"])

    def write_page(self, page_id: int, data: bytes) -> None:
        """Write one page (write-through: file and pool stay in sync)."""
        self._check_page(page_id)
        if len(data) > self.page_size:
            raise StorageError(
                f"{len(data)} bytes exceed the {self.page_size}-byte page")
        if page_id < RESERVED_PAGES:
            raise StorageError(
                f"page {page_id} is reserved (superblock/catalog); "
                f"use put_blob")
        padded = data + b"\x00" * (self.page_size - len(data))
        self._file.seek(page_id * self.page_size)
        self._file.write(padded)
        if page_id in self._pool:
            self._pool[page_id] = padded
            self._pool.move_to_end(page_id)

    def _check_page(self, page_id: int) -> None:
        if not 0 <= page_id < self.page_count:
            raise StorageError(
                f"page {page_id} outside file of {self.page_count} pages")

    def _pages_for(self, length: int) -> int:
        return max(1, -(-length // self.page_size))

    def _span_bytes(self, span: list[int]) -> bytes:
        """The live bytes of one catalog span, read straight through."""
        self._file.seek(span[0] * self.page_size)
        return self._file.read(span[1])

    @staticmethod
    def _first_fit(busy: list[tuple[int, int]], needed: int) -> int:
        """First page of a ``needed``-page hole between busy intervals.

        ``busy`` must be sorted by start (intervals may touch or
        overlap); the hole may extend past the last interval — the
        caller grows ``page_count`` to cover it.
        """
        cursor = RESERVED_PAGES
        for start, end in busy:
            if start - cursor >= needed:
                return cursor
            cursor = max(cursor, end)
        return cursor

    # ------------------------------------------------------------------
    # blob layer
    # ------------------------------------------------------------------
    def put_blob(self, name: str, data: bytes) -> None:
        """Store ``data`` under ``name`` across a contiguous page span.

        Reuses the existing span when the new bytes still fit in it;
        otherwise appends a fresh span and repoints the catalog.  A
        catalog that would overflow the header page is rejected *before*
        anything is written, so a failed put leaves the store exactly as
        it was.
        """
        self.put_blobs({name: data})

    def put_blobs(self, items: dict[str, bytes],
                  delete: Iterable[str] = (),
                  reclaim: bool = False) -> None:
        """Write every blob in ``items`` and drop every name in
        ``delete`` under a **single** catalog flip.

        (Instrumented wrapper — semantics live in the impl below.)
        """
        if not METRICS.enabled:
            return self._put_blobs_impl(items, delete, reclaim)
        t0 = time.perf_counter()
        result = self._put_blobs_impl(items, delete, reclaim)
        METRICS.observe("pages.put_blobs.seconds", time.perf_counter() - t0)
        METRICS.inc("pages.blob_writes", len(items))
        self._publish_pool_gauges()
        return result

    def _put_blobs_impl(self, items: dict[str, bytes],
                        delete: Iterable[str] = (),
                        reclaim: bool = False) -> None:
        """Write every blob in ``items`` and drop every name in
        ``delete`` under a **single** catalog flip.

        All data spans are written first, then one header update makes
        the whole batch visible atomically: a reader (or a reopen after
        a crash) sees either none of the batch or all of it, and a
        multi-blob save pays one catalog flip — one fsync pair under
        ``sync=True`` — instead of one per blob.  Span-reuse, overflow
        and crash semantics match :meth:`put_blob`; names in ``delete``
        that are not cataloged are ignored (a crashed earlier cleanup
        must not fail the retry).

        With ``reclaim=True`` the batch additionally recycles dead
        space and — crucially — never writes a page the *current*
        catalog references.  Each changed blob is first-fit into the
        gaps between live spans (or the tail) instead of rewriting its
        old span in place; a blob whose bytes are unchanged keeps its
        span untouched; allocations shrink back to the pages actually
        needed; and the batch's ``page_count`` drops to the last live
        page, so freed tail space is reused by later puts rather than
        growing the file (the file itself is never truncated here —
        exported mmap views stay valid — :meth:`vacuum` reclaims the
        bytes).  Because the pre-flip catalog's pages are never
        overwritten, the one non-atomic window of the default path (the
        in-place span rewrite, which can tear a blob's *contents*)
        closes: a crash at **any** byte of a reclaiming batch reopens
        bit-identically on the previous catalog.  The cost is one
        whole-span read per unchanged blob (the equality probe) and
        relocated writes for changed ones — the same bytes the default
        path would write anyway.
        """
        candidate = dict(self._catalog)
        for name in delete:
            candidate.pop(name, None)
        writes: list[tuple[int, bytes, int]] = []
        page_count = self.page_count
        if reclaim:
            # every interval the *pre-flip* catalog references is
            # untouchable until the flip lands: a crash anywhere in
            # this batch must fall back to it bit-identically
            busy = sorted((span[0], span[0] + span[2])
                          for span in self._catalog.values())
            for name, data in items.items():
                data = bytes(data)
                needed = self._pages_for(len(data))
                span = candidate.get(name)
                if span is not None and span[1] == len(data) and \
                        self._span_bytes(span) == data:
                    if span[2] != needed:
                        # give back over-allocation from a fatter past
                        candidate[name] = [span[0], len(data), needed,
                                           zlib.crc32(data)]
                    continue
                first = self._first_fit(busy, needed)
                busy.append((first, first + needed))
                busy.sort()
                candidate[name] = [first, len(data), needed,
                                   zlib.crc32(data)]
                writes.append((first, data, needed))
            page_count = max(
                [RESERVED_PAGES] +
                [span[0] + span[2] for span in candidate.values()])
        else:
            for name, data in items.items():
                data = bytes(data)
                needed = self._pages_for(len(data))
                span = candidate.get(name)
                # reuse is judged by the span's *allocated* pages, not
                # the current byte length, so shrink-then-regrow stays
                # in place
                grow = span is None or needed > span[2]
                first = page_count if grow else span[0]
                allocated = needed if grow else span[2]
                if grow:
                    page_count += needed
                candidate[name] = [first, len(data), allocated,
                                   zlib.crc32(data)]
                writes.append((first, data, needed))
        if candidate == self._catalog and not writes:
            return
        catalog_raw = _serialize_catalog(candidate, self.page_size)
        # data + tail padding covers each whole span, so a grown span is
        # written once, directly — no allocate_pages zero-fill first
        failpoint("pagestore:put:pre-data", store=self)
        for index, (first, data, needed) in enumerate(writes):
            if index:
                failpoint("pagestore:put:mid-data", store=self,
                          index=index)
            self._file.seek(first * self.page_size)
            padding = needed * self.page_size - len(data)
            span_bytes = data + b"\x00" * padding
            failpoint("pagestore:put:torn-span", store=self,
                      file=self._file, data=span_bytes)
            self._file.write(span_bytes)
            for page_id in range(first, first + needed):
                self._pool.pop(page_id, None)
        failpoint("pagestore:put:post-data", store=self)
        self.page_count = page_count
        self._catalog = candidate
        self._write_header(catalog_raw)
        self.flush()

    def get_blob(self, name: str, prefer_mmap: bool = False,
                 verify: bool = False) -> bytes:
        """Fetch blob ``name`` (instrumented wrapper — see impl below)."""
        if not METRICS.enabled:
            return self._get_blob_impl(name, prefer_mmap, verify)
        t0 = time.perf_counter()
        data = self._get_blob_impl(name, prefer_mmap, verify)
        METRICS.observe("pages.get_blob.seconds", time.perf_counter() - t0)
        METRICS.inc("pages.blob_reads")
        self._publish_pool_gauges()
        return data

    def _get_blob_impl(self, name: str, prefer_mmap: bool = False,
                       verify: bool = False) -> bytes:
        """Fetch blob ``name``.

        ``prefer_mmap=True`` returns a read-only ``memoryview`` over an
        mmap of the file — zero intermediate copies.  The view stays
        *readable* until :meth:`close`, but it aliases the file: a later
        :meth:`put_blob` that rewrites the same span shows through it.
        Consume (parse or copy) the view before writing the blob again;
        the default path returns an independent ``bytes`` assembled page
        by page through the buffer pool.

        ``verify=True`` checks the bytes against the CRC the catalog
        recorded at write time and raises
        :class:`~repro.errors.CorruptionError` on mismatch — the
        detector for the one non-atomic window left in the default
        write path, an in-place span rewrite torn by a crash.  Blobs
        written before CRCs existed in the catalog are passed through
        unchecked.
        """
        span = self._catalog.get(name)
        if span is None:
            raise KeyError(f"no blob named {name!r} in {self.path!r}")
        first, length = span[0], span[1]
        if prefer_mmap and length > 0 and not verify:
            start = first * self.page_size
            return memoryview(self._mmap_file())[start:start + length]
        pieces = []
        remaining = length
        for page_id in range(first, first + self._pages_for(length)):
            page = self.read_page(page_id)
            pieces.append(page[:remaining] if remaining < self.page_size
                          else page)
            remaining -= self.page_size
        data = b"".join(pieces)
        if verify and len(span) > 3:
            actual = zlib.crc32(data)
            if actual != span[3]:
                raise CorruptionError(
                    f"{self.path!r}: blob bytes do not match their "
                    f"catalog CRC", blob=name,
                    offset=first * self.page_size,
                    expected_crc=span[3], actual_crc=actual)
        return data

    def _mmap_file(self) -> mmap.mmap:
        """The shared read-only mmap, remapped when the file has grown.

        One mapping serves every ``prefer_mmap`` read; a superseded
        mapping whose memoryviews are still exported is parked until
        :meth:`close` rather than leaked per call.
        """
        self.flush()
        size = os.fstat(self._file.fileno()).st_size
        # mmap.size() is the *file* size, not the mapped length, so the
        # length at map time is tracked separately; a mismatch in either
        # direction remaps (vacuum shrinks the file — touching pages of
        # a stale over-long mapping would fault)
        if self._map is None or self._map_length != size:
            old = self._map
            self._map = mmap.mmap(self._file.fileno(), 0,
                                  access=mmap.ACCESS_READ)
            self._map_length = size
            if old is not None:
                try:
                    old.close()
                except BufferError:  # a view of it is still exported
                    self._retired_maps.append(old)
        return self._map

    def delete_blob(self, name: str) -> None:
        """Drop ``name`` from the catalog (atomic flip).

        The span's pages become orphans — unreachable but still
        allocated — until :meth:`vacuum` reclaims them.
        """
        if name not in self._catalog:
            raise KeyError(f"no blob named {name!r} in {self.path!r}")
        failpoint("pagestore:delete:pre-flip", store=self, blob=name)
        del self._catalog[name]
        self._write_header()
        self.flush()

    def has_blob(self, name: str) -> bool:
        """Whether the catalog holds ``name``."""
        return name in self._catalog

    def blobs(self) -> Iterator[str]:
        """Names in the catalog, in insertion order."""
        return iter(self._catalog)

    def blob_length(self, name: str) -> int:
        """Byte length of blob ``name``."""
        span = self._catalog.get(name)
        if span is None:
            raise KeyError(f"no blob named {name!r} in {self.path!r}")
        return span[1]

    @property
    def allocated_pages(self) -> int:
        """Data pages reachable through the catalog (reserved excluded).

        ``page_count - RESERVED_PAGES - allocated_pages`` is the orphan
        count :meth:`vacuum` reclaims: spans left behind when a blob
        outgrew its allocation and was rewritten elsewhere.
        """
        return sum(span[2] for span in self._catalog.values())

    def vacuum(self) -> int:
        """Reclaim orphaned page spans; returns the pages given back.

        (Instrumented wrapper — semantics live in the impl below.)
        """
        if not (METRICS.enabled or TRACER.enabled):
            return self._vacuum_impl()
        t0 = time.perf_counter()
        with TRACER.span("pages.vacuum", path=self.path) as span:
            reclaimed = self._vacuum_impl()
            span.set(reclaimed_pages=reclaimed)
        if METRICS.enabled:
            METRICS.observe("pages.vacuum.seconds",
                            time.perf_counter() - t0)
            METRICS.inc("pages.vacuums")
            METRICS.inc("pages.reclaimed_pages", reclaimed)
        return reclaimed

    def _vacuum_impl(self) -> int:
        """Reclaim orphaned page spans; returns the pages given back.

        The compacted layout is written to a **sibling temp file** and
        atomically renamed over this one (``os.replace``), so a crash
        at any point leaves either the old file or the complete
        compacted file — never a live span half-overwritten by its own
        relocation.  Every blob keeps its byte content; orphaned spans
        and over-allocation from earlier larger sizes are dropped.  All
        buffer-pool entries and the shared mmap are invalidated;
        ``memoryview`` exports from earlier ``prefer_mmap`` reads alias
        the *old* file and must not be trusted afterwards.
        """
        compact_pages = RESERVED_PAGES + sum(
            self._pages_for(span[1]) for span in self._catalog.values())
        reclaimed = self.page_count - compact_pages
        if reclaimed <= 0:
            return 0
        # read everything through the current layout first
        live = {name: bytes(self.get_blob(name))
                for name in self._catalog}
        failpoint("pagestore:vacuum:pre-build", store=self)
        temp_path = self.path + ".vacuum"
        if os.path.exists(temp_path):
            # leftover from a vacuum that crashed before its rename;
            # the original file is authoritative, start over
            os.unlink(temp_path)
        replacement = PageStore(temp_path, page_size=self.page_size,
                                pool_pages=self.pool_pages)
        try:
            replacement.put_blobs(live)
            fsync_file(replacement._file)
        except BaseException:
            replacement.close()
            os.unlink(temp_path)
            raise
        replacement.close()
        # adopt the compacted file: drop this store's handle, rename
        # the replacement into place, reopen
        for mapped in ([self._map] if self._map is not None else []):
            try:
                mapped.close()
            except BufferError:  # an exported view still pins it
                self._retired_maps.append(mapped)
        self._map = None
        self._map_length = 0
        self._pool.clear()
        self._file.close()
        failpoint("pagestore:vacuum:pre-replace", store=self)
        os.replace(temp_path, self.path)
        failpoint("pagestore:vacuum:post-replace", store=self)
        self._file = open(self.path, "r+b")
        (self.page_size, self.page_count, self._seq,
         self._catalog) = self._read_header()
        return reclaimed

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Push buffered writes to the OS."""
        self._file.flush()

    def close(self) -> None:
        """Flush and release the file and any mmaps.

        Exported memoryviews from :meth:`get_blob` must be released by
        then; live exports keep their mmap open (never the file lock).
        """
        if self._file.closed:
            return
        self.flush()
        for mapped in self._retired_maps + \
                ([self._map] if self._map is not None else []):
            try:
                mapped.close()
            except BufferError:  # a memoryview is still exported
                pass
        self._retired_maps.clear()
        self._map = None
        self._pool.clear()
        self._file.close()

    def __enter__(self) -> "PageStore":
        return self

    def __exit__(self, *exc_info: object) -> Optional[bool]:
        self.close()
        return None

    def __repr__(self) -> str:
        return (f"PageStore({self.path!r}, pages={self.page_count}, "
                f"page_size={self.page_size}, "
                f"blobs={len(self._catalog)})")
