"""Reproduction of Chen, Mihaila, Bordawekar & Padmanabhan,
"L-Tree: a Dynamic Labeling Structure for Ordered XML Data" (EDBT 2004).

Subpackages
-----------
``repro.core``
    The L-Tree itself: materialized and virtual variants, cost model,
    parameter tuning, operation accounting.
``repro.order``
    The abstract ordered-list labeling problem with baseline schemes
    (sequential, gap, Bender/Dietz–Sleator, bit-string prefix labels).
``repro.xml``
    XML substrate built from scratch: tokenizer, parser, ordered DOM,
    serializer, synthetic document generator.
``repro.labeling``
    (begin, end) region labeling of XML documents over any order scheme;
    containment predicates that answer ancestor/descendant axes.
``repro.storage``
    Storage substrate: counted B+-tree, access accounting, a miniature
    relational engine with edge-table and interval-table XML storage.
``repro.query``
    XPath-subset parsing and three interchangeable evaluators (DOM
    navigation, label containment joins, edge-table self-joins).
``repro.workloads``
    Deterministic update/query/document workload generators.
``repro.analysis``
    Experiment harness regenerating every figure/claim of the paper.
"""

from repro.core import (DEFAULT_PARAMS, FIGURE2_PARAMS, Counters, LTree,
                        LTreeNode, LTreeParams)

__version__ = "1.0.0"

__all__ = [
    "LTree",
    "LTreeNode",
    "LTreeParams",
    "DEFAULT_PARAMS",
    "FIGURE2_PARAMS",
    "Counters",
    "__version__",
]
