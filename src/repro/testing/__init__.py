"""Fault-injection test harnesses (crash storms, subprocess kills).

Importable product code, not test code: the CI storm job, the
benchmark ``faults`` suite and ``tests/testing/`` all drive the same
:mod:`repro.testing.crashstorm` machinery, so the recovery invariants
asserted in each place are literally the same functions.
"""

__all__ = ["SCENARIOS", "StormReport", "StormResult", "run_storm"]


def __getattr__(name):
    # lazy re-export: ``python -m repro.testing.crashstorm`` imports
    # this package first, and an eager import here would load the
    # submodule twice (runpy's sys.modules warning)
    if name in __all__:
        from repro.testing import crashstorm
        return getattr(crashstorm, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
