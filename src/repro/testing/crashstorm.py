"""Crash storms: kill the engine at every declared failpoint, reopen,
prove recovery.

The storm is the systematic version of the handwritten crash tests:
instead of one author-imagined crash window per test, it enumerates
the **entire declared failpoint surface** (:data:`FAILPOINTS`) and, for
each point, runs a seeded workload with that point armed, lets the
injected crash unwind, reopens the store/service, and checks the
recovery invariants:

* **prefix consistency** — the recovered logical state equals the
  oracle state after ``completed`` steps or after ``completed + 1``
  (the step the crash interrupted either happened whole or not at
  all); anything else is a lost or double-applied operation;
* **recovery idempotence** — observing the recovered state twice
  (open, fingerprint, close, repeat) yields bit-identical
  fingerprints: recovery must not mutate what it recovers beyond the
  documented open-time hygiene;
* **no debris** — no leftover ``.vacuum``/``.upgrade``/``.truncate``
  temp files survive a reopen, and the storm itself leaks no file
  descriptors across an arm-crash-recover cycle;
* **structural health** — the recovered tree passes ``validate()`` and
  its labels are strictly increasing.

**The oracle** is position-based: a workload step is ("insert", 0.62,
payload), not a handle — resolved against the live-handle list at
apply time.  The same abstract script therefore drives both the real
system and a throwaway in-memory twin, and (crucially) a *subprocess*
storm worker can regenerate the oracle from the seed alone after the
parent killed it with ``os._exit`` (see :mod:`repro.testing.storm_worker`).

Four scenarios cover the surface; each declared failpoint is assigned
to the first scenario whose unarmed probe run hits it:

* ``store`` — raw :class:`PageStore` churn: puts (single and batched),
  deletes, vacuums, reopens;
* ``upgrade`` — opening a v1-format file (the upgrade temp+rename
  recipe);
* ``service`` — a :class:`ConcurrentDocument` under ``sync=True,
  group_commit=1``: inserts, run-inserts, deletes, payload updates,
  checkpoints, an online split, merge, and a policy rebalance;
* ``recovery`` — crash *during recovery*: a service directory with a
  torn WAL tail, killed again at the recovery-time failpoints, then
  recovered cleanly.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.params import LTreeParams
from repro.core.sharded import RebalancePolicy, ShardedCompactLTree
from repro.errors import RecoveryError, StorageError
from repro.storage.faults import FAILPOINTS, SimulatedCrash, torn_write
from repro.storage.pages import PAGE_MAGIC, PageStore

#: deterministic workload RNG (kept private to the module so a seed
#: means the same script everywhere, including inside a storm worker)
import random

PARAMS = LTreeParams(f=8, s=2)

SCENARIOS = ("store", "upgrade", "service", "recovery")

#: temp-file suffixes no recovered directory may retain
DEBRIS_SUFFIXES = (".vacuum", ".upgrade", ".truncate")


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class StormResult:
    failpoint: str
    scenario: str
    fired: bool
    completed: int
    crashed: bool
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> dict:
        return {"failpoint": self.failpoint, "scenario": self.scenario,
                "fired": self.fired, "completed": self.completed,
                "crashed": self.crashed, "ok": self.ok,
                "error": self.error}


@dataclass
class StormReport:
    seed: int
    results: list[StormResult] = field(default_factory=list)
    #: declared failpoints no scenario's workload reaches
    unreached: list[str] = field(default_factory=list)

    @property
    def covered(self) -> list[str]:
        return sorted({r.failpoint for r in self.results if r.fired})

    def failures(self) -> list[StormResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures() and not self.unreached

    def to_dict(self) -> dict:
        return {"seed": self.seed, "ok": self.ok,
                "covered": self.covered, "unreached": self.unreached,
                "results": [r.to_dict() for r in self.results]}


# ----------------------------------------------------------------------
# severing (simulated process death)
# ----------------------------------------------------------------------
def _sever_store(store: PageStore) -> None:
    """Release a crashed store's resources without tidy shutdown.

    The crash already happened at the failpoint; whatever sits in the
    OS below this point is what a restarted process finds.  Closing
    the Python objects only prevents fd leaks in the *storm* process —
    a flush that still succeeds is at most extra durability, which the
    prefix invariant tolerates.
    """
    for mapped in list(getattr(store, "_retired_maps", ())) + \
            ([store._map] if getattr(store, "_map", None) else []):
        try:
            mapped.close()
        except BufferError:
            pass
    store._retired_maps.clear()
    store._map = None
    try:
        store._file.close()
    except (OSError, ValueError):
        pass


def _sever_service(doc: Any) -> None:
    try:
        doc.wal._file.close()
    except (OSError, ValueError):
        pass
    _sever_store(doc.store)


def _check_debris(root: str) -> Optional[str]:
    for dirpath, _dirs, files in os.walk(root):
        for name in files:
            if name.endswith(DEBRIS_SUFFIXES):
                return f"leftover temp file: {os.path.join(dirpath, name)}"
    return None


def _open_fds() -> Optional[int]:
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return None


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
class _StoreScenario:
    """Raw PageStore churn; the oracle is a plain dict.

    Batches that only introduce *new* names use the default put path
    (grown spans land on fresh pages — atomic under the catalog flip);
    batches that overwrite existing blobs use ``reclaim=True``, the
    crash-atomic path the checkpoint save uses.  The default path's
    in-place overwrite is *documented* as tearable by a crash (the CRC
    catches it, scrub quarantines it — see ``docs/durability.md`` and
    the scrub tests), so storming it against a strict prefix oracle
    would assert a guarantee the store deliberately does not make.
    """

    name = "store"
    PAGE_SIZE = 256

    def build_steps(self, seed: int) -> list[tuple]:
        rng = random.Random(seed * 7919 + 1)
        steps: list[tuple] = [("create",)]
        names = [f"blob{i}" for i in range(6)]
        for index in range(18):
            roll = rng.random()
            if index in (6, 13):
                steps.append(("vacuum",))
            elif index == 9:
                steps.append(("reopen",))
            elif roll < 0.55:
                count = 1 + (index % 3)           # batched puts hit
                batch = {}                        # mid-data failpoints
                for _ in range(count):
                    name = names[rng.randrange(len(names))]
                    size = rng.randrange(1, 700)
                    batch[name] = bytes([rng.randrange(256)]) * size
                steps.append(("put", batch))
            elif roll < 0.8:
                steps.append(("delete", rng.random()))
            else:
                steps.append(("put", {names[rng.randrange(len(names))]:
                                      b""}))
        return steps

    def oracle(self, steps: list[tuple]) -> list[str]:
        state: dict[str, bytes] = {}
        states = [self._fingerprint_dict(state)]
        for step in steps:
            if step[0] == "put":
                state.update(step[1])
            elif step[0] == "delete" and state:
                victim = sorted(state)[int(step[1] * (len(state) - 1))]
                del state[victim]
            states.append(self._fingerprint_dict(state))
        return states

    @staticmethod
    def _fingerprint_dict(state: dict[str, bytes]) -> str:
        return json.dumps(sorted(
            (name, len(data), zlib.crc32(data))
            for name, data in state.items()))

    def _path(self, workdir: str) -> str:
        return os.path.join(workdir, "store.ltp")

    def run(self, workdir: str, steps: list[tuple],
            on_step: Optional[Callable[[int], None]] = None) -> int:
        completed = 0
        store: Optional[PageStore] = None
        try:
            for step in steps:
                if step[0] == "create":
                    store = PageStore(self._path(workdir),
                                      page_size=self.PAGE_SIZE, sync=True)
                elif step[0] == "put":
                    batch = dict(step[1])
                    fresh = all(not store.has_blob(name)
                                for name in batch)
                    store.put_blobs(batch, reclaim=not fresh)
                elif step[0] == "delete":
                    live = sorted(store.blobs())
                    if live:
                        store.delete_blob(
                            live[int(step[1] * (len(live) - 1))])
                elif step[0] == "vacuum":
                    store.vacuum()
                elif step[0] == "reopen":
                    store.close()
                    store = PageStore(self._path(workdir), sync=True)
                completed += 1
                if on_step is not None:
                    on_step(completed)
            store.close()
        except BaseException:
            if store is not None:
                _sever_store(store)
            raise
        return completed

    def observe(self, workdir: str) -> str:
        with PageStore(self._path(workdir)) as store:
            state = {name: bytes(store.get_blob(name, verify=True))
                     for name in store.blobs()}
        return self._fingerprint_dict(state)

    def recover_failed(self, workdir: str, completed: int,
                       exc: BaseException) -> Optional[str]:
        return f"reopen failed after {completed} steps: {exc!r}"


class _UpgradeScenario:
    """Open a v1-format file: the upgrade temp+rename recipe."""

    name = "upgrade"
    PAGE_SIZE = 128

    def build_steps(self, seed: int) -> list[tuple]:
        rng = random.Random(seed * 6007 + 2)
        blobs = {f"v1.{i}": bytes([65 + i]) * rng.randrange(1, 400)
                 for i in range(4)}
        return [("seed-v1", blobs), ("upgrade-open",), ("upgrade-open",)]

    def oracle(self, steps: list[tuple]) -> list[str]:
        fp = _StoreScenario._fingerprint_dict(steps[0][1])
        return [_StoreScenario._fingerprint_dict({})] + \
            [fp] * len(steps)

    def _path(self, workdir: str) -> str:
        return os.path.join(workdir, "store.ltp")

    def _write_v1(self, path: str, blobs: dict[str, bytes]) -> None:
        catalog = {}
        spans = []
        first = 1
        for name, data in blobs.items():
            pages = max(1, -(-len(data) // self.PAGE_SIZE))
            catalog[name] = [first, len(data), pages]
            spans.append((data, pages))
            first += pages
        catalog_raw = json.dumps(catalog).encode("utf-8")
        header = struct.pack("<8sIIQI", PAGE_MAGIC, 1, self.PAGE_SIZE,
                             first, len(catalog_raw))
        with open(path, "wb") as handle:
            page0 = header + catalog_raw
            handle.write(page0 + b"\x00" * (self.PAGE_SIZE - len(page0)))
            for data, pages in spans:
                handle.write(
                    data + b"\x00" * (pages * self.PAGE_SIZE - len(data)))

    def run(self, workdir: str, steps: list[tuple],
            on_step: Optional[Callable[[int], None]] = None) -> int:
        completed = 0
        for step in steps:
            if step[0] == "seed-v1":
                self._write_v1(self._path(workdir), step[1])
            elif step[0] == "upgrade-open":
                store = PageStore(self._path(workdir))
                try:
                    for name in store.blobs():
                        store.get_blob(name, verify=True)
                except BaseException:
                    _sever_store(store)
                    raise
                store.close()
            completed += 1
            if on_step is not None:
                on_step(completed)
        return completed

    def observe(self, workdir: str) -> str:
        with PageStore(self._path(workdir)) as store:
            state = {name: bytes(store.get_blob(name, verify=True))
                     for name in store.blobs()}
        return _StoreScenario._fingerprint_dict(state)

    def recover_failed(self, workdir: str, completed: int,
                       exc: BaseException) -> Optional[str]:
        return f"reopen failed after {completed} steps: {exc!r}"


class _ServiceScenario:
    """A ConcurrentDocument under the strictest durability settings."""

    name = "service"
    REBALANCE = RebalancePolicy(max_ratio=1.5, min_split_leaves=8,
                                max_shards=16)

    def build_steps(self, seed: int) -> list[tuple]:
        rng = random.Random(seed * 104729 + 3)
        steps: list[tuple] = [("create",), ("bulk", 8)]
        for index in range(24):
            if index in (5, 12, 19):
                steps.append(("checkpoint",))
            elif index == 8:
                steps.append(("split",))
            elif index == 15:
                steps.append(("merge",))
            elif index == 10:
                # a skewed run into one anchor, so the rebalance step
                # below has something to act on
                steps.append(("run", 0.95,
                              [["skew", k] for k in range(18)]))
            elif index == 11:
                steps.append(("rebalance",))
            else:
                roll = rng.random()
                if roll < 0.5:
                    steps.append(("insert", rng.random(),
                                  ["pay", index, rng.randrange(999)]))
                elif roll < 0.7:
                    steps.append(("run", rng.random(),
                                  [["r", index, k]
                                   for k in range(rng.randrange(2, 5))]))
                elif roll < 0.85:
                    steps.append(("delete", rng.random()))
                else:
                    steps.append(("set", rng.random(),
                                  ["upd", index]))
        return steps

    # -- the one positional applier both real doc and twin share -------
    @staticmethod
    def _apply_logical(target: Any, live: list, step: tuple) -> bool:
        """Apply a logical step; returns False for non-logical steps."""
        kind = step[0]
        if kind == "bulk":
            live[:] = target.bulk_load(
                [["base", i] for i in range(step[1])])
        elif kind == "insert":
            index = int(step[1] * (len(live) - 1))
            live.insert(index + 1,
                        target.insert_after(live[index], step[2]))
        elif kind == "run":
            index = int(step[1] * (len(live) - 1))
            handles = target.insert_run_after(live[index], step[2])
            live[index + 1:index + 1] = handles
        elif kind == "delete":
            if len(live) > 6:
                index = int(step[1] * (len(live) - 1))
                target.delete(live.pop(index))
        elif kind == "set":
            index = int(step[1] * (len(live) - 1))
            target.set_payload(live[index], step[2])
        else:
            return False
        return True

    def oracle(self, steps: list[tuple]) -> list[str]:
        twin = ShardedCompactLTree(PARAMS, n_shards=4)

        class _Twin:                              # same verbs as the doc
            bulk_load = twin.bulk_load
            insert_after = twin.insert_after
            insert_run_after = twin.insert_run_after
            delete = twin.mark_deleted
            set_payload = twin.set_payload

        live: list = []
        states = [json.dumps([])]
        for step in steps:
            self._apply_logical(_Twin, live, step)
            states.append(
                json.dumps(twin.payloads(include_deleted=False)))
        return states

    def _dir(self, workdir: str) -> str:
        return os.path.join(workdir, "svc")

    def run(self, workdir: str, steps: list[tuple],
            on_step: Optional[Callable[[int], None]] = None) -> int:
        from repro.concurrent.service import ConcurrentDocument

        completed = 0
        doc = None
        live: list = []
        try:
            for step in steps:
                if self._apply_logical(doc, live, step):
                    pass
                elif step[0] == "create":
                    doc = ConcurrentDocument.create(
                        self._dir(workdir), params=PARAMS, n_shards=4,
                        sync=True, group_commit=1)
                elif step[0] == "checkpoint":
                    doc.checkpoint()
                elif step[0] == "split":
                    rows = [r for r in doc.shard_report()
                            if r["leaves"] >= 4]
                    if rows:
                        row = max(rows, key=lambda r: (r["leaves"],
                                                       -r["id"]))
                        doc.tree.split_shard(row["id"],
                                             row["leaves"] // 2)
                elif step[0] == "merge":
                    rows = doc.shard_report()
                    if len(rows) >= 3:
                        pairs = [(rows[p]["leaves"] + rows[p + 1]["leaves"],
                                  rows[p]["id"], rows[p + 1]["id"])
                                 for p in range(len(rows) - 1)]
                        _, id_a, id_b = min(pairs)
                        doc.tree.merge_shards(id_a, id_b)
                elif step[0] == "rebalance":
                    doc.rebalance(self.REBALANCE)
                completed += 1
                if on_step is not None:
                    on_step(completed)
            doc.close()
        except BaseException:
            if doc is not None:
                _sever_service(doc)
            raise
        return completed

    def observe(self, workdir: str) -> str:
        from repro.concurrent.service import ConcurrentDocument

        with ConcurrentDocument.open(self._dir(workdir)) as doc:
            labels = doc.labels()
            if labels != sorted(set(labels)):
                raise AssertionError(
                    "recovered labels are not strictly increasing")
            doc.tree.validate()
            return json.dumps(doc.payloads())

    def recover_failed(self, workdir: str, completed: int,
                       exc: BaseException) -> Optional[str]:
        """A typed open failure is legal only for a half-created
        service — and then create() must succeed over the debris."""
        from repro.concurrent.service import ConcurrentDocument

        if completed <= 1 and isinstance(exc, (StorageError,
                                               RecoveryError)):
            doc = ConcurrentDocument.create(
                self._dir(workdir), params=PARAMS, n_shards=4)
            doc.close()
            return None                           # re-creatable: fine
        return f"reopen failed after {completed} steps: {exc!r}"


class _RecoveryScenario:
    """Crash during recovery itself, on a directory with a torn tail."""

    name = "recovery"

    def __init__(self) -> None:
        self._base = _ServiceScenario()

    def build_steps(self, seed: int) -> list[tuple]:
        # base workload, one appended insert whose WAL commit is torn
        # mid-write (so recovery has a real tail to truncate), then an
        # explicit recovery open — the step recovery-time failpoints
        # (``service:open:pre-replay``, ``wal:open:pre-truncate-tail``)
        # fire in while the storm's arm is still in scope
        return self._base.build_steps(seed) + [("torn-append",),
                                               ("recover-open",)]

    def oracle(self, steps: list[tuple]) -> list[str]:
        states = self._base.oracle(steps[:-2])
        # neither tail step changes acknowledged logical state: the
        # torn append is never acknowledged, the recovery open is read-
        # repair only
        return states + [states[-1], states[-1]]

    def run(self, workdir: str, steps: list[tuple],
            on_step: Optional[Callable[[int], None]] = None) -> int:
        from repro.concurrent.service import ConcurrentDocument

        completed = self._base.run(workdir, steps[:-2],
                                   on_step=on_step)
        doc = ConcurrentDocument.open(self._base._dir(workdir),
                                      sync=True, group_commit=1)
        try:
            with FAILPOINTS.scoped():
                FAILPOINTS.arm("wal:commit:torn-write", torn_write(0.3))
                anchor = next(iter(doc.handles()))
                try:
                    doc.insert_after(anchor, ["torn"])
                except SimulatedCrash:
                    pass
        finally:
            _sever_service(doc)
        completed += 1
        if on_step is not None:
            on_step(completed)
        recovered = ConcurrentDocument.open(self._base._dir(workdir))
        recovered.close()
        completed += 1
        if on_step is not None:
            on_step(completed)
        return completed

    def observe(self, workdir: str) -> str:
        return self._base.observe(workdir)

    def recover_failed(self, workdir: str, completed: int,
                       exc: BaseException) -> Optional[str]:
        return f"reopen failed after {completed} steps: {exc!r}"


def make_scenario(name: str):
    try:
        cls = {"store": _StoreScenario, "upgrade": _UpgradeScenario,
               "service": _ServiceScenario,
               "recovery": _RecoveryScenario}[name]
    except KeyError:
        raise StorageError(f"unknown storm scenario {name!r} "
                           f"(known: {list(SCENARIOS)})") from None
    return cls()


# ----------------------------------------------------------------------
# the storm driver
# ----------------------------------------------------------------------
def _probe(scenario, seed: int, base_dir: str) -> set[str]:
    """Run the scenario unarmed; returns the failpoint names it hit.

    Only ``run()`` counts — ``observe()`` also walks instrumented code
    (an open), but an armed scenario exits its arm scope before
    observing, so a failpoint only observe reaches could never fire.
    Recovery-time failpoints (``service:open:pre-replay``,
    ``wal:open:pre-truncate-tail``) are instead reached by the
    ``recovery`` scenario's explicit ``recover-open`` step.
    """
    before = dict(FAILPOINTS.hits)
    workdir = os.path.join(base_dir, f"probe-{scenario.name}")
    os.makedirs(workdir, exist_ok=True)
    scenario.run(workdir, scenario.build_steps(seed))
    after = FAILPOINTS.hits
    return {name for name, count in after.items()
            if count > before.get(name, 0)}


def _storm_one(scenario, failpoint_name: str, seed: int,
               workdir: str) -> StormResult:
    """Arm one failpoint, run, crash, recover, check invariants."""
    states = scenario.oracle(scenario.build_steps(seed))
    action = torn_write(0.3) if ":torn-" in failpoint_name else "crash"
    fired_before = FAILPOINTS.fired.get(failpoint_name, 0)
    completed = 0
    crashed = False
    holder = {"completed": 0}
    try:
        with FAILPOINTS.scoped():
            FAILPOINTS.arm(failpoint_name, action)
            completed = scenario.run(
                workdir, scenario.build_steps(seed),
                on_step=lambda k: holder.__setitem__("completed", k))
    except SimulatedCrash:
        crashed = True
        completed = holder["completed"]
    fired = FAILPOINTS.fired.get(failpoint_name, 0) > fired_before
    result = StormResult(failpoint_name, scenario.name, fired,
                         completed, crashed)

    allowed = {states[completed]}
    if completed + 1 < len(states):
        allowed.add(states[completed + 1])
    try:
        first = scenario.observe(workdir)
        second = scenario.observe(workdir)
    except (StorageError, RecoveryError, OSError, KeyError,
            AssertionError) as exc:
        result.error = scenario.recover_failed(workdir, completed, exc)
        return result
    if first != second:
        result.error = (f"recovery not idempotent: first open gave "
                        f"{first[:80]!r}..., second {second[:80]!r}...")
    elif first not in allowed:
        result.error = (f"recovered state matches no valid prefix "
                        f"(completed={completed}): {first[:120]!r}")
    else:
        result.error = _check_debris(workdir)
    return result


def run_storm(seed: int = 0, scenarios: Optional[list[str]] = None,
              failpoints: Optional[list[str]] = None,
              base_dir: Optional[str] = None) -> StormReport:
    """Enumerate the declared surface and crash at every point.

    ``scenarios`` restricts which workloads run (default: all);
    ``failpoints`` restricts which names are stormed (default: every
    declared name reachable by some scenario).  Unreached declared
    names are reported in :attr:`StormReport.unreached` — the coverage
    gate CI refuses to let shrink.
    """
    # the full surface only exists once every instrumented module has
    # imported; these imports are the declaration side effects
    import repro.concurrent.service      # noqa: F401
    import repro.core.sharded            # noqa: F401
    import repro.storage.wal             # noqa: F401

    chosen = [make_scenario(name)
              for name in (scenarios or SCENARIOS)]
    report = StormReport(seed=seed)
    with tempfile.TemporaryDirectory(dir=base_dir) as tmp:
        reachable: dict[str, Any] = {}
        for scenario in chosen:
            for name in sorted(_probe(scenario, seed, tmp)):
                reachable.setdefault(name, scenario)
        targets = failpoints if failpoints is not None \
            else FAILPOINTS.names()
        fd_baseline = _open_fds()
        for index, name in enumerate(sorted(targets)):
            scenario = reachable.get(name)
            if scenario is None:
                report.unreached.append(name)
                continue
            workdir = os.path.join(tmp, f"{index:03d}")
            os.makedirs(workdir)
            result = _storm_one(scenario, name, seed, workdir)
            fd_now = _open_fds()
            if result.ok and fd_baseline is not None and \
                    fd_now is not None and fd_now > fd_baseline + 2:
                result.error = (f"fd leak: {fd_baseline} open before "
                                f"the cycle, {fd_now} after")
            report.results.append(result)
    return report


def main(argv: Optional[list[str]] = None) -> int:
    """CLI for the CI storm job: ``python -m repro.testing.crashstorm``.

    Seeds come from ``--seed`` (repeatable) or the ``REPRO_STORM_SEED``
    env var (comma-separated); scenarios likewise from ``--scenario``
    or ``REPRO_STORM_SCENARIOS``.  Exit 0 only when every seed's storm
    covers the whole declared surface with every invariant holding.
    """
    import argparse

    parser = argparse.ArgumentParser(
        description="crash at every declared failpoint and prove "
                    "recovery")
    parser.add_argument("--seed", type=int, action="append",
                        help="workload seed (repeatable)")
    parser.add_argument("--scenario", action="append",
                        choices=SCENARIOS, help="restrict scenarios")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the merged reports to PATH")
    args = parser.parse_args(argv)
    seeds = args.seed or [
        int(s) for s in os.environ.get("REPRO_STORM_SEED", "0").split(",")]
    scenarios = args.scenario or (
        os.environ["REPRO_STORM_SCENARIOS"].split(",")
        if "REPRO_STORM_SCENARIOS" in os.environ else None)

    reports = []
    failed = False
    for seed in seeds:
        report = run_storm(seed=seed, scenarios=scenarios)
        reports.append(report.to_dict())
        fired = sum(1 for r in report.results if r.fired)
        print(f"seed {seed}: {fired}/{len(report.results)} failpoints "
              f"fired, {len(report.unreached)} unreached, "
              f"{len(report.failures())} invariant failures")
        for result in report.failures():
            print(f"  FAIL {result.failpoint} [{result.scenario}]: "
                  f"{result.error}")
            failed = True
        if report.unreached:
            print(f"  unreached: {', '.join(report.unreached)}")
            failed = True
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(reports, handle, indent=2, sort_keys=True)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
