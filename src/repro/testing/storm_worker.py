"""Subprocess storm worker: real process death, not an exception.

``SimulatedCrash`` unwinds the Python stack; a true kill does not run
``finally`` blocks, flush buffered file objects, or release mmaps.
This worker closes that last fidelity gap: the parent (see
``tests/testing/test_crashstorm.py`` or the CI storm job) sets
``REPRO_FAILPOINT_EXIT=<failpoint-name>[:nth]`` and spawns

    python -m repro.testing.storm_worker WORKDIR SCENARIO SEED

The env var arms an ``os._exit(137)`` action at import time (see
:func:`repro.storage.faults._arm_from_env`), so the child dies mid-
syscall with no unwinding at all.  After each completed step the
worker prints the step count on its own line and flushes — the
parent's view of progress is the last *complete* line on stdout, the
exact analogue of a WAL torn tail.  The parent then recovers the
workdir in-process with the normal :mod:`~repro.testing.crashstorm`
invariants: recovered state ∈ {oracle[completed], oracle[completed+1]}.

Exit codes: ``137`` means the armed failpoint fired (the expected
outcome), ``0`` means the workload ran to completion without reaching
it, anything else is a worker bug.
"""

from __future__ import annotations

import sys


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print("usage: python -m repro.testing.storm_worker "
              "WORKDIR SCENARIO SEED", file=sys.stderr)
        return 2
    workdir, scenario_name, seed = argv[0], argv[1], int(argv[2])

    from repro.testing.crashstorm import make_scenario

    scenario = make_scenario(scenario_name)

    def report(completed: int) -> None:
        sys.stdout.write(f"{completed}\n")
        sys.stdout.flush()

    scenario.run(workdir, scenario.build_steps(seed), on_step=report)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
