"""Structured tracing: spans, point events, ring buffer, JSONL export.

A **span** brackets one operation (a checkpoint, a vacuum, a column
re-pin) and records monotonic start/end timestamps
(``time.perf_counter``), the duration, the emitting thread, and
arbitrary ``key=value`` attributes.  A **point event** marks an
instant (a failpoint hit).  Both land in one bounded ring buffer — a
``collections.deque(maxlen=...)`` — so a tracer left enabled forever
holds the *last* ``capacity`` records and nothing more.

Like the metrics registry, the tracer starts disabled and costs one
attribute read per seam while off: :meth:`Tracer.span` returns the
shared :data:`NULL_SPAN` singleton (a no-op context manager) and
:meth:`Tracer.event` returns immediately.

**Slow-op log.**  Set :attr:`Tracer.slow_op_seconds` to a threshold
and every span at or above it is copied into a small side buffer
(:meth:`Tracer.slow_ops`) and logged through the standard ``logging``
channel ``repro.obs.slow`` — the "why was that commit 2 s" answer
without exporting the whole ring.

Records are plain dicts, exported one-JSON-object-per-line
(:meth:`Tracer.export_jsonl`, :func:`read_jsonl`) for the
``python -m repro.obs.report`` pretty-printer.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from collections import deque
from typing import Optional

#: default ring capacity — ~8k records is minutes of busy-engine spans
DEFAULT_CAPACITY = 8192
#: slow spans kept in the side buffer regardless of ring churn
SLOW_CAPACITY = 256


class _NullSpan:
    """The disabled-tracer span: a reusable, attribute-eating no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs) -> "_NullSpan":
        return self


#: shared no-op span handed out whenever tracing is off
NULL_SPAN = _NullSpan()


class _Span:
    """A live span; built by :meth:`Tracer.span`, recorded on exit."""

    __slots__ = ("_tracer", "name", "attrs", "start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start = 0.0

    def set(self, **attrs) -> "_Span":
        """Attach attributes discovered mid-operation."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter()
        record = {
            "type": "span",
            "name": self.name,
            "start": self.start,
            "end": end,
            "dur": end - self.start,
            "thread": threading.get_ident(),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if exc_type is not None:
            record["error"] = exc_type.__name__
        self._tracer._record(record)
        return None


class Tracer:
    """Bounded-ring structured tracer (module docstring).

    Examples
    --------
    >>> tracer = Tracer(capacity=100)
    >>> tracer.enabled = True
    >>> with tracer.span("service.checkpoint", shards=4) as span:
    ...     span.set(watermark=17)
    >>> tracer.events()[-1]["name"]
    'service.checkpoint'
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        #: instrumented seams emit nothing while this is False
        self.enabled = False
        #: spans with ``dur`` at or above this are slow-logged; None = off
        self.slow_op_seconds: Optional[float] = None
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=capacity)
        self._slow: deque = deque(maxlen=SLOW_CAPACITY)
        self._logger = logging.getLogger("repro.obs.slow")

    @property
    def capacity(self) -> int:
        return self._ring.maxlen

    def set_capacity(self, capacity: int) -> None:
        """Rebound the ring, keeping the newest records that fit."""
        with self._lock:
            self._ring = deque(self._ring, maxlen=capacity)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # ------------------------------------------------------------------
    # emit
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs):
        """A context manager timing one operation (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record an instantaneous point event (no-op when disabled)."""
        if not self.enabled:
            return
        record = {
            "type": "event",
            "name": name,
            "start": time.perf_counter(),
            "thread": threading.get_ident(),
        }
        if attrs:
            record["attrs"] = attrs
        with self._lock:
            self._ring.append(record)

    def _record(self, record: dict) -> None:
        threshold = self.slow_op_seconds
        slow = (threshold is not None
                and record.get("dur", 0.0) >= threshold)
        with self._lock:
            self._ring.append(record)
            if slow:
                self._slow.append(record)
        if slow:
            self._logger.warning(
                "slow op %s: %.6fs attrs=%s", record["name"],
                record["dur"], record.get("attrs", {}))

    # ------------------------------------------------------------------
    # read / export
    # ------------------------------------------------------------------
    def events(self) -> list:
        """Every buffered record, oldest first."""
        with self._lock:
            return list(self._ring)

    def slow_ops(self) -> list:
        """Spans that crossed :attr:`slow_op_seconds`, oldest first."""
        with self._lock:
            return list(self._slow)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._slow.clear()

    def export_jsonl(self, path) -> int:
        """Write the ring to ``path`` as JSONL; returns records written."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as out:
            for record in events:
                out.write(json.dumps(record, sort_keys=True,
                                     separators=(",", ":"), default=repr))
                out.write("\n")
        return len(events)

    def __repr__(self) -> str:
        return (f"Tracer(enabled={self.enabled}, "
                f"buffered={len(self._ring)}/{self.capacity})")


def read_jsonl(path) -> list:
    """Load a trace exported by :meth:`Tracer.export_jsonl`."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
