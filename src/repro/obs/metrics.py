"""Process-wide metrics registry: counters, gauges, latency histograms.

The paper's §3.1 cost model (:mod:`repro.core.stats`) counts *node
touches*; this module counts *time and traffic* — the quantities an
operator of the grown storage engine watches: WAL commit latency,
group-commit batch sizes, checkpoint pauses, buffer-pool hit rates,
per-shard write rates.  Three metric kinds:

* **counters** — monotonically increasing named integers
  (``wal.fsyncs``, ``query.session.step_hits``);
* **gauges** — last-write-wins named values
  (``service.wal_backlog``, ``pages.pool_hit_rate``);
* **histograms** — fixed log₂-bucket distributions with
  p50/p95/p99/max extraction.  A name ending in ``.seconds`` buckets
  from :data:`SECONDS_BASE` (1 µs); any other name buckets from
  :data:`UNIT_BASE` (1), which suits counts and sizes
  (``wal.commit.batch_records``).

**Thread safety without hot-path locks.**  Counter increments and
histogram observations land in a *per-thread shard* (a
``threading.local``), so concurrent writers never contend; the read
side (:meth:`MetricsRegistry.snapshot`) merges every shard under the
registry lock.  Merged totals are exact — each observation lives in
exactly one shard — though a snapshot taken mid-write may be one
in-flight increment stale, like any monitoring read.

**The ``enabled`` fast path.**  Mirroring
:class:`repro.core.stats.NullCounters`, the registry starts *disabled*
and instrumented call sites hoist one ``METRICS.enabled`` attribute
check before doing any work — the uninstrumented engine pays a single
boolean read per seam, nothing per record/slot.  Enable explicitly
(``repro.obs.enable()``) or via the ``REPRO_OBS`` environment variable.
"""

from __future__ import annotations

import math
import threading
from typing import Optional

#: buckets per histogram; bucket ``k`` covers ``(base·2^(k-1), base·2^k]``
#: (bucket 0 absorbs everything at or below ``base``), so 64 buckets
#: span 1 µs .. ~584 000 years for ``.seconds`` histograms
N_BUCKETS = 64
#: bucket floor of ``*.seconds`` histograms — 1 microsecond
SECONDS_BASE = 1e-6
#: bucket floor of dimensionless histograms (batch sizes, counts)
UNIT_BASE = 1.0


def histogram_base(name: str) -> float:
    """The log-grid floor a histogram name implies (see module doc)."""
    return SECONDS_BASE if name.endswith(".seconds") else UNIT_BASE


def bucket_index(value: float, base: float) -> int:
    """Index of the log₂ bucket holding ``value``."""
    if value <= base:
        return 0
    index = int(math.ceil(math.log2(value / base) - 1e-12))
    return index if index < N_BUCKETS else N_BUCKETS - 1


def bucket_bound(index: int, base: float) -> float:
    """Upper (inclusive) bound of bucket ``index``."""
    return base * (2.0 ** index)


class _Hist:
    """One thread's slice of one histogram (merged on read)."""

    __slots__ = ("buckets", "count", "total", "max")

    def __init__(self) -> None:
        self.buckets = [0] * N_BUCKETS
        self.count = 0
        self.total = 0.0
        self.max = 0.0


class _Shard:
    """One thread's private counter/histogram store."""

    __slots__ = ("epoch", "counters", "hists")

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        self.counters: dict[str, int] = {}
        self.hists: dict[str, _Hist] = {}


def _items(mapping: dict) -> list:
    """Snapshot a dict another thread may be growing concurrently."""
    while True:
        try:
            return list(mapping.items())
        except RuntimeError:    # resized mid-iteration; retry
            continue


def _quantile(buckets: list[int], count: int, maximum: float,
              base: float, q: float) -> float:
    """Upper bucket bound of the q-th observation, clamped to the max."""
    target = max(1, math.ceil(q * count))
    cumulative = 0
    for index, bucket in enumerate(buckets):
        cumulative += bucket
        if cumulative >= target:
            return min(bucket_bound(index, base), maximum)
    return maximum


def summarize(buckets: list[int], count: int, total: float,
              maximum: float, base: float) -> dict:
    """The ``{count, sum, max, p50, p95, p99}`` view of merged buckets."""
    if count == 0:
        return {"count": 0, "sum": 0.0, "max": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0}
    return {
        "count": count,
        "sum": total,
        "max": maximum,
        "p50": _quantile(buckets, count, maximum, base, 0.50),
        "p95": _quantile(buckets, count, maximum, base, 0.95),
        "p99": _quantile(buckets, count, maximum, base, 0.99),
    }


class MetricsRegistry:
    """Named counters, gauges and histograms (module docstring).

    Write-side methods (:meth:`inc`, :meth:`observe`, :meth:`gauge`)
    are unconditional — callers gate on :attr:`enabled` themselves so
    the disabled path costs one attribute read, not a method call.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.enable()
    >>> registry.inc("wal.commits")
    >>> registry.observe("wal.commit.seconds", 0.004)
    >>> registry.snapshot()["counters"]["wal.commits"]
    1
    """

    def __init__(self) -> None:
        #: instrumented seams skip all metrics work while this is False
        self.enabled = False
        self._lock = threading.Lock()
        self._local = threading.local()
        self._shards: list[_Shard] = []
        self._gauges: dict[str, float] = {}
        self._epoch = 0

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # ------------------------------------------------------------------
    # write side (per-thread, lock-free)
    # ------------------------------------------------------------------
    def _shard(self) -> _Shard:
        shard = getattr(self._local, "shard", None)
        if shard is not None and shard.epoch == self._epoch:
            return shard
        with self._lock:
            shard = _Shard(self._epoch)
            self._shards.append(shard)
        self._local.shard = shard
        return shard

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (created at zero)."""
        counters = self._shard().counters
        counters[name] = counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        hists = self._shard().hists
        hist = hists.get(name)
        if hist is None:
            hist = hists[name] = _Hist()
        hist.buckets[bucket_index(value, histogram_base(name))] += 1
        hist.count += 1
        hist.total += value
        if value > hist.max:
            hist.max = value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (last write wins, registry-global)."""
        self._gauges[name] = value

    # ------------------------------------------------------------------
    # read side (merge per-thread shards)
    # ------------------------------------------------------------------
    def _merged(self) -> tuple[dict[str, int], dict[str, list]]:
        with self._lock:
            shards = list(self._shards)
        counters: dict[str, int] = {}
        hists: dict[str, list] = {}
        for shard in shards:
            for name, value in _items(shard.counters):
                counters[name] = counters.get(name, 0) + value
            for name, hist in _items(shard.hists):
                merged = hists.get(name)
                if merged is None:
                    merged = hists[name] = [[0] * N_BUCKETS, 0, 0.0, 0.0]
                buckets = merged[0]
                for index, bucket in enumerate(hist.buckets):
                    buckets[index] += bucket
                merged[1] += hist.count
                merged[2] += hist.total
                if hist.max > merged[3]:
                    merged[3] = hist.max
        return counters, hists

    def counters(self) -> dict[str, int]:
        """Merged counter values across every thread."""
        return self._merged()[0]

    def gauges(self) -> dict[str, float]:
        """Current gauge values."""
        with self._lock:
            return dict(self._gauges)

    def histogram(self, name: str) -> Optional[dict]:
        """``{count, sum, max, p50, p95, p99}`` of one histogram."""
        merged = self._merged()[1].get(name)
        if merged is None:
            return None
        buckets, count, total, maximum = merged
        return summarize(buckets, count, total, maximum,
                         histogram_base(name))

    def histogram_buckets(self) -> dict[str, tuple[float, list[int],
                                                   int, float, float]]:
        """``name -> (base, buckets, count, sum, max)`` raw merged data
        (the Prometheus exposition's input; see ``repro.obs.export``)."""
        return {name: (histogram_base(name), merged[0], merged[1],
                       merged[2], merged[3])
                for name, merged in self._merged()[1].items()}

    def snapshot(self) -> dict:
        """One structured view: counters, gauges, histogram summaries."""
        counters, hists = self._merged()
        return {
            "counters": counters,
            "gauges": self.gauges(),
            "histograms": {
                name: summarize(merged[0], merged[1], merged[2],
                                merged[3], histogram_base(name))
                for name, merged in hists.items()},
        }

    def reset(self) -> None:
        """Drop every metric; live threads start fresh shards."""
        with self._lock:
            self._epoch += 1
            self._shards.clear()
            self._gauges.clear()

    def __repr__(self) -> str:
        return (f"MetricsRegistry(enabled={self.enabled}, "
                f"shards={len(self._shards)})")
