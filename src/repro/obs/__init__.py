"""repro.obs — engine-wide observability.

One process-wide :class:`~repro.obs.metrics.MetricsRegistry`
(:data:`METRICS`) and one :class:`~repro.obs.trace.Tracer`
(:data:`TRACER`), both **disabled by default**: every instrumented
seam in the engine hoists a single ``.enabled`` attribute check, so
the uninstrumented hot paths pay ~zero (see the overhead guard in
``tests/obs/`` and the CI-gated ``observability`` benchmark suite).

Switch on programmatically::

    from repro import obs
    obs.enable()            # metrics + tracing
    ...workload...
    print(obs.METRICS.snapshot())
    obs.TRACER.export_jsonl("trace.jsonl")
    obs.disable()

or from the environment, read once at import:

* ``REPRO_OBS=1`` / ``all`` / ``on`` — enable metrics and tracing;
  ``metrics`` or ``trace`` enables just that half.
* ``REPRO_OBS_SLOW_MS=250`` — slow-op log threshold in milliseconds.

Companion modules: :mod:`repro.obs.export` renders the registry in
Prometheus text exposition format; ``python -m repro.obs.report``
pretty-prints an exported JSONL trace.  The metric and span name
catalog lives in ``docs/observability.md``.
"""

from __future__ import annotations

import os

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, read_jsonl

__all__ = [
    "METRICS", "TRACER", "MetricsRegistry", "Tracer",
    "enable", "disable", "enabled", "reset", "read_jsonl",
]

#: the process-wide metrics registry every instrumented seam writes to
METRICS = MetricsRegistry()
#: the process-wide tracer every instrumented seam emits spans into
TRACER = Tracer()


def enable(metrics: bool = True, trace: bool = True) -> None:
    """Turn instrumentation on (both halves by default)."""
    if metrics:
        METRICS.enable()
    if trace:
        TRACER.enable()


def disable() -> None:
    """Turn all instrumentation off (recorded data is kept)."""
    METRICS.disable()
    TRACER.disable()


def enabled() -> bool:
    """True when either half is collecting."""
    return METRICS.enabled or TRACER.enabled


def reset() -> None:
    """Drop all recorded metrics and trace records."""
    METRICS.reset()
    TRACER.clear()


_env = os.environ.get("REPRO_OBS", "").strip().lower()
if _env in ("1", "on", "all", "true", "yes"):
    enable()
elif _env == "metrics":
    enable(metrics=True, trace=False)
elif _env == "trace":
    enable(metrics=False, trace=True)

_slow = os.environ.get("REPRO_OBS_SLOW_MS", "").strip()
if _slow:
    try:
        TRACER.slow_op_seconds = float(_slow) / 1000.0
    except ValueError:
        pass
