"""Prometheus text exposition of a :class:`MetricsRegistry`.

:func:`render_prometheus` turns the registry's merged state into the
`text exposition format <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
a scraper (or a human) expects:

* counters become ``repro_<name>_total``;
* gauges become ``repro_<name>``;
* histograms become the ``_bucket{le="..."}`` cumulative series plus
  ``_sum`` and ``_count``, with trailing all-empty buckets collapsed
  into the mandatory ``le="+Inf"`` row to keep the page readable.

Metric names are mangled dots-to-underscores (``wal.commit.seconds``
→ ``repro_wal_commit_seconds``) and prefixed ``repro_`` so the engine
namespaces cleanly next to other exporters.  The serving tier
(ROADMAP item 1) can mount this behind a ``/metrics`` route verbatim.
"""

from __future__ import annotations

import re

from repro.obs.metrics import MetricsRegistry, bucket_bound

_MANGLE = re.compile(r"[^a-zA-Z0-9_]")


def mangle(name: str) -> str:
    """``wal.commit.seconds`` → ``repro_wal_commit_seconds``."""
    return "repro_" + _MANGLE.sub("_", name)


def _format_value(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def render_prometheus(registry: MetricsRegistry = None) -> str:
    """The registry's state in Prometheus text exposition format."""
    if registry is None:
        from repro import obs
        registry = obs.METRICS
    lines = []

    for name in sorted(registry.counters()):
        value = registry.counters()[name]
        metric = mangle(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_format_value(value)}")

    for name, value in sorted(registry.gauges().items()):
        metric = mangle(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")

    for name, raw in sorted(registry.histogram_buckets().items()):
        base, buckets, count, total, _maximum = raw
        metric = mangle(name)
        lines.append(f"# TYPE {metric} histogram")
        last = -1
        for index, bucket in enumerate(buckets):
            if bucket:
                last = index
        cumulative = 0
        for index in range(last + 1):
            cumulative += buckets[index]
            bound = bucket_bound(index, base)
            lines.append(
                f'{metric}_bucket{{le="{repr(bound)}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
        lines.append(f"{metric}_sum {_format_value(total)}")
        lines.append(f"{metric}_count {count}")

    return "\n".join(lines) + ("\n" if lines else "")
