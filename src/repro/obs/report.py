"""Pretty-print a captured observability trace.

Usage::

    python -m repro.obs.report trace.jsonl [--top N] [--events]

Reads a JSONL file exported by :meth:`repro.obs.trace.Tracer.export_jsonl`
and prints, per span name: count, total seconds, p50/p95/p99/max
(computed exactly from the raw durations, not bucketed), then the
``--top N`` slowest individual spans with their attributes, and — with
``--events`` — point-event counts by name (failpoint hits land here).
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Optional

from repro.obs.trace import read_jsonl


def _percentile(sorted_values: list, q: float) -> float:
    """Exact q-th percentile of an ascending list (nearest-rank)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f}ms"
    return f"{value * 1e6:.1f}us"


def summarize_spans(records: list) -> dict:
    """``name -> {count, total, p50, p95, p99, max}`` from raw spans."""
    durations: dict[str, list] = {}
    for record in records:
        if record.get("type") == "span":
            durations.setdefault(record["name"], []).append(
                record.get("dur", 0.0))
    summary = {}
    for name, values in durations.items():
        values.sort()
        summary[name] = {
            "count": len(values),
            "total": sum(values),
            "p50": _percentile(values, 0.50),
            "p95": _percentile(values, 0.95),
            "p99": _percentile(values, 0.99),
            "max": values[-1],
        }
    return summary


def render(records: list, top: int = 5, events: bool = False) -> str:
    """The report body as one printable string."""
    lines = []
    spans = [r for r in records if r.get("type") == "span"]
    summary = summarize_spans(records)
    lines.append(f"{len(records)} records "
                 f"({len(spans)} spans, {len(records) - len(spans)} events)")
    if summary:
        lines.append("")
        header = (f"{'span':<28} {'count':>7} {'total':>10} {'p50':>10} "
                  f"{'p95':>10} {'p99':>10} {'max':>10}")
        lines.append(header)
        lines.append("-" * len(header))
        for name in sorted(summary, key=lambda n: -summary[n]["total"]):
            row = summary[name]
            lines.append(
                f"{name:<28} {row['count']:>7} "
                f"{_format_seconds(row['total']):>10} "
                f"{_format_seconds(row['p50']):>10} "
                f"{_format_seconds(row['p95']):>10} "
                f"{_format_seconds(row['p99']):>10} "
                f"{_format_seconds(row['max']):>10}")
    if top and spans:
        lines.append("")
        lines.append(f"slowest {min(top, len(spans))} spans:")
        ranked = sorted(spans, key=lambda r: -r.get("dur", 0.0))[:top]
        for record in ranked:
            attrs = record.get("attrs", {})
            suffix = (" " + " ".join(f"{k}={v}" for k, v in attrs.items())
                      if attrs else "")
            error = f" ERROR={record['error']}" if "error" in record else ""
            lines.append(f"  {_format_seconds(record.get('dur', 0.0)):>10}"
                         f"  {record['name']}{suffix}{error}")
    if events:
        counts: dict[str, int] = {}
        for record in records:
            if record.get("type") == "event":
                counts[record["name"]] = counts.get(record["name"], 0) + 1
        lines.append("")
        lines.append("events:")
        if counts:
            for name in sorted(counts):
                lines.append(f"  {name:<40} {counts[name]}")
        else:
            lines.append("  (none)")
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Pretty-print a JSONL trace captured by repro.obs.")
    parser.add_argument("trace", help="path to an exported .jsonl trace")
    parser.add_argument("--top", type=int, default=5,
                        help="how many slowest spans to list (default 5)")
    parser.add_argument("--events", action="store_true",
                        help="also print point-event counts by name")
    args = parser.parse_args(argv)
    try:
        records = read_jsonl(args.trace)
    except OSError as exc:
        print(f"cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2
    print(render(records, top=args.top, events=args.events))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
