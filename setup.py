"""Setup shim.

The project is fully described by ``pyproject.toml``; this file exists so
the legacy (non-PEP-660) editable install path works in offline
environments that lack the ``wheel`` package:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
