"""Batch insertion and the virtual L-Tree (paper §4).

Run:  python examples/bulk_loading.py

Part 1 — §4.1: inserting a feed of auction items one element at a time
vs as whole subtrees.  Batch insertion shares the per-insert bookkeeping
across each subtree, cutting the amortized cost roughly logarithmically
in the batch size.

Part 2 — §4.2: the same insertion sequence driven through the virtual
L-Tree (labels in a counted B-tree, no materialized tree), certifying the
label sequences are identical.
"""

import random

from repro.analysis.report import format_table
from repro.core.ltree import LTree
from repro.core.params import LTreeParams
from repro.core.stats import Counters
from repro.core.virtual import VirtualLTree

PARAMS = LTreeParams(f=8, s=2)
TOTAL = 4096


def batched_run(run_length: int) -> float:
    stats = Counters()
    tree = LTree(PARAMS, stats)
    leaves = list(tree.bulk_load(range(2)))
    rng = random.Random(5)
    for _ in range(TOTAL // run_length):
        position = rng.randrange(len(leaves))
        new = tree.insert_run_after(leaves[position],
                                    list(range(run_length)))
        leaves[position + 1:position + 1] = new
    return stats.amortized_cost()


def main() -> None:
    print("== part 1: batch insertion (§4.1) ==")
    rows = []
    baseline = None
    for run_length in (1, 4, 16, 64, 256):
        cost = batched_run(run_length)
        if baseline is None:
            baseline = cost
        rows.append((run_length, round(cost, 2),
                     f"{baseline / cost:.1f}x"))
    print(format_table(("batch size k", "node touches per leaf",
                        "speedup"), rows))

    print("\n== part 2: virtual L-Tree (§4.2) ==")
    materialized = LTree(PARAMS)
    virtual = VirtualLTree(PARAMS)
    m_leaves = list(materialized.bulk_load(range(4)))
    virtual.bulk_load(range(4))
    rng = random.Random(9)
    for index in range(1000):
        v_labels = virtual.labels()
        position = rng.randrange(len(m_leaves))
        m_new = materialized.insert_after(m_leaves[position], index)
        virtual.insert_after(v_labels[position], index)
        m_leaves.insert(position + 1, m_new)
    assert materialized.labels() == virtual.labels()
    print(f"1000 mirrored insertions: {materialized.n_leaves} labels, "
          f"max label {materialized.max_label()}")
    print("materialized and virtual label sequences are IDENTICAL — "
          "the tree really is implicit in the labels.")


if __name__ == "__main__":
    main()
