"""Tuning advisor: choose (f, s) for your workload (paper §3.2).

Run:  python examples/tuning_advisor.py

Given an expected document size and constraints, solves the paper's three
optimization problems and then *verifies* the recommendation empirically
by replaying a workload at the recommended and at naive parameters.
"""

from repro.analysis.report import format_table
from repro.core import tuning
from repro.core.params import LTreeParams
from repro.core.stats import Counters
from repro.order.ltree_list import LTreeListLabeling
from repro.workloads import apply_workload, uniform_inserts

EXPECTED_SIZE = 100_000


def measure(params: LTreeParams, n_ops: int = 5000) -> float:
    stats = Counters()
    scheme = LTreeListLabeling(params, stats=stats)
    apply_workload(scheme, uniform_inserts(n_ops, seed=3))
    return stats.amortized_cost()


def main() -> None:
    print(f"expected document size n0 = {EXPECTED_SIZE}\n")

    unconstrained = tuning.minimize_update_cost(EXPECTED_SIZE)
    print("1) minimize update cost:")
    print(f"   {unconstrained.describe()}\n")

    print("2) minimize update cost under a label budget:")
    rows = []
    for budget in (24, 32, 48):
        result = tuning.minimize_cost_given_bits(EXPECTED_SIZE, budget)
        rows.append((budget, result.params.describe(),
                     round(result.predicted_cost, 1),
                     round(result.predicted_bits, 1)))
    print(format_table(("bit budget", "recommendation", "cost", "bits"),
                       rows))

    print("\n3) minimize overall cost across query/update mixes "
          "(32-bit words):")
    rows = []
    for update_fraction in (0.1, 0.5, 0.9):
        result = tuning.minimize_overall_cost(
            EXPECTED_SIZE, update_fraction,
            comparisons_per_query=100.0, word_bits=32)
        rows.append((update_fraction, result.params.describe(),
                     round(result.objective, 1)))
    print(format_table(("update fraction", "recommendation", "objective"),
                       rows))

    print("\nempirical check (5000 uniform inserts, measured node "
          "touches per insert):")
    recommended = unconstrained.params
    naive_choice = LTreeParams(f=4, s=2)
    rows = [
        ("recommended", recommended.describe(),
         round(measure(recommended), 2)),
        ("naive default", naive_choice.describe(),
         round(measure(naive_choice), 2)),
    ]
    print(format_table(("choice", "params", "measured cost"), rows))


if __name__ == "__main__":
    main()
