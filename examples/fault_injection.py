"""Fault injection end to end: failpoints, a crash storm, scrub/repair.

Run:  python examples/fault_injection.py

Four acts, each printing what the durability machinery actually did:

1. **one armed failpoint** — crash a ``PageStore`` in the middle of a
   batched put and reopen on the previous catalog, the atomic-flip
   guarantee at its smallest;
2. **a hostile disk** — a ``FaultyStore`` whose fsync lies (reports
   success, keeps nothing) loses power; the acknowledged overwrite
   vanishes but the ``reclaim=True`` path reopens on the old bytes;
3. **the crash storm** — enumerate the *entire* declared failpoint
   surface, crash at every point under a seeded workload, and verify
   recovery against a serial oracle;
4. **scrub and repair** — flip bytes inside one blob's span, watch
   scrub convict it by CRC, and let repair quarantine it while every
   intact blob survives byte-identical.

See ``docs/durability.md`` for the guarantee each step demonstrates.
"""

import os
import tempfile

from repro.errors import CorruptionError
from repro.storage.faults import (FAILPOINTS, FaultPolicy, FaultyStore,
                                  SimulatedCrash)
from repro.storage.pages import PageStore
from repro.storage.scrub import repair_store, scrub_store
from repro.testing import run_storm


def act_one_failpoint(root: str) -> None:
    print("=== 1. one armed failpoint ===")
    path = os.path.join(root, "flip.ltp")
    with PageStore(path, page_size=256) as store:
        store.put_blob("committed", b"safe" * 30)
    with FAILPOINTS.scoped():
        FAILPOINTS.arm("pagestore:catalog:pre-write", "crash")
        store = PageStore(path, page_size=256)
        try:
            store.put_blobs({"doomed-1": b"x" * 300,
                             "doomed-2": b"y" * 300})
        except SimulatedCrash as crash:
            print(f"  crashed at {crash.failpoint_name!r} — data pages "
                  f"written, catalog flip never landed")
        finally:
            store._file.close()
    with PageStore(path) as back:
        names = sorted(back.blobs())
        print(f"  reopened on the previous catalog: blobs={names}")
        assert names == ["committed"]


def act_lying_disk(root: str) -> None:
    print("=== 2. a disk that lies about fsync ===")
    path = os.path.join(root, "liar.ltp")
    with PageStore(path, page_size=256, sync=True) as store:
        store.put_blob("doc", b"version-1" * 10)
    with FaultyStore(path, FaultPolicy(lying_fsync=True),
                     sync=True) as hostile:
        hostile.store.put_blobs({"doc": b"version-2" * 10}, reclaim=True)
        print(f"  overwrote 'doc' (disk acknowledged "
              f"{hostile.file.fsyncs} fsyncs, kept none)")
        lost = hostile.file.power_loss()
        print(f"  power loss: {lost} acknowledged-but-unsynced bytes "
              f"zeroed")
    with PageStore(path) as back:
        data = bytes(back.get_blob("doc", verify=True))
        print(f"  reopened: 'doc' is {data[:9].decode()}... — the "
              f"reclaiming flip never touched the old span")
        assert data == b"version-1" * 10


def act_storm() -> None:
    print("=== 3. the crash storm ===")
    report = run_storm(seed=0)
    fired = sum(1 for result in report.results if result.fired)
    print(f"  {len(FAILPOINTS.names())} failpoints declared, "
          f"{fired} crashed at, {len(report.unreached)} unreached, "
          f"{len(report.failures())} invariant violations")
    assert report.ok, [r.to_dict() for r in report.failures()]


def act_scrub_repair(root: str) -> None:
    print("=== 4. scrub and repair ===")
    path = os.path.join(root, "scrub.ltp")
    blobs = {"intact-a": b"alpha" * 50, "victim": b"beta" * 80,
             "intact-b": b"gamma" * 20}
    with PageStore(path, page_size=256) as store:
        store.put_blobs(blobs)
        offset = store._catalog["victim"][0] * 256
    with open(path, "r+b") as raw:                # a disk bit-flip
        raw.seek(offset + 5)
        raw.write(b"\xff\xff\xff")
    try:
        with PageStore(path) as store:
            store.get_blob("victim", verify=True)
    except CorruptionError as exc:
        print(f"  verified read convicts the span: {exc}")
    report = scrub_store(path)
    print(f"  scrub: {len(report.errors())} finding(s) over "
          f"{report.blobs_checked} blobs / {report.bytes_checked} bytes")
    repaired = repair_store(path)
    for action in repaired.actions:
        print(f"  repair: {action}")
    with PageStore(path) as back:
        assert sorted(back.blobs()) == ["intact-a", "intact-b"]
        for name in ("intact-a", "intact-b"):
            assert bytes(back.get_blob(name, verify=True)) == blobs[name]
    print(f"  survivors byte-identical; corrupt bytes preserved under "
          f"{os.path.basename(path)}.quarantine/")
    assert scrub_store(path).ok


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="fault-demo-") as root:
        act_one_failpoint(root)
        act_lying_disk(root)
        act_storm()
        act_scrub_repair(root)
    print("all four acts held their guarantees")


if __name__ == "__main__":
    main()
