"""End-to-end mini document store: the system a downstream user builds.

Run:  python examples/document_store.py

Chains every layer of the library the way the paper's motivating XML
database would:

1. parse an auction document (from-scratch parser);
2. label it with an L-Tree tuned for the expected size (§3.2);
3. shred it into the relational interval table (§1's storage);
4. answer XPath queries with attribute predicates via structural joins;
5. apply a day of edits — inserts, subtree moves, deletions;
6. persist the labels, restart, and verify queries still agree;
7. compact the accumulated tombstones and re-verify.
"""

from repro.core import tuning
from repro.core.persistence import restore, snapshot
from repro.core.stats import Counters
from repro.labeling import LabeledDocument
from repro.query import evaluate_dom, evaluate_interval, parse_xpath
from repro.storage import IntervalTableStore
from repro.xml import XMLElement, XMLTextNode, xmark_like

QUERIES = (
    "//item[@id='item7']/name",
    "/site//increase",
    "//person/emailaddress",
)


def check_queries(document, labeled) -> None:
    store = IntervalTableStore(labeled)
    for text in QUERIES:
        query = parse_xpath(text)
        via_labels = evaluate_interval(store, query)
        via_navigation = evaluate_dom(document, query)
        assert [id(e) for e in via_labels] == \
            [id(e) for e in via_navigation]
        print(f"  {text:32s} -> {len(via_labels):3d} results (verified)")


def main() -> None:
    # 1-2: parse and label with tuned parameters
    document = xmark_like(n_items=40, n_people=20, n_auctions=12, seed=8)
    expected_size = 4 * document.count_nodes()  # plan for growth
    recommendation = tuning.minimize_cost_given_bits(expected_size, 32)
    print(f"tuned for n0={expected_size}: "
          f"{recommendation.params.describe()}")
    stats = Counters()
    labeled = LabeledDocument(document, params=recommendation.params,
                              stats=stats)

    print("\ninitial queries:")
    check_queries(document, labeled)

    # 5: a day of edits
    regions = next(document.find_all("regions"))
    africa = next(document.find_all("africa"))
    for edit in range(25):
        item = XMLElement("item", [("id", f"day2-{edit}")])
        name = XMLElement("name")
        name.append_child(XMLTextNode(f"late listing {edit}"))
        item.append_child(name)
        labeled.insert_subtree(africa, 0, item)
    first_item = next(document.find_all("item"))
    labeled.move_subtree(first_item, africa, 0)
    for victim in list(document.find_all("open_auction"))[:5]:
        labeled.delete_subtree(victim)
    labeled.validate()
    print(f"\nafter edits: {document.count_elements()} elements, "
          f"{stats.relabels} relabels, {stats.splits} splits, "
          f"{labeled.scheme.tree.tombstone_count()} tombstones")
    check_queries(document, labeled)

    # 6: persist labels only, restart, re-attach (payloads are live DOM
    # nodes, so they stay out of the wire format)
    wire = snapshot(labeled.scheme.tree, include_payloads=False)
    rebuilt_tree = restore(wire)
    assert rebuilt_tree.labels() == labeled.scheme.tree.labels()
    print(f"\npersisted and restored {rebuilt_tree.n_leaves} labels "
          f"bit-for-bit (structure reconstructed from labels alone)")

    # 7: vacuum and prove the store still answers correctly
    before_bits = labeled.scheme.tree.max_label().bit_length()
    reclaimed = labeled.compact()
    print(f"compacted: {reclaimed} dead slots reclaimed, labels "
          f"{before_bits} -> "
          f"{labeled.scheme.tree.max_label().bit_length()} bits")
    labeled.validate()
    print("\nqueries after compaction:")
    check_queries(document, labeled)


if __name__ == "__main__":
    main()
