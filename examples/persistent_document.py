"""A labeled document that survives process restart.

Run:  python examples/persistent_document.py

Paper §4.2 observes that all L-Tree structure is implicit in the labels,
which makes persistence almost free: this script builds a labeled XML
document on the array-backed engine, edits it, saves it into a page file
(`repro.storage.pages.PageStore`), then simulates a crash by dropping
every object and reopening from disk — no re-parse-and-relabel, the
restored labels are bit-identical and editing resumes as if the process
had never stopped.  It finishes with a restore vs re-bulk_load timing,
the number the persistence subsystem exists for.
"""

import os
import tempfile
import time

from repro.core.compact import CompactLTree
from repro.core.params import LTreeParams
from repro.labeling.scheme import LabeledDocument
from repro.order.compact_list import CompactListLabeling
from repro.storage.pages import PageStore
from repro.xml.generator import xmark_like
from repro.xml.parser import parse

PARAMS = LTreeParams(f=16, s=4)
N_BULK = 100_000


def main() -> None:
    path = os.path.join(tempfile.mkdtemp(), "document.ltp")

    # -- session 1: build, edit, save ---------------------------------
    document = xmark_like(n_items=40, n_people=20, n_auctions=15, seed=7)
    labeled = LabeledDocument(document,
                              scheme=CompactListLabeling(PARAMS))
    site = document.root
    note = parse("<note priority=\"high\">restock</note>").root
    labeled.append_subtree(site.children[0], note)
    labeled.delete_subtree(site.children[-1])
    labels_before = labeled.labels_in_order()

    with PageStore(path) as store:
        labeled.save(store)
        print("== session 1 ==")
        print(f"  labeled {len(labels_before)} tokens, "
              f"saved {store.page_count} pages "
              f"({os.path.getsize(path):,} bytes) to {path}")

    # -- "crash": every in-memory object goes away --------------------
    del labeled, document, site, note

    # -- session 2: reopen and keep editing ---------------------------
    with PageStore(path) as store:
        reopened = LabeledDocument.open(store)
        identical = reopened.labels_in_order() == labels_before
        print("== session 2 (after restart) ==")
        print(f"  labels bit-identical: {identical}")
        root = reopened.document.root
        first = root.children[0]
        print(f"  is_ancestor(root, first child): "
              f"{reopened.is_ancestor(root, first)}")
        reopened.insert_text(first, 0, "post-restart edit")
        reopened.validate()
        reopened.save(store)
        print("  edited, validated and re-saved without relabeling")

    # -- the payoff: restore vs rebuild -------------------------------
    tree = CompactLTree(PARAMS)
    tree.bulk_load(range(N_BULK))
    tree_path = os.path.join(tempfile.mkdtemp(), "tree.ltp")
    with PageStore(tree_path) as store:
        tree.save(store)

    def rebuild() -> None:
        CompactLTree(PARAMS).bulk_load(range(N_BULK))

    def reopen() -> None:
        with PageStore(tree_path) as store:
            CompactLTree.load(store, prefer_mmap=True)

    print(f"\n== {N_BULK:,} leaves: reopen vs rebuild ==")
    timings = {}
    for name, action in (("re-bulk_load", rebuild),
                         ("mmap restore", reopen)):
        best = min(_timed(action) for _ in range(3))
        timings[name] = best
        print(f"  {name:13s} {best * 1000:7.1f} ms")
    print(f"  speedup: {timings['re-bulk_load'] / timings['mmap restore']:.1f}x")


def _timed(action) -> float:
    start = time.perf_counter()
    action()
    return time.perf_counter() - start


if __name__ == "__main__":
    main()
