"""Lock-free XPath queries under live writers.

Run:  python examples/snapshot_queries.py

PR 5 gave the sharded engine zero-lock ``LabelSnapshot`` pins; this
walkthrough shows the query layer cashing them in:

1. an XMark-like document is labeled with the **sharded** L-Tree scheme,
   saved, and reopened ``concurrent=True`` — engine access through
   ``scheme.tree`` becomes a thread-safe ``ConcurrentLTree``;
2. a :class:`repro.query.columnar.ColumnarStore` is **pinned** from one
   ``tree.snapshot()``: every ``(begin, end, level)`` column is gathered
   straight off the snapshot's frozen per-shard byte images — no locks,
   no live-engine reads, one bulk extraction for the whole store;
3. **writer threads** hammer the live engine the whole time while the
   main thread evaluates XPath through the vectorized columnar engine
   (``parallel=True`` fans each axis pass out over the per-shard
   segments).  Every result is identical to the pre-pin evaluation —
   the pin means writers can never smear a query;
4. re-pinning *after* the writers finish shows the other half of the
   contract: a fresh snapshot sees every committed write — and the
   **incremental** re-pin (``store.repin``) splices only the shards the
   writers dirtied into the cached store instead of re-walking the
   document;
5. a steady-state serving loop: per batch, re-pin incrementally and
   run the whole battery through one
   :class:`repro.query.columnar.QuerySession`, which deduplicates
   shared leading steps across the batch.
"""

import random
import tempfile
import threading

from repro.core.stats import Counters
from repro.labeling.scheme import LabeledDocument
from repro.order.registry import make_scheme
from repro.query import evaluate_columnar, evaluate_dom, parse_xpath
from repro.query.columnar import ColumnarStore, QuerySession
from repro.xml.generator import xmark_like

QUERIES = ["/site//increase", "//item/name", "//open_auction/bidder"]


def writer(tree, stop, seed, written):
    """Keeps inserting engine-level tokens until told to stop."""
    rng = random.Random(seed)
    handles = list(tree.iter_leaves(include_deleted=False))
    while not stop.is_set():
        anchor = handles[rng.randrange(len(handles))]
        handles.append(tree.insert_after(anchor, ("noise", seed)))
        written[seed] = written.get(seed, 0) + 1


def main() -> None:
    document = xmark_like(n_items=120, n_people=60, n_auctions=40,
                          seed=7)
    labeled = LabeledDocument(document,
                              scheme=make_scheme("ltree-sharded"))
    with tempfile.TemporaryDirectory() as directory:
        labeled.save(f"{directory}/doc")
        doc = LabeledDocument.open(f"{directory}/doc", concurrent=True)
        tree = doc.scheme.tree

        queries = [parse_xpath(text) for text in QUERIES]
        expected = [[id(e) for e in evaluate_dom(doc.document, query)]
                    for query in queries]

        # -- pin once: columns come off frozen byte images ------------
        store = ColumnarStore.from_snapshot(doc, tree.snapshot())
        print(f"pinned {len(store)} elements across "
              f"{len(store.shard_slices)} shard segments "
              f"({store.backend} backend)")

        # -- query while writers mutate the live engine ---------------
        stop = threading.Event()
        written: dict[int, int] = {}
        threads = [
            threading.Thread(target=writer,
                             args=(tree, stop, seed, written))
            for seed in (1, 2)]
        for thread in threads:
            thread.start()
        try:
            for round_number in range(5):
                for query, truth in zip(queries, expected):
                    result = evaluate_columnar(store, query,
                                               parallel=True)
                    assert [id(e) for e in result] == truth, str(query)
            print("5 rounds x", len(queries),
                  "queries: all identical to the pre-pin evaluation")
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        print(f"writers inserted {sum(written.values())} tokens "
              f"while we queried — zero locks taken, zero smears")

        # -- a fresh pin sees the writes ------------------------------
        fresh = tree.snapshot()
        n_now = len(list(fresh.handles()))
        print(f"fresh snapshot holds {n_now} live tokens "
              f"(pinned store still serves the old {len(store)} "
              f"elements)")

        # -- incremental re-pin: splice, don't rebuild ----------------
        repin_stats = Counters()
        store = store.repin(doc, fresh, repin_stats)
        print(f"re-pin spliced {repin_stats.segments_spliced} dirty "
              f"segments, reused {repin_stats.shards_reused} clean "
              f"shards, re-extracted {repin_stats.shards_reextracted}")

        # -- steady state: re-pin per batch + one QuerySession --------
        for batch in range(3):
            anchors = list(tree.iter_leaves(include_deleted=False))
            for step in range(10):
                tree.insert_after(anchors[step], ("batch", batch, step))
            store = store.repin(doc, tree.snapshot())
            session = QuerySession(store, parallel=True)
            for query, truth in zip(queries, expected):
                assert [id(e) for e in session.evaluate(query)] == truth
        print("3 edit-then-serve batches: incremental pins stayed "
              "identical to the DOM truth, battery shared leading steps")
        doc.close()


if __name__ == "__main__":
    main()
