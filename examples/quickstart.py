"""Quickstart: label an XML document, query it, edit it.

Run:  python examples/quickstart.py

Walks the paper's core loop in ~40 lines: parse a document, label it with
an L-Tree, answer an ancestor/descendant query by pure label comparison,
then insert new content and watch the labels stay consistent.
"""

from repro.core.params import LTreeParams
from repro.core.stats import Counters
from repro.labeling import LabeledDocument
from repro.xml import XMLElement, XMLTextNode, parse, pretty

DOCUMENT = """
<book>
  <chapter number="1"><title>Labels</title></chapter>
  <chapter number="2"><title>Updates</title></chapter>
  <title>L-Trees in Practice</title>
</book>
"""


def main() -> None:
    document = parse(DOCUMENT)
    stats = Counters()
    labeled = LabeledDocument(document, params=LTreeParams(f=8, s=2),
                              stats=stats)

    print("== regions (begin, end labels per element) ==")
    for element in document.iter_elements():
        region = labeled.region(element)
        print(f"  {element.tag:8s} ({region.begin}, {region.end})")

    # 'book//title' as pure interval containment — no tree navigation.
    book = document.root
    titles = [element for element in document.find_all("title")
              if labeled.is_ancestor(book, element)]
    print(f"\nbook//title by containment: {len(titles)} hits")

    # Insert a new chapter with a subtree; one batch labeling operation.
    chapter = XMLElement("chapter", [("number", "3")])
    title = XMLElement("title")
    title.append_child(XMLTextNode("Dynamic Maintenance"))
    chapter.append_child(title)
    labeled.insert_subtree(book, 2, chapter)

    print("\n== after inserting chapter 3 ==")
    print(pretty(document))
    labeled.validate()  # order + containment still hold

    print(f"\nmaintenance cost so far: {stats.relabels} relabels, "
          f"{stats.splits} splits for {stats.inserts} token inserts")


if __name__ == "__main__":
    main()
