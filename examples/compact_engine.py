"""The array-backed engine: same labels, flat storage, batch arithmetic.

Run:  python examples/compact_engine.py

The L-Tree comes in two interchangeable engines: the node-object
reference (`repro.core.ltree.LTree`) and the struct-of-arrays
`repro.core.compact.CompactLTree`, which keeps the whole tree in parallel
integer arrays with a free-list for recycled slots.  Both implement the
paper's algorithms exactly — this script drives them in lockstep through
the same edit stream, shows the labels and maintenance cost stay
byte-identical, then times them head to head.

Since PR 3 the compact engine is also the **default** under
`repro.labeling.scheme.LabeledDocument` (opt back into the node-object
engine with `scheme=make_scheme("ltree")`), and its bulk paths run as
batch column arithmetic through `repro.core.vectorized`:

* backend ``numpy`` — int64 ndarray passes, picked automatically when
  numpy is importable;
* backend ``array`` — pure-Python batch passes (C-level list/slice
  arithmetic), the guaranteed fallback;
* backend ``scalar`` — the original per-slot loops, kept as the
  measured baseline.

Select one explicitly with ``REPRO_VECTOR_BACKEND=numpy|array|scalar``
or `repro.core.vectorized.set_backend()`; the final section below times
the same bulk load under every backend available in this interpreter.
"""

import random
import time

from repro.core import vectorized
from repro.core.compact import CompactLTree
from repro.core.ltree import LTree
from repro.core.params import LTreeParams
from repro.core.stats import Counters

PARAMS = LTreeParams(f=16, s=4)
N_EDITS = 5_000
N_BULK = 100_000


def drive(tree, handles, operations):
    """Apply an (op, position, payload) stream through the engine API."""
    for kind, position, payload in operations:
        if kind == "before":
            handles.insert(position,
                           tree.insert_before(handles[position], payload))
        elif kind == "after":
            handles.insert(position + 1,
                           tree.insert_after(handles[position], payload))
        elif kind == "run":
            run = tree.insert_run_after(handles[position], payload)
            handles[position + 1:position + 1] = run
        else:
            tree.mark_deleted(handles[position])


def main() -> None:
    rng = random.Random(2026)
    operations = []
    size = 8
    for step in range(N_EDITS):
        roll, position = rng.random(), rng.randrange(size)
        if roll < 0.45:
            operations.append(("before", position, step))
            size += 1
        elif roll < 0.9:
            operations.append(("after", position, step))
            size += 1
        elif roll < 0.95:
            payload = [(step, index) for index in range(8)]
            operations.append(("run", position, payload))
            size += 8
        else:
            operations.append(("delete", position, None))

    node_stats, compact_stats = Counters(), Counters()
    node_tree = LTree(PARAMS, node_stats)
    compact_tree = CompactLTree(PARAMS, compact_stats)
    node_handles = list(node_tree.bulk_load(range(8)))
    compact_handles = list(compact_tree.bulk_load(range(8)))

    drive(node_tree, node_handles, operations)
    drive(compact_tree, compact_handles, operations)

    print(f"== {N_EDITS} identical edits on both engines ==")
    print(f"  labels identical:   "
          f"{node_tree.labels() == compact_tree.labels()}")
    print(f"  counters identical: "
          f"{node_stats.as_dict() == compact_stats.as_dict()}")
    print(f"  leaves={compact_tree.n_leaves}  "
          f"height={compact_tree.height}  "
          f"splits={compact_stats.splits}  "
          f"relabels={compact_stats.relabels}")
    print(f"  compact storage: {compact_tree.allocated_slots} slots "
          f"({compact_tree.free_slots} currently on the free-list)")

    print(f"\n== bulk_load({N_BULK:,}) head to head ==")
    timings = {}
    for name, engine in (("node-object", LTree),
                         ("array-backed", CompactLTree)):
        best = min(_time_bulk(engine) for _ in range(3))
        timings[name] = best
        print(f"  {name:13s} {best * 1000:7.1f} ms")
    speedup = timings["node-object"] / timings["array-backed"]
    print(f"  speedup: {speedup:.2f}x")

    print(f"\n== vectorized backends, bulk_load({N_BULK:,}) ==")
    backends = ["scalar", "array"] + (
        ["numpy"] if vectorized.HAS_NUMPY else [])
    baseline = None
    for backend in backends:
        with vectorized.use_backend(backend):
            best = min(_time_bulk(CompactLTree) for _ in range(3))
        baseline = baseline or best
        print(f"  {backend:7s} {best * 1000:7.1f} ms "
              f"({baseline / best:.2f}x vs scalar)")
    if not vectorized.HAS_NUMPY:
        print("  (numpy not importable: the array fallback is active)")


def _time_bulk(engine) -> float:
    tree = engine(PARAMS)
    start = time.perf_counter()
    tree.bulk_load(range(N_BULK))
    return time.perf_counter() - start


if __name__ == "__main__":
    main()
