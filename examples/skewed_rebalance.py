"""Online shard rebalancing under a pinned snapshot reader.

Run:  python examples/skewed_rebalance.py

Builds a deliberately skewed document — every insert lands after one
hot anchor, so a single arena balloons while the other shards idle —
then lets :class:`RebalancePolicy` split the fat shard *online* while
a snapshot reader stays pinned to the pre-rebalance epoch:

1. **skew** — ``shard_report()`` shows one arena holding most of the
   live tokens, exactly the occupancy imbalance the policy reads;
2. **online split** — a reader thread keeps re-reading a pinned
   :class:`LabelSnapshot` while ``rebalance()`` runs; the snapshot's
   labels never move, because split/merge installs a *new* epoch
   directory instead of mutating the one the reader pinned;
3. **forwarding** — handles minted before the rebalance still resolve:
   the pinned snapshot answers for them on the old epoch, the live
   tree (and any fresh snapshot) chases the forwarding table to the
   shard that owns them now.
"""

import threading

from repro.concurrent import ConcurrentLTree, RebalancePolicy
from repro.core.params import LTreeParams
from repro.core.sharded import ShardedCompactLTree

PARAMS = LTreeParams(f=16, s=4)


def report_table(tree) -> None:
    rows = tree.shard_report()
    lives = [row["live"] for row in rows]
    print(f"  {'id':>4s} {'pos':>4s} {'live':>6s} {'leaves':>7s}")
    for row in rows:
        print(f"  {row['id']:4d} {row['position']:4d} "
              f"{row['live']:6d} {row['leaves']:7d}")
    print(f"  skew = max/mean live = "
          f"{max(lives) / (sum(lives) / len(lives)):.2f}, "
          f"epoch {tree.epoch}")


def main() -> None:
    tree = ConcurrentLTree(ShardedCompactLTree(PARAMS, n_shards=8))
    handles = tree.bulk_load(range(800))

    # -- 1. skew one shard with a hot anchor --------------------------
    anchor = tree.resolve_handle(handles[100])
    hot = anchor[0]
    for step in range(3000):
        anchor = tree.insert_after(anchor, step)
    print(f"== after 3000 inserts behind one anchor (shard {hot}) ==")
    report_table(tree)

    # -- 2. pin a snapshot, rebalance online under a live reader ------
    snapshot = tree.snapshot()
    frozen = snapshot.labels()
    old_handle = anchor
    stop = threading.Event()
    reads = [0]
    torn = []

    def reader():
        while not stop.is_set():
            if snapshot.labels() != frozen:
                torn.append(reads[0])
            reads[0] += 1

    thread = threading.Thread(target=reader)
    thread.start()
    policy = RebalancePolicy(max_ratio=2.0, min_split_leaves=64,
                             max_shards=32)
    performed = tree.rebalance(policy, max_rounds=8)
    stop.set()
    thread.join()

    splits = sum(1 for act in performed if act["action"] == "split")
    merges = len(performed) - splits
    print(f"\n== policy rebalance: {splits} splits, {merges} merges ==")
    report_table(tree)
    print(f"  pinned reader: {reads[0]} reads during rebalance, "
          f"{len(torn)} saw a torn view")

    # -- 3. old handles resolve on both sides of the epoch ------------
    live_now = tree.resolve_handle(old_handle)
    fresh = tree.snapshot()
    print("\n== forwarding ==")
    print(f"  pre-rebalance handle {old_handle}:")
    print(f"    pinned snapshot resolves it to "
          f"{snapshot.resolve(old_handle)} (old epoch, unchanged)")
    print(f"    live tree forwards it to shard {live_now[0]}")
    print(f"  pinned snapshot still {snapshot.shard_count} shards / "
          f"{len(frozen)} labels; fresh snapshot "
          f"{fresh.shard_count} shards / {len(fresh.labels())} labels")
    assert snapshot.labels() == frozen
    assert not torn


if __name__ == "__main__":
    main()
