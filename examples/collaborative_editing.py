"""Collaborative document editing: why the L-Tree beats the folklore.

Run:  python examples/collaborative_editing.py

Simulates two editing sessions over the same report document:

* a *uniform* session touching random sections, and
* a *hotspot* session hammering one section (the realistic case — an
  author works in one place).

Each session runs over four labeling schemes; the table shows relabelings
per insert (work the database must redo) and label width (index key
size).  The L-Tree is the only scheme that stays cheap on both axes for
both sessions — the paper's headline claim (§1, §5).
"""

import random

from repro.analysis.report import format_table
from repro.core.stats import Counters
from repro.labeling import LabeledDocument
from repro.order import make_scheme
from repro.xml import XMLElement, XMLTextNode, book_document

SCHEMES = ("ltree", "naive", "gap", "prefix")
EDITS = 400


def run_session(scheme_name: str, hotspot: bool) -> tuple[float, int]:
    document = book_document(chapters=4, sections_per_chapter=3, seed=1)
    stats = Counters()
    labeled = LabeledDocument(document, scheme=make_scheme(scheme_name,
                                                           stats))
    sections = list(document.find_all("section"))
    rng = random.Random(7)
    target = sections[0]
    for edit in range(EDITS):
        if not hotspot:
            target = rng.choice(sections)
        paragraph = XMLElement("para")
        paragraph.append_child(XMLTextNode(f"edit {edit}"))
        labeled.insert_subtree(target, len(target.children), paragraph)
    labeled.validate()
    relabels_per_insert = stats.relabels / max(1, stats.inserts)
    return relabels_per_insert, labeled.scheme.label_bits()


def main() -> None:
    rows = []
    for session, hotspot in (("uniform", False), ("hotspot", True)):
        for name in SCHEMES:
            relabels, bits = run_session(name, hotspot)
            rows.append((session, name, round(relabels, 2), bits))
    print("relabelings per inserted token / label width")
    print(format_table(("session", "scheme", "relabels/insert", "bits"),
                       rows))
    print("\nreading the table: 'naive' redoes ~half the document per "
          "edit; 'gap' collapses when edits cluster; 'prefix' never "
          "relabels but its labels grow with every edit in the same "
          "spot; the L-Tree stays logarithmic on both axes.")


if __name__ == "__main__":
    main()
