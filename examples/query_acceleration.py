"""Query acceleration: one containment join vs a join per level.

Run:  python examples/query_acceleration.py

Shreds an XMark-like auction document into the two relational layouts the
paper contrasts (§1):

* the **edge table** (id, parent_id, tag) — descendant queries need one
  self-join per document level;
* the **interval table** (id, tag, begin, end, level) with L-Tree labels —
  any descendant query is exactly one structural self-join.

Runs the same XPath queries through both plans (and DOM navigation as
ground truth) and reports tuple reads — the paper's cost unit.
"""

from repro.analysis.report import format_table
from repro.core.stats import Counters
from repro.labeling import LabeledDocument
from repro.query import (evaluate_dom, evaluate_edge, evaluate_interval,
                         parse_xpath)
from repro.storage import EdgeTableStore, IntervalTableStore
from repro.xml import xmark_like

QUERIES = (
    "/site//increase",
    "//item/name",
    "/site/regions//listitem",
    "//open_auction/bidder/increase",
)


def main() -> None:
    document = xmark_like(n_items=80, n_people=40, n_auctions=25, seed=11)
    labeled = LabeledDocument(document)
    edge_stats, interval_stats = Counters(), Counters()
    edge = EdgeTableStore(document, edge_stats)
    interval = IntervalTableStore(labeled, interval_stats)

    rows = []
    for text in QUERIES:
        query = parse_xpath(text)
        truth = evaluate_dom(document, query)
        edge_stats.reset()
        interval_stats.reset()
        via_interval = evaluate_interval(interval, query)
        via_edge = evaluate_edge(edge, query)
        assert [id(e) for e in truth] == [id(e) for e in via_interval]
        assert [id(e) for e in truth] == [id(e) for e in via_edge]
        rows.append((text, len(truth), interval_stats.tuple_reads,
                     edge_stats.tuple_reads, edge.last_join_count))

    print(f"document: {document.count_elements()} elements")
    print(format_table(
        ("query", "results", "interval reads", "edge reads",
         "edge self-joins"), rows))
    print("\nevery query verified identical across all three "
          "evaluators; the interval plan is one self-join regardless "
          "of depth (the paper's §1 claim).")


if __name__ == "__main__":
    main()
