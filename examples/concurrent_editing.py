"""Concurrent editing: two writers, a snapshot reader, crash + recover.

Run:  python examples/concurrent_editing.py

The sharded engine localizes every update to one arena; the
`repro.concurrent` service turns that into an actual multi-writer
document with incremental durability:

1. **two writer threads** edit disjoint shards of one
   ``ConcurrentDocument`` in parallel (per-shard write locks — they
   never wait on each other) while every op is appended to a CRC'd
   write-ahead log under group commit;
2. **a snapshot reader** queries labels/order the whole time with zero
   locks, off immutable per-shard byte images;
3. a **checkpoint** folds the log into the page store (one atomic
   catalog flip carries the arenas *and* the WAL watermark) and
   truncates it;
4. a simulated **crash** tears the last WAL record in half; recovery
   opens the checkpoint, drops the torn record by CRC, replays the
   intact tail, and the labels come back bit-identical.
"""

import os
import random
import tempfile
import threading

from repro.concurrent import ConcurrentDocument
from repro.core.params import LTreeParams
from repro.core.sharded import ShardedCompactLTree
from repro.concurrent.service import WAL_FILE, apply_logged_op

PARAMS = LTreeParams(f=16, s=4)


def writer(doc, handles, rank, n_ops, seed):
    """Seeded edits anchored only in shard ``rank``."""
    rng = random.Random(seed)
    mine = [handle for handle in handles if handle[0] == rank]
    for step in range(n_ops):
        anchor = mine[rng.randrange(len(mine))]
        if rng.random() < 0.8:
            mine.append(doc.insert_after(anchor, [rank, step]))
        else:
            mine.extend(doc.insert_run_after(
                anchor, [[rank, step, k] for k in range(3)]))


def reader(doc, stop, out):
    """Zero-lock snapshot reads while the writers hammer away."""
    while not stop.is_set():
        snap = doc.snapshot()
        labels = snap.labels()
        assert labels == sorted(labels), "snapshot must be ordered"
        out["snapshots"] += 1
        out["last_size"] = len(labels)


def main() -> None:
    directory = tempfile.mkdtemp()

    # -- 1 + 2: parallel writers, concurrent snapshot reader ----------
    doc = ConcurrentDocument.create(directory, params=PARAMS,
                                    n_shards=2, group_commit=32)
    handles = doc.bulk_load([f"token{i}" for i in range(64)])
    print("== two writers, one snapshot reader ==")
    stop = threading.Event()
    read_stats = {"snapshots": 0, "last_size": 0}
    threads = [
        threading.Thread(target=writer, args=(doc, handles, 0, 400, 1)),
        threading.Thread(target=writer, args=(doc, handles, 1, 400, 2)),
        threading.Thread(target=reader, args=(doc, stop, read_stats)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads[:2]:
        thread.join()
    stop.set()
    threads[2].join()
    doc.commit()
    print(f"  {len(doc.labels())} live tokens after 800 concurrent ops")
    print(f"  reader pinned {read_stats['snapshots']} consistent "
          f"snapshots (last saw {read_stats['last_size']} labels)")
    print(f"  WAL: {doc.wal.records_appended} records in "
          f"{doc.wal.commits} group commits")

    # determinism: serial replay of the merged tape == concurrent state
    replayed = ShardedCompactLTree(PARAMS, n_shards=2)
    for _seq, op in doc.wal.replay():
        apply_logged_op(replayed, op)
    print(f"  serial replay bit-identical: "
          f"{replayed.labels(include_deleted=False) == doc.labels()}")

    # -- 3: checkpoint -------------------------------------------------
    watermark = doc.checkpoint()
    print(f"\n== checkpoint ==\n  folded ops 1..{watermark} into the "
          f"page store; WAL truncated to {doc.wal.last_seq - watermark} "
          f"records")

    # a few post-checkpoint edits, one of which we will tear
    anchor = handles[10]
    for step in range(5):
        anchor = doc.insert_after(anchor, ["post-ckpt", step])
    doc.commit()
    survivor_labels = doc.labels()[:]
    doc.insert_after(anchor, "doomed: this op's record gets torn")
    doc.commit()
    doc.close()

    # -- 4: crash + recover --------------------------------------------
    wal_path = os.path.join(directory, WAL_FILE)
    with open(wal_path, "r+b") as handle:
        handle.truncate(os.path.getsize(wal_path) - 11)   # tear mid-record
    print("\n== crash: last WAL record torn mid-append ==")
    with ConcurrentDocument.open(directory) as recovered:
        print(f"  recovery dropped {recovered.wal.dropped_bytes} torn "
              f"bytes by CRC")
        print(f"  checkpoint + replayed tail bit-identical to the last "
              f"commit: {recovered.labels() == survivor_labels}")
        recovered.tree.validate()


if __name__ == "__main__":
    main()
