"""Engine-wide observability end to end: metrics, traces, the report.

Run:  PYTHONPATH=src python examples/observability.py

Four acts, each printing what the instrumentation actually captured:

1. **a scrape** — enable ``repro.obs``, run a threaded write workload
   through ``ConcurrentDocument``, and read one ``metrics()`` dict:
   commit/checkpoint latency histograms (p50/p99), the WAL backlog,
   the buffer-pool hit rate, per-shard write rates;
2. **Prometheus exposition** — the same registry rendered in the text
   format a scraper (or the future serving tier's ``/metrics`` route)
   would ingest;
3. **workload-aware rebalancing** — hammer one shard and watch
   ``RebalancePolicy.plan(report, workload=...)`` split it on write
   heat while occupancy alone would have stayed quiet;
4. **the trace** — export the span/event ring as JSONL and pretty-print
   it with the ``python -m repro.obs.report`` renderer, slow-op log
   included.

See ``docs/observability.md`` for the full metric/span name catalog.
"""

import json
import os
import tempfile
import threading

from repro import obs
from repro.concurrent.service import ConcurrentDocument
from repro.core.sharded import RebalancePolicy
from repro.obs.export import render_prometheus
from repro.obs.report import render


def act_scrape(root: str) -> ConcurrentDocument:
    obs.enable()
    obs.TRACER.slow_op_seconds = 0.5    # log anything over 500ms
    doc = ConcurrentDocument.create(os.path.join(root, "svc"),
                                    n_shards=4, group_commit=64)
    handles = doc.bulk_load(range(2000))
    anchors = [handles[i] for i in (250, 750, 1250, 1750)]

    def writer(anchor, n):
        for index in range(n):
            doc.insert_after(anchor, f"w{index}")

    threads = [threading.Thread(target=writer, args=(anchor, 200))
               for anchor in anchors]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    doc.commit()
    doc.checkpoint()

    metrics = doc.metrics()
    commit = metrics["histograms"]["service.commit.seconds"]
    checkpoint = metrics["histograms"]["service.checkpoint.seconds"]
    print("act 1 — one metrics() scrape after 4x200 threaded writes:")
    print(f"  commit latency      p50={commit['p50'] * 1e3:.3f}ms "
          f"p99={commit['p99'] * 1e3:.3f}ms (n={commit['count']})")
    print(f"  checkpoint pause    "
          f"p99={checkpoint['p99'] * 1e3:.3f}ms")
    print(f"  wal backlog         {metrics['wal']['backlog']} records")
    print(f"  buffer-pool         hit_rate="
          f"{metrics['cache']['hit_rate']}")
    rates = metrics["shards"]["write_rates_per_sec"]
    print(f"  shard write rates   "
          f"{ {sid: round(rate) for sid, rate in rates.items()} }")
    batch = metrics["histograms"]["wal.commit.batch_records"]
    print(f"  group-commit batch  p50={batch['p50']:.0f} "
          f"max={batch['max']:.0f} records")
    return doc


def act_exposition() -> None:
    text = render_prometheus()
    wanted = ("repro_service_commit_seconds_bucket",
              "repro_service_wal_backlog", "repro_wal_commits_total")
    shown = [line for line in text.splitlines()
             if line.startswith(wanted)]
    print("\nact 2 — Prometheus exposition (excerpt of "
          f"{len(text.splitlines())} lines):")
    for line in shown[:8]:
        print(f"  {line}")


def act_hot_shard(doc: ConcurrentDocument) -> None:
    policy = RebalancePolicy(max_ratio=100.0, min_split_leaves=8,
                             hot_write_ratio=2.0, max_shards=16)
    before = len(doc.shard_report())
    assert policy.plan(doc.shard_report()) == []    # occupancy is calm
    hot = next(iter(doc.handles()))
    for index in range(1600):
        doc.insert_after(hot, f"hot{index}")
    performed = doc.rebalance(policy)
    after = len(doc.shard_report())
    print(f"\nact 3 — workload-aware rebalance: {before} shards -> "
          f"{after} via {[action['action'] for action in performed]} "
          f"(occupancy alone planned nothing)")
    assert any(action["action"] == "split" for action in performed)


def act_trace(root: str) -> None:
    path = os.path.join(root, "trace.jsonl")
    written = obs.TRACER.export_jsonl(path)
    records = [json.loads(line) for line in open(path)]
    spans = {record["name"] for record in records
             if record["type"] == "span"}
    print(f"\nact 4 — {written} trace records exported to JSONL; "
          f"span names: {sorted(spans)}")
    print("\n--- python -m repro.obs.report ---")
    print(render(records, top=3))


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="obs-demo-") as root:
        doc = act_scrape(root)
        try:
            act_exposition()
            act_hot_shard(doc)
        finally:
            doc.close()
        act_trace(root)
        obs.disable()
        obs.reset()
    print("\nall four acts produced the numbers they promised")


if __name__ == "__main__":
    main()
