"""Sharded label spaces: per-subtree arenas, lazy reopen, isolation.

Run:  python examples/sharded_document.py

The `ltree-sharded` scheme splits one document's label space across
per-subtree `CompactLTree` arenas: the global label of a token is
``shard_prefix ⊕ shard-local label``, so every split and relabel stays
inside one arena and concurrent writers editing disjoint subtrees never
touch each other's state.  This script shows the three things the
sharding layer buys:

1. **write isolation** — per-shard counters prove an edit in one
   subtree writes exactly one arena (and ``shard_report()`` shows the
   per-shard occupancy the rebalance policy reads);
2. **cheaper maintenance** — shard arenas are shorter than one flat
   tree, so the paper's ``h`` (count-update) cost term drops;
3. **shard-lazy persistence** — each arena is its own blob span in the
   page file; reopening a saved document deserializes *nothing* until
   an edit touches a shard, and re-saving copies untouched arenas
   image-for-image.
"""

import os
import tempfile

from repro.core.params import LTreeParams
from repro.core.stats import Counters
from repro.labeling.scheme import LabeledDocument
from repro.order.registry import make_scheme
from repro.order.sharded_list import ShardedListLabeling
from repro.storage.pages import PageStore
from repro.workloads import updates as W
from repro.xml.generator import xmark_like
from repro.xml.parser import parse

PARAMS = LTreeParams(f=16, s=4)


def main() -> None:
    # -- 1. write isolation, shard by shard ---------------------------
    document = xmark_like(n_items=30, n_people=16, n_auctions=12, seed=3)
    scheme = ShardedListLabeling(PARAMS, n_shards=6, shard_stats=True)
    labeled = LabeledDocument(document, scheme=scheme)
    print("== per-shard arenas ==")
    print(f"  {len(scheme)} tokens across "
          f"{scheme.tree.shard_count} shards, "
          f"stride {scheme.tree.stride:,}")

    target = next(element for element in document.iter_elements()
                  if element.parent is not None and
                  element.extra.begin[0] == element.extra.end[0])
    owner = target.extra.begin[0]
    before = [sink.snapshot() for sink in scheme.shard_counters]
    labeled.append_subtree(target, parse("<memo>shard-local</memo>").root)
    written = [rank for rank, (sink, base) in
               enumerate(zip(scheme.shard_counters, before))
               if (sink - base).inserts]
    print(f"  inserted under <{target.tag}> (shard {owner}): "
          f"arenas written = {written}")

    print("\n== shard_report() ==")
    print(f"  {'id':>4s} {'pos':>4s} {'live':>6s} {'tomb':>6s} "
          f"{'leaves':>7s} {'inserts':>8s}")
    for row in scheme.shard_report():
        counters = row["counters"] or {}
        print(f"  {row['id']:4d} {row['position']:4d} "
              f"{row['live']:6d} {row['tombstones']:6d} "
              f"{row['leaves']:7d} "
              f"{counters.get('inserts', 0):8d}")

    # -- 2. the h-term discount ---------------------------------------
    print("\n== count updates per insert (2000 uniform inserts) ==")
    for name in ("ltree-compact", "ltree-sharded"):
        stats = Counters()
        W.apply_workload(make_scheme(name, stats),
                         W.uniform_inserts(2000, seed=42))
        print(f"  {name:14s} {stats.count_updates / stats.inserts:5.2f}")

    # -- 3. shard-lazy reopen -----------------------------------------
    path = os.path.join(tempfile.mkdtemp(), "sharded.ltp")
    labels_before = labeled.labels_in_order()
    with PageStore(path) as store:
        labeled.save(store)
        spans = [name for name in store.blobs()
                 if name.startswith("scheme.s") and
                 not name.endswith(".leaves")]
        print(f"\n== saved: {len(spans)} arena blob spans "
              f"({os.path.getsize(path):,} bytes) ==")

    del labeled, document, scheme                 # "crash"

    with PageStore(path) as store:
        reopened = LabeledDocument.open(store)
        tree = reopened.scheme.tree
        print("== reopened ==")
        print(f"  labels bit-identical: "
              f"{reopened.labels_in_order() == labels_before}")
        print(f"  arenas deserialized after open + queries: "
              f"{tree.materialized_shards}")
        victim = next(element for element in
                      reopened.document.iter_elements()
                      if element.parent is not None)
        reopened.insert_text(victim, 0, "wake one shard")
        print(f"  arenas deserialized after one edit:       "
              f"{tree.materialized_shards}")
        reopened.validate()
        reopened.save(store)
        print("  re-saved; untouched arenas copied image-for-image")


if __name__ == "__main__":
    main()
