"""Cross-module integration scenarios: the library as a user drives it.

Each test chains several subsystems end-to-end, the way the examples do,
so regressions at module seams surface even when per-module tests pass.
"""

import random

import pytest

from repro.core import tuning
from repro.core.params import LTreeParams
from repro.core.persistence import restore, snapshot
from repro.core.stats import Counters
from repro.labeling import DeweyDocument, LabeledDocument
from repro.query import (evaluate_dom, evaluate_edge, evaluate_interval,
                         parse_xpath)
from repro.storage import EdgeTableStore, IntervalTableStore
from repro.workloads import apply_workload, mixed_workload, xpath_battery
from repro.xml import (XMLElement, XMLTextNode, parse, serialize,
                       xmark_like)


class TestParseLabelQueryPipeline:
    def test_full_pipeline(self):
        text = serialize(xmark_like(15, 8, 5, seed=51))
        document = parse(text)
        labeled = LabeledDocument(document)
        interval = IntervalTableStore(labeled)
        edge = EdgeTableStore(document)
        for query_text in ("//item/name", "/site//increase",
                           "//person[@id='person1']"):
            query = parse_xpath(query_text)
            truth = [id(e) for e in evaluate_dom(document, query)]
            assert truth == [id(e) for e in
                             evaluate_interval(interval, query)]
            assert truth == [id(e) for e in evaluate_edge(edge, query)]

    def test_edit_persist_requery(self):
        document = xmark_like(10, 5, 4, seed=52)
        labeled = LabeledDocument(document,
                                  params=LTreeParams(f=8, s=2))
        regions = next(document.find_all("regions"))
        for edit in range(20):
            item = XMLElement("item", [("id", f"late{edit}")])
            item.append_child(XMLTextNode(f"content {edit}"))
            labeled.insert_subtree(regions, 0, item)
        labeled.validate()
        # persist the raw labels, restore, and verify order agreement
        # (payloads are live XMLNode tuples — not JSON-able, and a
        # snapshot guarantees JSON-safety — so they stay out of it)
        data = snapshot(labeled.scheme.tree, include_payloads=False)
        rebuilt = restore(data)
        assert rebuilt.labels() == labeled.scheme.tree.labels()

    @pytest.mark.skipif(not tuning.HAS_SCIPY_STACK,
                        reason="continuous tuning needs numpy + scipy")
    def test_tuned_parameters_flow_through(self):
        document = xmark_like(8, 4, 3, seed=53)
        recommendation = tuning.minimize_update_cost(10_000)
        labeled = LabeledDocument(document,
                                  params=recommendation.params)
        labeled.validate()
        interval = IntervalTableStore(labeled)
        query = parse_xpath("//item")
        assert len(evaluate_interval(interval, query)) == 8


class TestWorkloadsAcrossSchemes:
    def test_mixed_workload_then_bits_accounting(self):
        from repro.order import make_scheme
        stats = Counters()
        scheme = make_scheme("two-level", stats)
        result = apply_workload(scheme, mixed_workload(800, seed=54))
        assert result.final_size == len(scheme)
        assert result.label_bits == scheme.label_bits()
        scheme.validate()

    def test_battery_on_edited_document(self):
        document = xmark_like(12, 6, 4, seed=55)
        labeled = LabeledDocument(document)
        rng = random.Random(56)
        for edit in range(30):
            elements = list(document.iter_elements())
            parent = rng.choice(elements)
            labeled.insert_subtree(
                parent, rng.randint(0, len(parent.children)),
                XMLElement(f"patch{edit}"))
        labeled.validate()
        interval = IntervalTableStore(labeled)
        edge = EdgeTableStore(document)
        for query in xpath_battery(document, 15, seed=57):
            truth = [id(e) for e in evaluate_dom(document, query)]
            assert truth == [id(e) for e in
                             evaluate_interval(interval, query)]
            assert truth == [id(e) for e in evaluate_edge(edge, query)]


class TestLabelingFamiliesAgree:
    def test_region_and_dewey_agree_on_axes(self):
        document = xmark_like(8, 4, 3, seed=58)
        region = LabeledDocument(document)
        # Dewey labels live on node.extra too, so re-parse a twin
        twin = parse(serialize(document))
        dewey = DeweyDocument(twin)
        region_elements = list(document.iter_elements())
        dewey_elements = list(twin.iter_elements())
        rng = random.Random(59)
        for _ in range(300):
            index_a = rng.randrange(len(region_elements))
            index_b = rng.randrange(len(region_elements))
            if index_a == index_b:
                continue
            assert region.is_ancestor(
                region_elements[index_a], region_elements[index_b]) == \
                dewey.is_ancestor(
                    dewey_elements[index_a], dewey_elements[index_b])
            assert region.precedes(
                region_elements[index_a], region_elements[index_b]) == \
                dewey.precedes(
                    dewey_elements[index_a], dewey_elements[index_b])


class TestDocumentLifecycle:
    def test_grow_delete_compact_requery(self):
        document = parse("<store><shelf/></store>")
        labeled = LabeledDocument(document,
                                  params=LTreeParams(f=4, s=2))
        shelf = next(document.find_all("shelf"))
        rng = random.Random(60)
        created = []
        for edit in range(120):
            book = XMLElement("bk", [("n", str(edit))])
            labeled.insert_subtree(shelf, rng.randint(
                0, len(shelf.children)), book)
            created.append(book)
        for victim in created[::3]:
            labeled.delete_subtree(victim)
        tombstones = labeled.scheme.tree.tombstone_count()
        assert tombstones > 0
        reclaimed = labeled.compact()
        assert reclaimed == tombstones
        labeled.validate()
        interval = IntervalTableStore(labeled)
        remaining = evaluate_interval(interval, parse_xpath("//bk"))
        assert len(remaining) == 80
