"""Tracer: ring bounding, spans, slow-op capture, JSONL round-trip."""

import threading

from repro.obs.trace import NULL_SPAN, Tracer, read_jsonl


def test_ring_buffer_is_bounded():
    tracer = Tracer(capacity=10)
    tracer.enable()
    for index in range(25):
        tracer.event("tick", n=index)
    events = tracer.events()
    assert len(events) == 10
    assert [event["attrs"]["n"] for event in events] == list(range(15, 25))


def test_disabled_tracer_emits_nothing_and_hands_out_null_span():
    tracer = Tracer()
    assert tracer.span("anything") is NULL_SPAN
    with tracer.span("anything", a=1) as span:
        span.set(b=2)       # must be a harmless no-op
    tracer.event("anything")
    assert tracer.events() == []


def test_span_records_duration_attrs_thread_and_error():
    tracer = Tracer()
    tracer.enable()
    with tracer.span("op", shard=3) as span:
        span.set(result="ok")
    try:
        with tracer.span("boom"):
            raise ValueError("x")
    except ValueError:
        pass
    ok, boom = tracer.events()
    assert ok["type"] == "span" and ok["name"] == "op"
    assert ok["attrs"] == {"shard": 3, "result": "ok"}
    assert ok["end"] >= ok["start"] and ok["dur"] >= 0.0
    assert ok["thread"] == threading.get_ident()
    assert "error" not in ok
    assert boom["error"] == "ValueError"


def test_slow_op_threshold_captures_and_logs(caplog):
    tracer = Tracer()
    tracer.enable()
    tracer.slow_op_seconds = 0.0     # everything is "slow"
    with caplog.at_level("WARNING", logger="repro.obs.slow"):
        with tracer.span("slow.op"):
            pass
    assert len(tracer.slow_ops()) == 1
    assert tracer.slow_ops()[0]["name"] == "slow.op"
    assert any("slow.op" in record.message for record in caplog.records)
    # a high threshold captures nothing
    tracer.clear()
    tracer.slow_op_seconds = 3600.0
    with tracer.span("fast.op"):
        pass
    assert tracer.slow_ops() == []
    assert len(tracer.events()) == 1


def test_jsonl_round_trip(tmp_path):
    tracer = Tracer()
    tracer.enable()
    with tracer.span("op", k="v"):
        pass
    tracer.event("mark", n=7)
    path = tmp_path / "trace.jsonl"
    written = tracer.export_jsonl(path)
    assert written == 2
    assert read_jsonl(path) == tracer.events()


def test_set_capacity_keeps_newest():
    tracer = Tracer(capacity=100)
    tracer.enable()
    for index in range(10):
        tracer.event("e", n=index)
    tracer.set_capacity(3)
    assert [e["attrs"]["n"] for e in tracer.events()] == [7, 8, 9]


def test_failpoint_hits_flow_into_trace(tmp_path):
    from repro import obs
    from repro.storage.wal import WriteAheadLog
    obs.TRACER.clear()
    obs.enable(metrics=False, trace=True)
    try:
        wal = WriteAheadLog(str(tmp_path / "w.wal"))
        wal.append({"op": 1})
        wal.commit()
        wal.close()
        hits = [event for event in obs.TRACER.events()
                if event["name"] == "failpoint"]
        points = {event["attrs"]["point"] for event in hits}
        assert "wal:commit:pre-write" in points
        assert "wal:commit:post-write" in points
        assert all(event["attrs"]["fired"] is False for event in hits)
    finally:
        obs.disable()
        obs.reset()
