"""Metrics registry: threaded merge exactness, quantiles, fast path."""

import threading

import pytest

from repro.obs.metrics import (MetricsRegistry, N_BUCKETS, SECONDS_BASE,
                               UNIT_BASE, bucket_bound, bucket_index)


def test_counter_and_histogram_merge_across_threads_is_exact():
    registry = MetricsRegistry()
    registry.enable()
    n_threads, n_each = 8, 5000
    # powers of two sum exactly in floats, so the merged histogram sum
    # can be asserted with == rather than approx
    values = [1.0, 2.0, 4.0, 8.0]

    def worker():
        for i in range(n_each):
            registry.inc("ops")
            registry.observe("op.seconds", values[i % len(values)])

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    total = n_threads * n_each
    assert registry.counters() == {"ops": total}
    hist = registry.histogram("op.seconds")
    assert hist["count"] == total
    assert hist["sum"] == sum(values) * (total // len(values))
    assert hist["max"] == 8.0
    assert 0 < hist["p50"] <= hist["p95"] <= hist["p99"] <= hist["max"]


def test_quantiles_from_log_buckets():
    registry = MetricsRegistry()
    registry.enable()
    for _ in range(95):
        registry.observe("lat.seconds", 0.001)
    for _ in range(5):
        registry.observe("lat.seconds", 10.0)
    hist = registry.histogram("lat.seconds")
    # 0.001 lands in the bucket bounded above by 1e-6 * 2^10 = 0.001024
    assert 0.001 <= hist["p50"] <= 0.0011
    assert hist["p95"] <= 0.0011
    # p99 crosses into the slow tail; bound clamps to the observed max
    assert hist["p99"] == 10.0
    assert hist["max"] == 10.0


def test_bucket_index_grid():
    assert bucket_index(0.0, SECONDS_BASE) == 0
    assert bucket_index(SECONDS_BASE, SECONDS_BASE) == 0
    assert bucket_index(2 * SECONDS_BASE, SECONDS_BASE) == 1
    assert bucket_index(3 * SECONDS_BASE, SECONDS_BASE) == 2
    assert bucket_index(1e30, SECONDS_BASE) == N_BUCKETS - 1
    assert bucket_bound(0, UNIT_BASE) == 1.0
    assert bucket_bound(6, UNIT_BASE) == 64.0
    # a unit histogram (no .seconds suffix) buckets batch sizes sanely
    registry = MetricsRegistry()
    for size in (1, 64, 64, 64):
        registry.observe("batch_records", size)
    hist = registry.histogram("batch_records")
    assert hist["count"] == 4 and hist["max"] == 64
    assert hist["p50"] == 64.0


def test_gauges_last_write_wins():
    registry = MetricsRegistry()
    registry.gauge("backlog", 10)
    registry.gauge("backlog", 3)
    assert registry.gauges() == {"backlog": 3}
    assert registry.snapshot()["gauges"]["backlog"] == 3


def test_empty_histogram_summary_is_zeroed():
    registry = MetricsRegistry()
    assert registry.histogram("nothing") is None
    snap = registry.snapshot()
    assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


def test_reset_drops_data_and_live_threads_restart_clean():
    registry = MetricsRegistry()
    registry.inc("a")
    registry.observe("b.seconds", 0.5)
    registry.gauge("c", 1)
    registry.reset()
    assert registry.snapshot() == {"counters": {}, "gauges": {},
                                   "histograms": {}}
    # the same thread's stale shard must not resurrect: a post-reset
    # increment lands in a fresh epoch shard and counts exactly once
    registry.inc("a", 5)
    assert registry.counters() == {"a": 5}


def test_snapshot_structure_matches_summary_contract():
    registry = MetricsRegistry()
    registry.inc("x", 3)
    registry.observe("y.seconds", 0.25)
    snap = registry.snapshot()
    assert snap["counters"] == {"x": 3}
    summary = snap["histograms"]["y.seconds"]
    assert set(summary) == {"count", "sum", "max", "p50", "p95", "p99"}
    assert summary["count"] == 1
    assert summary["sum"] == pytest.approx(0.25)
