"""Prometheus exposition and the trace-report CLI."""

from repro.obs.export import mangle, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import main as report_main
from repro.obs.trace import Tracer


def test_mangle():
    assert mangle("wal.commit.seconds") == "repro_wal_commit_seconds"
    assert mangle("a-b.c") == "repro_a_b_c"


def test_render_prometheus_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.inc("wal.commits", 3)
    registry.gauge("service.wal_backlog", 12)
    for value in (0.5e-6, 1.5e-6, 3.0e-6):
        registry.observe("op.seconds", value)
    text = render_prometheus(registry)
    lines = text.splitlines()
    assert "# TYPE repro_wal_commits counter" in lines
    assert "repro_wal_commits_total 3" in lines
    assert "# TYPE repro_service_wal_backlog gauge" in lines
    assert "repro_service_wal_backlog 12" in lines
    assert "# TYPE repro_op_seconds histogram" in lines
    # cumulative buckets: 0.5µs ≤ 1µs (bucket 0), 1.5µs ≤ 2µs, 3µs ≤ 4µs
    assert 'repro_op_seconds_bucket{le="1e-06"} 1' in lines
    assert 'repro_op_seconds_bucket{le="2e-06"} 2' in lines
    assert 'repro_op_seconds_bucket{le="4e-06"} 3' in lines
    assert 'repro_op_seconds_bucket{le="+Inf"} 3' in lines
    assert "repro_op_seconds_count 3" in lines
    assert any(line.startswith("repro_op_seconds_sum ")
               for line in lines)


def test_render_prometheus_empty_registry():
    assert render_prometheus(MetricsRegistry()) == ""


def test_report_cli_renders_span_table(tmp_path, capsys):
    tracer = Tracer()
    tracer.enable()
    for _ in range(4):
        with tracer.span("service.checkpoint", watermark=1):
            pass
    tracer.event("failpoint", point="wal:commit:pre-write", fired=False)
    path = tmp_path / "trace.jsonl"
    tracer.export_jsonl(path)

    assert report_main([str(path), "--top", "2", "--events"]) == 0
    out = capsys.readouterr().out
    assert "5 records (4 spans, 1 events)" in out
    assert "service.checkpoint" in out
    assert "slowest 2 spans:" in out
    assert "watermark=1" in out
    assert "failpoint" in out


def test_report_cli_missing_file(tmp_path, capsys):
    assert report_main([str(tmp_path / "absent.jsonl")]) == 2
    assert "cannot read" in capsys.readouterr().err
