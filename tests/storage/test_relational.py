"""The miniature relational engine."""

import pytest

from repro.core.stats import Counters
from repro.errors import StorageError
from repro.storage.relational import (HashIndex, SortedIndex, Table,
                                      index_join, merge_interval_join,
                                      nested_loop_join)


@pytest.fixture()
def people():
    table = Table("people", ("id", "name", "city"))
    table.insert_many([
        (1, "ada", "london"),
        (2, "boole", "lincoln"),
        (3, "cantor", "halle"),
        (4, "dirichlet", "london"),
    ])
    return table


class TestTable:
    def test_arity_check(self, people):
        with pytest.raises(StorageError):
            people.insert((5, "euler"))

    def test_duplicate_columns_rejected(self):
        with pytest.raises(StorageError):
            Table("bad", ("a", "a"))

    def test_unknown_column(self, people):
        with pytest.raises(StorageError):
            people.column_position("age")

    def test_scan_counts_reads(self):
        stats = Counters()
        table = Table("t", ("x",), stats)
        table.insert_many([(i,) for i in range(10)])
        list(table.scan())
        assert stats.tuple_reads == 10

    def test_scan_with_predicate(self, people):
        rows = list(people.scan(lambda row: row[2] == "london"))
        assert [row[1] for row in rows] == ["ada", "dirichlet"]

    def test_project(self, people):
        names = list(people.project(people.scan(), ("name",)))
        assert ("ada",) in names and len(names[0]) == 1

    def test_len(self, people):
        assert len(people) == 4


class TestIndexes:
    def test_hash_index_lookup(self, people):
        index = HashIndex(people, "city")
        rows = index.lookup("london")
        assert {row[1] for row in rows} == {"ada", "dirichlet"}
        assert index.lookup("nowhere") == []

    def test_hash_index_keys(self, people):
        index = HashIndex(people, "city")
        assert set(index.keys()) == {"london", "lincoln", "halle"}

    def test_sorted_index_range(self, people):
        index = SortedIndex(people, "id")
        rows = list(index.range(2, 4))
        assert [row[0] for row in rows] == [2, 3]

    def test_sorted_index_all_rows(self, people):
        index = SortedIndex(people, "name")
        names = [row[1] for row in index.all_rows()]
        assert names == sorted(names)


class TestJoins:
    def test_nested_loop_equals_index_join(self, people):
        orders = Table("orders", ("person_id", "amount"))
        orders.insert_many([(1, 10), (1, 20), (3, 5), (9, 99)])
        predicate = lambda left, right: left[0] == right[0]
        nested = {(l[0], r[1]) for l, r in
                  nested_loop_join(people.scan(), orders, predicate)}
        index = HashIndex(orders, "person_id")
        indexed = {(l[0], r[1]) for l, r in
                   index_join(people.scan(), lambda row: row[0], index)}
        assert nested == indexed
        assert (1, 10) in nested and (3, 5) in nested

    def test_merge_interval_join_simple(self):
        ancestors = [(0, 10, "outer"), (2, 5, "inner")]
        descendants = [(1, 9, "d1"), (3, 4, "d2"), (11, 12, "d3")]
        pairs = set(merge_interval_join(ancestors, descendants))
        assert pairs == {("outer", "d1"), ("outer", "d2"),
                         ("inner", "d2")}

    def test_merge_interval_join_matches_bruteforce(self):
        import random
        rng = random.Random(7)
        # generate nested (well-formed) intervals via a random tree walk
        intervals = []
        counter = [0]
        def build(depth):
            begin = counter[0]; counter[0] += 1
            for _ in range(rng.randint(0, 3) if depth < 4 else 0):
                build(depth + 1)
            end = counter[0]; counter[0] += 1
            intervals.append((begin, end, f"n{begin}"))
        build(0)
        intervals.sort()
        brute = {(a[2], d[2]) for a in intervals for d in intervals
                 if a[0] < d[0] and d[1] < a[1]}
        merged = set(merge_interval_join(intervals, intervals))
        assert merged == brute

    def test_merge_join_counts_io(self):
        stats = Counters()
        ancestors = [(0, 100, "root")]
        descendants = [(i, i + 1, i) for i in range(1, 50, 2)]
        list(merge_interval_join(ancestors, descendants, stats))
        assert stats.tuple_reads > 0
